//! # dynar — a dynamic component model for federated AUTOSAR systems
//!
//! This umbrella crate re-exports every subsystem of the reproduction of
//! *"Design and Implementation of a Dynamic Component Model for Federated
//! AUTOSAR Systems"* (DAC 2014) so that examples and integration tests can
//! reach the whole stack through a single dependency.
//!
//! The individual crates are:
//!
//! * [`foundation`] — identifiers, signal values, deterministic time, errors.
//! * [`os`] — an OSEK-like operating-system simulation (tasks, alarms, events).
//! * [`bus`] — a CAN-like in-vehicle network simulation.
//! * [`rte`] — the AUTOSAR runtime environment / virtual function bus.
//! * [`vm`] — the plug-in bytecode virtual machine.
//! * [`core`] — the dynamic component model itself (plug-in SW-Cs, PIRTE,
//!   virtual ports, PIC/PLC/ECC contexts, plug-in life cycle).
//! * [`ecm`] — the external communication manager gateway.
//! * [`server`] — the off-board trusted server managing the plug-in life cycle.
//! * [`fes`] — federated-embedded-system transports and external devices.
//! * [`sim`] — the vehicle/world simulator, the fleet scheduler and the
//!   demonstrator scenarios.
//!
//! # Example
//!
//! ```
//! use dynar::sim::scenario::remote_car::RemoteCarScenario;
//!
//! # fn main() -> Result<(), dynar::foundation::error::DynarError> {
//! let mut scenario = RemoteCarScenario::build()?;
//! scenario.install_app()?;
//! let report = scenario.drive(200)?;
//! assert!(report.commands_delivered > 0);
//! # Ok(())
//! # }
//! ```

pub use dynar_bus as bus;
pub use dynar_core as core;
pub use dynar_ecm as ecm;
pub use dynar_fes as fes;
pub use dynar_foundation as foundation;
pub use dynar_os as os;
pub use dynar_rte as rte;
pub use dynar_server as server;
pub use dynar_sim as sim;
pub use dynar_vm as vm;
