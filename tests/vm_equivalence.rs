//! The execution-plane equivalence suite.
//!
//! The compiled fast plane (`dynar::vm::compiled`) must be observably
//! byte-identical to the reference interpreter — same outcomes, statuses,
//! port effects, logs, fault messages and budget consumption.  This suite
//! proves it three ways:
//!
//! 1. every scenario-style program runs in lock-step shadow mode
//!    ([`ShadowVm`] panics on any divergence),
//! 2. a whole PIRTE runs the same traffic under all three [`ExecMode`]s and
//!    must produce identical routed outputs and stats,
//! 3. a fixed-seed sweep of random programs under adversarially tight
//!    budgets (tiny slots, tiny stacks, tiny memory, missing ports) runs in
//!    shadow mode — the same proof the routing plane got in its
//!    `routing_equivalence` suite, applied to the execution plane.

use dynar::core::context::{InstallationContext, LinkTarget, PortInitContext, PortLinkContext};
use dynar::core::pirte::Pirte;
use dynar::core::plugin::PluginPortDirection;
use dynar::core::swc::PluginSwcConfig;
use dynar::core::virtual_port::{PortDataDirection, PortKind, VirtualPortSpec};
use dynar::core::InstallationPackage;
use dynar::foundation::error::{DynarError, Result};
use dynar::foundation::ids::{AppId, EcuId, PluginId, PluginPortId, VirtualPortId};
use dynar::foundation::value::Value;
use dynar::vm::isa::Instruction;
use dynar::vm::program::Program;
use dynar::vm::{assemble, Budget, ExecMode, PortHost, ShadowVm};

// ---------------------------------------------------------------------------
// A deterministic host fake (mirrors the vm crate's test host).
// ---------------------------------------------------------------------------

struct FakeHost {
    slots: Vec<Vec<Value>>,
    written: Vec<(u32, Value)>,
    logs: Vec<String>,
}

impl FakeHost {
    fn new(slot_count: usize) -> Self {
        FakeHost {
            slots: vec![Vec::new(); slot_count],
            written: Vec::new(),
            logs: Vec::new(),
        }
    }

    fn slot(&mut self, slot: u32) -> Result<&mut Vec<Value>> {
        self.slots
            .get_mut(slot as usize)
            .ok_or_else(|| DynarError::not_found("port slot", slot))
    }
}

impl PortHost for FakeHost {
    fn read_port(&mut self, slot: u32) -> Result<Value> {
        Ok(self.slot(slot)?.first().cloned().unwrap_or_default())
    }
    fn take_port(&mut self, slot: u32) -> Result<Value> {
        let queue = self.slot(slot)?;
        Ok(if queue.is_empty() {
            Value::Void
        } else {
            queue.remove(0)
        })
    }
    fn write_port(&mut self, slot: u32, value: Value) -> Result<()> {
        self.slot(slot)?;
        self.written.push((slot, value));
        Ok(())
    }
    fn pending(&mut self, slot: u32) -> Result<usize> {
        Ok(self.slot(slot)?.len())
    }
    fn log(&mut self, message: &str) {
        self.logs.push(message.to_owned());
    }
}

// ---------------------------------------------------------------------------
// 1. Scenario programs in shadow mode.
// ---------------------------------------------------------------------------

/// The scenario idioms the demonstrators ship: pending-guard loops,
/// take/forward pipelines, accumulators, list builders, a div-by-zero
/// faulter and a runaway loop living off preemption.
fn scenario_sources() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "doubler",
            r#"
            loop:
                port_pending 0
                push_int 0
                gt
                jump_if_false idle
                take_port 0
                push_int 2
                mul
                write_port 1
                jump loop
            idle:
                yield
                jump loop
            "#,
        ),
        (
            "forwarder",
            r#"
            loop:
                port_pending 0
                push_int 0
                gt
                jump_if_false idle
                take_port 0
                write_port 1
                jump loop
            idle:
                yield
                jump loop
            "#,
        ),
        (
            "accumulator",
            r#"
                push_int 0
                store 0
            loop:
                load 0
                push_int 3
                add
                store 0
                load 0
                write_port 1
                yield
                jump loop
            "#,
        ),
        (
            "lister",
            r#"
                take_port 0
                push_int 1
                make_list 2
                dup
                list_len
                write_port 1
                push_int 0
                list_get
                log
                yield
                halt
            "#,
        ),
        (
            "faulter",
            r#"
                take_port 0
                push_int 0
                div
                write_port 1
                halt
            "#,
        ),
        (
            "runaway",
            r#"
                push_int 1
                store 0
            loop:
                load 0
                push_int 2
                mul
                store 0
                jump loop
            "#,
        ),
    ]
}

#[test]
fn scenario_programs_shadow_execute_identically() {
    for (name, source) in scenario_sources() {
        let program = assemble(name, source).unwrap();
        // A modest budget so the runaway multiplier is preempted (and
        // eventually faults on checked overflow — identically on both
        // planes).
        let mut shadow = ShadowVm::new(program, Budget::new(64)).unwrap();
        let mut host = FakeHost::new(2);
        let mut faulted = false;
        for tick in 0..12 {
            if tick % 3 != 2 {
                host.slots[0].push(Value::I64(tick));
            }
            if shadow.run_slot(&mut host).is_err() {
                faulted = true;
            }
        }
        if name == "faulter" || name == "runaway" {
            assert!(faulted, "{name} should fault on both planes");
        }
        assert!(shadow.slots_run() > 0, "{name} ran no slots");
    }
}

// ---------------------------------------------------------------------------
// 2. A whole PIRTE under all three execution modes.
// ---------------------------------------------------------------------------

fn swc_config(mode: ExecMode) -> PluginSwcConfig {
    PluginSwcConfig::new("plugin-swc")
        .with_exec_mode(mode)
        .with_virtual_port(VirtualPortSpec::new(
            VirtualPortId::new(4),
            "WheelsReq",
            PortKind::TypeIII,
            PortDataDirection::ToSystem,
            "wheels_req",
        ))
        .with_virtual_port(VirtualPortSpec::new(
            VirtualPortId::new(6),
            "SpeedProv",
            PortKind::TypeIII,
            PortDataDirection::ToPlugins,
            "speed_prov",
        ))
}

fn doubler_package(name: &str) -> InstallationPackage {
    let binary = assemble(
        name,
        r#"
        loop:
            port_pending 0
            push_int 0
            gt
            jump_if_false idle
            take_port 0
            push_int 2
            mul
            write_port 1
            jump loop
        idle:
            yield
            jump loop
        "#,
    )
    .unwrap()
    .to_bytes();
    let context = InstallationContext::new(
        PortInitContext::new()
            .with_port("in", PluginPortId::new(0), PluginPortDirection::Required)
            .with_port("out", PluginPortId::new(1), PluginPortDirection::Provided),
        PortLinkContext::new()
            .with_link(
                PluginPortId::new(0),
                LinkTarget::VirtualPort(VirtualPortId::new(6)),
            )
            .with_link(
                PluginPortId::new(1),
                LinkTarget::VirtualPort(VirtualPortId::new(4)),
            ),
    );
    InstallationPackage::new(PluginId::new(name), AppId::new("app"), binary, context)
}

#[test]
fn pirte_routes_identically_under_all_exec_modes() {
    let modes = [ExecMode::Interpreter, ExecMode::Compiled, ExecMode::Shadow];
    let mut outboxes = Vec::new();
    let mut stats = Vec::new();
    for mode in modes {
        let mut pirte = Pirte::new(EcuId::new(2), swc_config(mode));
        pirte.install(doubler_package("dbl")).unwrap();
        let mut outbox = Vec::new();
        for tick in 0..20i64 {
            if tick % 2 == 0 {
                pirte
                    .dispatch_swc_input("speed_prov", Value::I64(tick))
                    .unwrap();
            }
            pirte.run_plugins();
            outbox.extend(pirte.drain_outbox());
        }
        outboxes.push(outbox);
        stats.push(pirte.stats());
        // Fused windows must actually execute on the fast planes.
        if mode == ExecMode::Interpreter {
            assert_eq!(pirte.fusion_counters().total(), 0);
        } else {
            assert!(
                pirte.fusion_counters().push_int_cmp_branch > 0,
                "loop-guard fusion should fire under {mode}"
            );
        }
    }
    assert_eq!(outboxes[0], outboxes[1], "interpreter vs compiled outbox");
    assert_eq!(outboxes[0], outboxes[2], "interpreter vs shadow outbox");
    assert_eq!(stats[0], stats[1], "interpreter vs compiled stats");
    assert_eq!(stats[0], stats[2], "interpreter vs shadow stats");
}

#[test]
fn pirte_forwarder_fires_port_superinstructions() {
    let mut pirte = Pirte::new(EcuId::new(2), swc_config(ExecMode::Compiled));
    let binary = assemble(
        "fwd",
        r#"
        loop:
            port_pending 0
            push_int 0
            gt
            jump_if_false idle
            take_port 0
            write_port 1
            jump loop
        idle:
            yield
            jump loop
        "#,
    )
    .unwrap()
    .to_bytes();
    let context = InstallationContext::new(
        PortInitContext::new()
            .with_port("in", PluginPortId::new(0), PluginPortDirection::Required)
            .with_port("out", PluginPortId::new(1), PluginPortDirection::Provided),
        PortLinkContext::new()
            .with_link(
                PluginPortId::new(0),
                LinkTarget::VirtualPort(VirtualPortId::new(6)),
            )
            .with_link(
                PluginPortId::new(1),
                LinkTarget::VirtualPort(VirtualPortId::new(4)),
            ),
    );
    pirte
        .install(InstallationPackage::new(
            PluginId::new("fwd"),
            AppId::new("app"),
            binary,
            context,
        ))
        .unwrap();
    for tick in 0..10i64 {
        pirte
            .dispatch_swc_input("speed_prov", Value::I64(tick))
            .unwrap();
        pirte.run_plugins();
    }
    let counters = pirte.fusion_counters();
    assert!(counters.take_port_write_port > 0, "forwarder fusion idle");
    assert!(counters.push_int_cmp_branch > 0, "loop-guard fusion idle");
    assert_eq!(pirte.drain_outbox().len(), 10);
}

// ---------------------------------------------------------------------------
// 3. Fixed-seed random programs under adversarial budgets.
// ---------------------------------------------------------------------------

/// Splitmix-style deterministic PRNG — no external crates, stable across
/// platforms, pinned seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn random_value(rng: &mut Rng) -> Value {
    match rng.below(8) {
        0 => Value::Void,
        1 => Value::Bool(rng.below(2) == 0),
        2 => Value::I64(rng.next() as i64 % 1000),
        3 => Value::I64(i64::MAX - rng.below(2) as i64),
        4 => Value::F64(rng.next() as f64 / 7.0),
        5 => Value::Text(format!("t{}", rng.below(100))),
        6 => Value::Bytes(vec![0u8; rng.below(48) as usize]),
        _ => Value::List(vec![Value::I64(1), Value::Bool(true)]),
    }
}

/// Generates a structurally valid random program: jump targets and constant
/// references are reduced modulo their ranges so compilation succeeds; all
/// runtime behaviour (underflow, type faults, budget exhaustion, missing
/// host ports) is left to chance.
fn random_program(rng: &mut Rng, index: usize) -> Program {
    let len = 4 + rng.below(36) as usize;
    let mut code = Vec::with_capacity(len);
    for _ in 0..len {
        let target = rng.below(len as u64) as u16;
        // Weighted draw: pushes dominate so a healthy share of programs run
        // clean; the risky tail (underflow, overflow, type faults, missing
        // ports) still gets drawn often enough to exercise every fault path.
        let op = match rng.below(100) {
            0..=13 => Instruction::PushInt(rng.next() as i64 % 100),
            14..=15 => Instruction::PushInt(i64::MAX - rng.below(2) as i64),
            16..=23 => Instruction::PushConst(rng.below(4) as u16),
            24..=31 => Instruction::Load(rng.below(10) as u8),
            32..=37 => Instruction::Store(rng.below(10) as u8),
            38 => Instruction::Add,
            39 => Instruction::Sub,
            40 => Instruction::Mul,
            41 => Instruction::Div,
            42 => Instruction::Rem,
            43 => Instruction::Neg,
            44 => Instruction::Not,
            45 => Instruction::And,
            46 => Instruction::Or,
            47..=48 => Instruction::Eq,
            49 => Instruction::Ne,
            50 => Instruction::Lt,
            51 => Instruction::Le,
            52 => Instruction::Gt,
            53 => Instruction::Ge,
            54..=56 => Instruction::Jump(target),
            57..=59 => Instruction::JumpIfFalse(target),
            60..=61 => Instruction::JumpIfTrue(target),
            62..=66 => Instruction::ReadPort(rng.below(4) as u32),
            67..=71 => Instruction::TakePort(rng.below(4) as u32),
            72..=74 => Instruction::WritePort(rng.below(4) as u32),
            75..=78 => Instruction::PortPending(rng.below(4) as u32),
            79..=82 => Instruction::Dup,
            83 => Instruction::Pop,
            84 => Instruction::Swap,
            85 => Instruction::MakeList(rng.below(4) as u8),
            86 => Instruction::ListGet,
            87 => Instruction::ListLen,
            88..=89 => Instruction::Log,
            90..=95 => Instruction::Yield,
            96..=98 => Instruction::Nop,
            _ => Instruction::Halt,
        };
        code.push(op);
    }
    Program::new(format!("rand{index}"))
        .with_constant(Value::I64(7))
        .with_constant(Value::F64(2.5))
        .with_constant(Value::Text("probe".into()))
        .with_constant(Value::Bytes(vec![0u8; 40]))
        .with_code(code)
}

/// Generates a program from a safe subset (stack depth tracked, no
/// arithmetic, no jumps, ports 0..=2 only) that is guaranteed to run clean —
/// these exercise the compiled plane's happy paths and give the port-fusion
/// windows (`take_port; store`, `load; write_port`) a chance to fire.
fn tame_program(rng: &mut Rng, index: usize) -> Program {
    let len = 4 + rng.below(28) as usize;
    let mut code = Vec::with_capacity(len);
    let mut depth = 0usize;
    for _ in 0..len {
        let op = match rng.below(10) {
            0..=4 if depth < 2 => {
                depth += 1;
                match rng.below(6) {
                    0 => Instruction::PushInt(rng.next() as i64 % 50),
                    1 => Instruction::PushConst(rng.below(3) as u16),
                    2 => Instruction::ReadPort(rng.below(3) as u32),
                    3 => Instruction::TakePort(rng.below(3) as u32),
                    4 => Instruction::PortPending(rng.below(3) as u32),
                    _ => Instruction::Load(0),
                }
            }
            5..=7 if depth >= 1 => {
                depth -= 1;
                match rng.below(4) {
                    0 => Instruction::Store(0),
                    1 => Instruction::Pop,
                    2 => Instruction::Log,
                    _ => Instruction::WritePort(rng.below(3) as u32),
                }
            }
            8 if depth >= 2 => {
                depth -= 1;
                if rng.below(2) == 0 {
                    Instruction::Eq
                } else {
                    Instruction::Ne
                }
            }
            9 => Instruction::Yield,
            _ => Instruction::Nop,
        };
        code.push(op);
    }
    Program::new(format!("tame{index}"))
        .with_constant(Value::I64(7))
        .with_constant(Value::F64(2.5))
        .with_constant(Value::Text("probe".into()))
        .with_code(code)
}

fn random_budget(rng: &mut Rng) -> Budget {
    let instructions = [3, 5, 7, 16, 64][rng.below(5) as usize];
    let stack = [2, 3, 4, 256][rng.below(4) as usize];
    let memory = [64, 128, 200, 64 * 1024][rng.below(4) as usize];
    let locals = [1, 2, 8][rng.below(3) as usize];
    Budget::new(instructions)
        .with_max_stack(stack)
        .with_max_memory_bytes(memory)
        .with_locals(locals)
}

#[test]
fn fixed_seed_random_programs_shadow_execute_identically() {
    let mut rng = Rng(0xDAC2_0140_0000_0005);
    let mut faults = 0u32;
    let mut clean = 0u32;
    for index in 0..400 {
        // Alternate wild soup (fault paths) with tame programs (happy
        // paths); the tame half gets enough memory that arbitrary port
        // traffic cannot push it over budget.
        let (program, budget) = if index % 2 == 0 {
            (random_program(&mut rng, index), random_budget(&mut rng))
        } else {
            (
                tame_program(&mut rng, index),
                random_budget(&mut rng).with_max_memory_bytes(64 * 1024),
            )
        };
        let mut shadow =
            ShadowVm::new(program, budget).expect("fixed-up random programs always compile");
        // Only 3 host slots: port index 3 exercises the host-fault path.
        let mut host = FakeHost::new(3);
        let mut errored = false;
        for _ in 0..4 {
            for _ in 0..rng.below(3) {
                let slot = rng.below(3) as usize;
                let value = random_value(&mut rng);
                host.slots[slot].push(value);
            }
            // ShadowVm panics on any observable divergence; errors are a
            // legitimate (and equivalence-checked) outcome.
            if shadow.run_slot(&mut host).is_err() {
                errored = true;
                break;
            }
        }
        if errored {
            faults += 1;
        } else {
            clean += 1;
        }
    }
    // The sweep must genuinely exercise both the happy paths and the fault
    // paths — a generator drifting to all-faults (or none) would gut the
    // proof.
    assert!(faults > 100, "only {faults}/400 random programs faulted");
    assert!(clean > 100, "only {clean}/400 random programs ran clean");
}
