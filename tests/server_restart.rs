//! The server crash/restart acceptance run, pinned for CI: 12 vehicles at
//! 10 % loss with latency jitter, a fleet-wide v1 install wave, the trusted
//! server killed mid-wave and reconstructed from its write-ahead journal,
//! and a vehicle reboot landing inside the recovery window so both epoch
//! axes (vehicle `boot_epoch`, server incarnation id) move at once.
//!
//! What must hold (asserted here and inside the scenario):
//!
//! * the replayed server is **byte-for-byte identical** to the crashed one
//!   (`snapshot_bytes` equality and ledger equality, checked at the crash),
//!   and the successor's own journal replays byte-identically again at the
//!   end of the campaign — durability survives recovery,
//! * every vehicle converges to exactly its desired manifest, verified
//!   against the ECM `StateReport` ground truth after the campaign,
//! * no double-apply across either epoch axis: no PIRTE of any incarnation
//!   ever rejects a duplicate, and every actuator value is divisible by
//!   exactly the manifest's gain — stale pre-crash downlinks and
//!   post-recovery re-pushes never apply twice,
//! * the transport ledger balances at every tick, the crash included (the
//!   network outlives the server process),
//! * the ledger's push accounting stays honest under recovery: completed
//!   installs never exceed pushes, and retransmissions are counted apart.
//!
//! Everything is seeded (transport seed, fixed topology, scheduled crash and
//! reboot), so a failure here reproduces identically on any machine.

use dynar::foundation::value::Value;
use dynar::sim::scenario::fleet::GAIN_V1;
use dynar::sim::scenario::restart::{RestartConfig, RestartScenario};

/// The full pinned campaign at the given server shard count.  The crash and
/// recovery replay a journal whose records were produced by *parallel* ticks
/// when `shards > 1` — the deterministic shard merge must make that journal
/// indistinguishable from a serial one, so every assertion holds with the
/// same numbers at any shard count.
fn restart_acceptance(shards: usize) {
    let config = RestartConfig {
        shards,
        vehicles: 12,
        workers_per_vehicle: 3,
        loss_probability: 0.10,
        jitter_ticks: 2,
        seed: 0xD14_57E4,
        compaction_interval: 64,
        // Mid-install of the fleet-wide wave: packages are in flight and
        // acks are pending when the process dies.
        crash_tick: 12,
        // The reboot lands two ticks into the recovery window.
        reboot: Some((14, 2)),
        ..RestartConfig::default()
    };
    assert!((config.loss_probability - 0.10).abs() < f64::EPSILON);

    let mut scenario = RestartScenario::build_with(config).unwrap();
    let report = scenario.run().unwrap();

    // The crash and the concurrent reboot both happened as scheduled.
    assert_eq!(report.crashed_at, 12, "{report:?}");
    assert_eq!(report.rebooted, 1, "{report:?}");
    assert_eq!(report.incarnation, 1, "exactly one recovery, {report:?}");
    assert!(report.journal_bytes > 0, "{report:?}");

    // The chaos was real: the lossy link dropped messages both before and
    // after the crash, and the reliability plane retransmitted.
    assert!(report.transport.lost > 0, "{report:?}");
    let ledger = scenario.inner.fleet.server.ledger().clone();
    assert!(ledger.retransmissions > 0, "{ledger:?}");

    // Conservation at quiescence (held at every tick inside the run).
    let t = report.transport;
    assert_eq!(t.sent, t.delivered + t.lost + t.dropped + t.in_flight);

    // Ledger honesty under recovery: every completed install was pushed
    // exactly once (re-pushes after epoch voids are new pushes; plain
    // retransmissions are not), and nothing failed or burned its budget.
    assert!(
        ledger.installs_completed <= ledger.installs_pushed,
        "{ledger:?}"
    );
    assert_eq!(ledger.operations_failed, 0, "{ledger:?}");
    assert_eq!(ledger.retries_exhausted, 0, "{ledger:?}");
    assert_eq!(report.retry_failures, 0, "{report:?}");
    // Every vehicle's install resolved: 3 packages × 12 vehicles at least.
    assert!(ledger.installs_completed >= 12, "{ledger:?}");

    // The fleet is alive after the campaign: sensor chains actuate on every
    // vehicle — the rebooted incarnation included — with exactly the v1
    // gain.  A double-applied install would host a second plug-in instance
    // and break the divisibility.
    scenario.inner.fleet.run(40).unwrap();
    for handle in scenario.inner.handles().to_vec() {
        for (worker, _, _) in &handle.workers {
            let actuated = scenario.inner.actuator_value(&handle.id, *worker).unwrap();
            let Value::I64(v) = actuated else {
                panic!("{}/{worker}: no actuation, got {actuated:?}", handle.id);
            };
            assert!(
                v > 0,
                "{}/{worker}: signal chain dead after the restart",
                handle.id
            );
            assert_eq!(
                v % GAIN_V1,
                0,
                "{}/{worker}: v1 gain not applied",
                handle.id
            );
        }
    }

    // End-state invariants once more, after the extra drive time.
    assert!(scenario.fleet_converged());
}

#[test]
fn restart_acceptance_twelve_vehicles_ten_percent_loss() {
    restart_acceptance(1);
}

#[test]
fn restart_acceptance_two_shards() {
    restart_acceptance(2);
}

#[test]
fn restart_acceptance_eight_shards() {
    restart_acceptance(8);
}
