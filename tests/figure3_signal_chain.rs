//! Figure 3 — the full demonstrator: installation over the air, the
//! phone-to-actuator signal chain, and runtime reconfiguration (stop /
//! uninstall) while the vehicle keeps running.

use dynar::core::lifecycle::PluginState;
use dynar::core::message::ManagementMessage;
use dynar::foundation::ids::{EcuId, PluginId};
use dynar::sim::scenario::remote_car::RemoteCarScenario;

#[test]
fn over_the_air_installation_reaches_both_ecus() {
    let mut scenario = RemoteCarScenario::build().unwrap();
    scenario.install_app().unwrap();

    let ecm = scenario.ecm_pirte();
    let states = ecm.lock().plugin_states();
    assert_eq!(states, vec![(PluginId::new("COM"), PluginState::Running)]);

    let pirte2 = scenario.pirte2();
    let states = pirte2.lock().plugin_states();
    assert_eq!(states, vec![(PluginId::new("OP"), PluginState::Running)]);
}

#[test]
fn phone_commands_drive_the_car_and_built_in_sw_is_untouched() {
    let mut scenario = RemoteCarScenario::build().unwrap();
    scenario.install_app().unwrap();
    let report = scenario.drive(300).unwrap();

    assert!(report.commands_sent >= 30);
    assert!(
        report.commands_delivered >= report.commands_sent / 2,
        "most commands should reach the actuators: {report:?}"
    );
    assert!(report.final_speed > 0.0);
    assert!(report.odometer > 0.0);
    assert!(
        report.final_wheel_angle.abs() <= 45.0,
        "chassis clamps the angle"
    );
}

#[test]
fn plugins_can_be_stopped_and_uninstalled_at_runtime() {
    let mut scenario = RemoteCarScenario::build().unwrap();
    scenario.install_app().unwrap();
    let before = scenario.drive(100).unwrap();
    assert!(before.commands_delivered > 0);

    // Stop the OP plug-in through the management path and keep driving: the
    // built-in software keeps running, but no further commands are applied.
    let pirte2 = scenario.pirte2();
    pirte2.lock().handle_management(ManagementMessage::Stop {
        plugin: PluginId::new("OP"),
    });
    let delivered_before = scenario.plant_state().lock().commands_applied;
    scenario.drive(100).unwrap();
    let delivered_after = scenario.plant_state().lock().commands_applied;
    assert_eq!(
        delivered_before, delivered_after,
        "no commands while OP is stopped"
    );

    // Uninstall it entirely; the PIRTE frees the SW-C-scope port ids.
    pirte2
        .lock()
        .handle_management(ManagementMessage::Uninstall {
            plugin: PluginId::new("OP"),
        });
    assert_eq!(pirte2.lock().plugin_count(), 0);
}

#[test]
fn installation_survives_a_lossy_bus() {
    use dynar::bus::network::BusConfig;
    use dynar::fes::transport::TransportConfig;
    // 5 % frame loss: segmentation drops incomplete packages, but the type I
    // management traffic for the local COM plug-in and the retransmission-free
    // signal chain still allow the scenario to build; installation of the
    // remote OP plug-in may need the full time budget.
    let bus = BusConfig {
        drop_probability: 0.05,
        ..BusConfig::default()
    };
    let scenario = RemoteCarScenario::build_with(bus, TransportConfig::default());
    assert!(scenario.is_ok());
}

#[test]
fn ecm_learns_external_routes_from_the_ecc() {
    let mut scenario = RemoteCarScenario::build().unwrap();
    scenario.install_app().unwrap();
    // After installation the ECM PIRTE hosts COM on ECU1 and the plant on
    // ECU2 received nothing yet.
    assert_eq!(scenario.ecm_pirte().lock().ecu(), EcuId::new(1));
    assert_eq!(scenario.plant_state().lock().commands_applied, 0);
}
