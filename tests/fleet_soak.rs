//! Deterministic multi-ECU soak tests: the demonstrator scenarios plus a
//! ten-ECU fleet driven through the trusted server for thousands of ticks,
//! with PIRTE / bus / kernel statistics invariants checked along the way.
//!
//! These are the repository's first scenario-diversity anchors beyond the
//! paper's own figures: they exercise sustained operation (not just the first
//! few ticks after installation), the full install → update → uninstall life
//! cycle, and a topology wider than the two-ECU model car.

use dynar::bus::frame::CanId;
use dynar::bus::network::BusConfig;
use dynar::core::plugin::PluginPortDirection;
use dynar::core::swc::{PluginSwc, PluginSwcConfig, SharedPirte};
use dynar::core::virtual_port::{PortDataDirection, PortKind, VirtualPortSpec};
use dynar::ecm::gateway::{EcmConfig, EcmSwc, SharedHub};
use dynar::fes::device::SmartPhone;
use dynar::fes::transport::{TransportConfig, TransportHub};
use dynar::foundation::ids::{AppId, EcuId, PluginId, SwcId, UserId, VehicleId, VirtualPortId};
use dynar::foundation::value::Value;
use dynar::rte::ecu::Ecu;
use dynar::server::model::{
    AppDefinition, ConnectionDecl, HwConf, PluginArtifact, PluginPortDecl, PluginSwcDecl, SwConf,
    SystemSwConf, VirtualPortDecl, VirtualPortKindDecl,
};
use dynar::server::server::{DeploymentStatus, TrustedServer};
use dynar::sim::scenario::quickstart::Quickstart;
use dynar::sim::scenario::remote_car::RemoteCarScenario;
use dynar::sim::world::{Vehicle, World};
use dynar::vm::assembler::assemble;

mod lossy {
    //! The lossy soak: a fleet installing over a transport that loses
    //! messages, asserting that no management operation outlives the
    //! server's retry horizon — it resolves (installed or typed-failed) or
    //! the reliability plane has a bug.

    use dynar::fes::transport::TransportConfig;
    use dynar::foundation::ids::AppId;
    use dynar::server::server::DeploymentStatus;
    use dynar::sim::scenario::fleet::{FleetScenario, FleetScenarioConfig, APP_TELEMETRY};

    #[test]
    fn no_pending_operation_survives_the_retry_horizon() {
        let mut scenario = FleetScenario::build_with(FleetScenarioConfig {
            vehicles: 4,
            transport: TransportConfig {
                latency_ticks: 1,
                loss_probability: 0.08,
                seed: 0x50AC,
            },
            ..FleetScenarioConfig::default()
        })
        .unwrap();
        let user = scenario.user.clone();
        let app = AppId::new(APP_TELEMETRY);
        let targets = scenario.fleet.vehicle_ids().to_vec();
        scenario.fleet.deploy_wave(&user, &app, &targets).unwrap();

        // The horizon plus margin for transport latency and vehicle-internal
        // relaying: past this point nothing may still be pending.
        let horizon = scenario.fleet.server.retry_horizon_ticks() + 120;
        scenario.fleet.run(horizon).unwrap();

        for vehicle in &targets {
            let status = scenario.fleet.server.deployment_status(vehicle, &app);
            assert!(
                !matches!(status, DeploymentStatus::Pending { .. }),
                "{vehicle}: operation still pending after the retry horizon: {status:?}"
            );
            assert!(
                scenario.fleet.server.pending_operations(vehicle).is_empty(),
                "{vehicle}: pending operations survived the horizon"
            );
            assert_eq!(
                scenario.fleet.server.outstanding_count(vehicle),
                0,
                "{vehicle}: outstanding retransmission state survived the horizon"
            );
        }
        let transport = scenario.fleet.transport_stats();
        assert!(
            transport.lost > 0,
            "the loss model must bite: {transport:?}"
        );
        assert!(transport.is_conserved(), "{transport:?}");

        // At 8 % loss with the default retry budget every install converges.
        for vehicle in &targets {
            assert_eq!(
                scenario.fleet.server.deployment_status(vehicle, &app),
                DeploymentStatus::Installed,
                "retries recover every lost package at this loss rate"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario soaks: quickstart and the Figure 3 model car, run long.
// ---------------------------------------------------------------------------

#[test]
fn quickstart_survives_two_thousand_sensor_cycles() {
    let mut system = Quickstart::build().unwrap();
    for round in 1..=2000i64 {
        system.feed_sensor(round).unwrap();
        assert_eq!(
            system.actuator_output().unwrap(),
            Value::I64(round * 2),
            "round {round} not doubled"
        );
    }

    let stats = system.pirte.lock().stats();
    assert_eq!(stats.installs, 1);
    assert_eq!(
        stats.plugin_faults, 0,
        "no plug-in may fault during the soak"
    );
    assert_eq!(stats.rejected_operations, 0);
    assert!(
        stats.signals_in >= 2000,
        "every sensor value enters the PIRTE"
    );
    assert!(
        stats.signals_out >= 2000,
        "every doubled value leaves the PIRTE"
    );
    assert!(stats.slots_granted >= 2000);
    assert!(stats.instructions_executed > stats.slots_granted);

    let kernel = system.ecu.kernel().stats();
    assert!(
        kernel.dispatches >= 2000,
        "the PIRTE runnable ran every tick"
    );
    assert_eq!(kernel.activation_overflows, 0);
    assert!(system.ecu.take_behaviour_errors().is_empty());
}

#[test]
fn remote_car_survives_a_long_drive() {
    let mut scenario = RemoteCarScenario::build().unwrap();
    scenario.install_app().unwrap();
    let report = scenario.drive(2500).unwrap();

    assert!(report.commands_sent >= 250);
    assert!(
        report.commands_delivered >= report.commands_sent / 2,
        "most commands must survive the long drive: {report:?}"
    );
    assert!(report.odometer > 0.0);
    assert!(report.final_wheel_angle.abs() <= 45.0);

    // PIRTE invariants on both ECUs.
    for (name, pirte) in [
        ("ECM", scenario.ecm_pirte()),
        ("plugin-swc-2", scenario.pirte2()),
    ] {
        let stats = pirte.lock().stats();
        assert_eq!(stats.installs, 1, "{name}: exactly one plug-in installed");
        assert_eq!(stats.plugin_faults, 0, "{name}: no VM faults");
        assert_eq!(
            stats.rejected_operations, 0,
            "{name}: no rejected operations"
        );
        assert!(stats.signals_in > 0, "{name}: signals flowed in");
        assert!(stats.signals_out > 0, "{name}: signals flowed out");
        assert!(
            stats.slots_granted >= 2500,
            "{name}: the plug-in got a slot every tick"
        );
    }

    // Bus invariants: the default error model drops nothing, everything that
    // finished transmission found a subscriber, and the backlog drains.
    let world = scenario.world_mut();
    let bus = world.vehicle.bus().stats();
    assert!(bus.sent > 0 && bus.delivered > 0);
    assert_eq!(bus.dropped, 0, "default bus config is lossless");
    assert!(bus.payload_bytes > 0);
    assert!(
        bus.worst_latency >= 1,
        "latency model adds at least one tick"
    );

    // Kernel invariants and behaviour errors on every ECU.
    for id in [EcuId::new(1), EcuId::new(2)] {
        let ecu = world.vehicle.ecu_mut(id).unwrap();
        let kernel = ecu.kernel().stats();
        assert!(
            kernel.dispatches >= 2500,
            "ECU {id}: runnables ran every tick"
        );
        assert_eq!(
            kernel.activation_overflows, 0,
            "ECU {id}: no lost activations"
        );
        assert!(
            ecu.take_behaviour_errors().is_empty(),
            "ECU {id}: no component behaviour errors"
        );
    }
}

// ---------------------------------------------------------------------------
// The ten-ECU fleet: one ECM ECU and nine worker ECUs, driven through the
// trusted server for a full install → update → uninstall cycle.
// ---------------------------------------------------------------------------

const WORKER_ECUS: u16 = 9;
const FLEET_MODEL: &str = "fleet-truck";
const FLEET_VIN: &str = "VIN-FLEET-1";
const APP_V1: &str = "fleet-telemetry";
const APP_V2: &str = "fleet-telemetry-v2";

fn worker_ids() -> impl Iterator<Item = EcuId> {
    (0..WORKER_ECUS).map(|i| EcuId::new(i + 2))
}

fn data_frame(worker: EcuId) -> CanId {
    CanId::new(0x200 + u32::from(worker.index())).unwrap()
}

fn mgmt_down_frame(worker: EcuId) -> CanId {
    CanId::new(0x300 + u32::from(worker.index())).unwrap()
}

fn mgmt_up_frame(worker: EcuId) -> CanId {
    CanId::new(0x400 + u32::from(worker.index())).unwrap()
}

fn fleet_hw() -> HwConf {
    let mut hw = HwConf::new().with_ecu(EcuId::new(1), 1024);
    for worker in worker_ids() {
        hw = hw.with_ecu(worker, 512);
    }
    hw
}

fn fleet_system() -> SystemSwConf {
    let ecm_ports = worker_ids()
        .enumerate()
        .map(|(i, worker)| VirtualPortDecl {
            id: VirtualPortId::new(i as u16),
            name: format!("Fan{i}"),
            kind: VirtualPortKindDecl::TypeII { peer: worker },
        })
        .collect();
    let mut system = SystemSwConf::new(FLEET_MODEL).with_swc(PluginSwcDecl {
        ecu: EcuId::new(1),
        swc_name: "ecm-swc".into(),
        is_ecm: true,
        virtual_ports: ecm_ports,
    });
    for worker in worker_ids() {
        system = system.with_swc(PluginSwcDecl {
            ecu: worker,
            swc_name: format!("worker-swc-{worker}"),
            is_ecm: false,
            virtual_ports: vec![
                VirtualPortDecl {
                    id: VirtualPortId::new(0),
                    name: "PluginDataIn".into(),
                    kind: VirtualPortKindDecl::TypeII {
                        peer: EcuId::new(1),
                    },
                },
                VirtualPortDecl {
                    id: VirtualPortId::new(1),
                    name: "ActReq".into(),
                    kind: VirtualPortKindDecl::TypeIII,
                },
            ],
        });
    }
    system
}

/// The COM plug-in for the fleet: for each worker `i` it polls external
/// command port `i` and forwards pending values on port `WORKER_ECUS + i`.
fn com_source() -> String {
    let mut source = String::from("loop:\n");
    for i in 0..WORKER_ECUS {
        source.push_str(&format!(
            "    port_pending {i}\n    push_int 0\n    gt\n    jump_if_false skip_{i}\n    take_port {i}\n    write_port {fwd}\nskip_{i}:\n",
            fwd = WORKER_ECUS + i,
        ));
    }
    source.push_str("    yield\n    jump loop\n");
    source
}

/// The worker plug-in: consume commands on port 0, apply `gain`, actuate on
/// port 1.
fn op_source(gain: i64) -> String {
    format!(
        r#"
loop:
    port_pending 0
    push_int 0
    gt
    jump_if_false idle
    take_port 0
    push_int {gain}
    mul
    write_port 1
    jump loop
idle:
    yield
    jump loop
"#
    )
}

/// Builds one fleet application: COM on the ECM ECU fanning out to one OP
/// plug-in per worker ECU.  `suffix` distinguishes v1 from v2 plug-in ids and
/// external message ids; `gain` is the worker-side multiplier.
fn fleet_app(app: &str, suffix: &str, message_prefix: &str, gain: i64) -> AppDefinition {
    let com_id = PluginId::new(format!("COM{suffix}"));
    let com_binary = assemble(com_id.name(), &com_source()).unwrap().to_bytes();
    let mut com_ports = Vec::new();
    for i in 0..WORKER_ECUS {
        com_ports.push(PluginPortDecl {
            name: format!("cmd_{i}"),
            direction: PluginPortDirection::Required,
        });
    }
    for i in 0..WORKER_ECUS {
        com_ports.push(PluginPortDecl {
            name: format!("fwd_{i}"),
            direction: PluginPortDirection::Provided,
        });
    }
    let mut definition = AppDefinition::new(AppId::new(app)).with_plugin(PluginArtifact {
        id: com_id.clone(),
        binary: com_binary,
        ports: com_ports,
    });

    let op_binary = assemble("OP", &op_source(gain)).unwrap().to_bytes();
    let mut conf = SwConf::new(FLEET_MODEL).with_placement(com_id.clone(), EcuId::new(1));
    for (i, worker) in worker_ids().enumerate() {
        let op_id = PluginId::new(format!("OP{suffix}-{worker}"));
        definition = definition.with_plugin(PluginArtifact {
            id: op_id.clone(),
            binary: op_binary.clone(),
            ports: vec![
                PluginPortDecl {
                    name: "data_in".into(),
                    direction: PluginPortDirection::Required,
                },
                PluginPortDecl {
                    name: "act_out".into(),
                    direction: PluginPortDirection::Provided,
                },
            ],
        });
        conf = conf
            .with_placement(op_id.clone(), worker)
            .with_connection(
                com_id.clone(),
                format!("cmd_{i}"),
                ConnectionDecl::External {
                    endpoint: "console".into(),
                    message_id: format!("{message_prefix}{worker}"),
                },
            )
            .with_connection(
                com_id.clone(),
                format!("fwd_{i}"),
                ConnectionDecl::RemotePlugin {
                    plugin: op_id.clone(),
                    port: "data_in".into(),
                },
            )
            .with_connection(
                op_id,
                "act_out",
                ConnectionDecl::VirtualPort {
                    name: "ActReq".into(),
                },
            );
    }
    definition.with_sw_conf(conf)
}

struct Fleet {
    world: World,
    console: SmartPhone,
    ecm_pirte: SharedPirte,
    workers: Vec<(EcuId, SwcId, SharedPirte)>,
    user: UserId,
}

impl Fleet {
    fn build() -> Self {
        let ecm_ecu_id = EcuId::new(1);

        // --- Trusted server with both application versions uploaded -------
        let mut server = TrustedServer::new();
        let user = UserId::new("fleet-ops");
        let vehicle_id = VehicleId::new(FLEET_VIN);
        server.create_user(user.clone()).unwrap();
        server
            .register_vehicle(vehicle_id.clone(), fleet_hw(), fleet_system())
            .unwrap();
        server.bind_vehicle(&user, &vehicle_id).unwrap();
        server.upload_app(fleet_app(APP_V1, "", "Cmd", 1)).unwrap();
        server
            .upload_app(fleet_app(APP_V2, "-v2", "Boost", 2))
            .unwrap();

        // --- ECM ECU -------------------------------------------------------
        let mut ecm_swc_config = PluginSwcConfig::new("ecm-swc");
        for (i, _) in worker_ids().enumerate() {
            ecm_swc_config = ecm_swc_config.with_virtual_port(VirtualPortSpec::new(
                VirtualPortId::new(i as u16),
                format!("Fan{i}"),
                PortKind::TypeII,
                PortDataDirection::ToSystem,
                format!("s{i}_out"),
            ));
        }
        let mut ecm_config = EcmConfig::new(ecm_swc_config, "vehicle-1", "server");
        for worker in worker_ids() {
            ecm_config = ecm_config.with_remote_swc(
                worker,
                format!("to_{worker}"),
                format!("from_{worker}"),
            );
        }

        let hub: SharedHub = std::sync::Arc::new(parking_lot::Mutex::new(TransportHub::new(
            TransportConfig::default(),
        )));
        let mut ecm_ecu = Ecu::new(ecm_ecu_id);
        let ecm_descriptor = ecm_config.descriptor().unwrap();
        let (ecm_behavior, ecm_pirte) = EcmSwc::create(ecm_ecu_id, ecm_config, hub.clone());
        let ecm_swc = ecm_ecu
            .add_component(ecm_descriptor, Box::new(ecm_behavior))
            .unwrap();

        // --- Worker ECUs ---------------------------------------------------
        let mut ecus = Vec::new();
        let mut workers = Vec::new();
        let mut frames = Vec::new();
        for (i, worker) in worker_ids().enumerate() {
            let config = PluginSwcConfig::new(format!("worker-swc-{worker}"))
                .with_type_i_ports("mgmt_in", "mgmt_out")
                .with_virtual_port(VirtualPortSpec::new(
                    VirtualPortId::new(0),
                    "PluginDataIn",
                    PortKind::TypeII,
                    PortDataDirection::ToPlugins,
                    "s_in",
                ))
                .with_virtual_port(VirtualPortSpec::new(
                    VirtualPortId::new(1),
                    "ActReq",
                    PortKind::TypeIII,
                    PortDataDirection::ToSystem,
                    "act_req",
                ));
            let mut ecu = Ecu::new(worker);
            let descriptor = config.descriptor().unwrap();
            let (behavior, pirte) = PluginSwc::create(worker, config);
            let swc = ecu.add_component(descriptor, Box::new(behavior)).unwrap();

            // Cross-ECU wiring: plug-in data and the management port pair.
            ecm_ecu
                .map_signal_out(ecm_swc, &format!("s{i}_out"), data_frame(worker))
                .unwrap();
            ecu.map_signal_in(data_frame(worker), swc, "s_in").unwrap();
            ecm_ecu
                .map_signal_out(ecm_swc, &format!("to_{worker}"), mgmt_down_frame(worker))
                .unwrap();
            ecu.map_signal_in(mgmt_down_frame(worker), swc, "mgmt_in")
                .unwrap();
            ecu.map_signal_out(swc, "mgmt_out", mgmt_up_frame(worker))
                .unwrap();
            ecm_ecu
                .map_signal_in(mgmt_up_frame(worker), ecm_swc, &format!("from_{worker}"))
                .unwrap();

            frames.extend([
                data_frame(worker),
                mgmt_down_frame(worker),
                mgmt_up_frame(worker),
            ]);
            ecus.push(ecu);
            workers.push((worker, swc, pirte));
        }

        let mut all_ecus = vec![ecm_ecu];
        all_ecus.extend(ecus);
        let mut vehicle = Vehicle::new(
            all_ecus,
            BusConfig {
                frames_per_tick: 64,
                ..BusConfig::default()
            },
        );
        vehicle.open_acceptance_filters(&frames);

        let world = World::new(server, vehicle, vehicle_id, "server", "vehicle-1", hub);
        let console = SmartPhone::new("console", "vehicle-1");
        console.attach(&mut *world.hub.lock());

        Fleet {
            world,
            console,
            ecm_pirte,
            workers,
            user,
        }
    }

    fn deploy(&mut self, app: &str) {
        let vehicle_id = self.world.vehicle_id().clone();
        self.world
            .server
            .deploy(&self.user, &vehicle_id, &AppId::new(app))
            .unwrap();
        self.wait_for_status(app, &DeploymentStatus::Installed);
    }

    fn uninstall(&mut self, app: &str) {
        let vehicle_id = self.world.vehicle_id().clone();
        self.world
            .server
            .uninstall(&self.user, &vehicle_id, &AppId::new(app))
            .unwrap();
        self.wait_for_status(app, &DeploymentStatus::NotInstalled);
    }

    fn wait_for_status(&mut self, app: &str, wanted: &DeploymentStatus) {
        let vehicle_id = self.world.vehicle_id().clone();
        let app = AppId::new(app);
        for _ in 0..800 {
            self.world.step().unwrap();
            if self.world.server.deployment_status(&vehicle_id, &app) == *wanted {
                return;
            }
        }
        panic!(
            "deployment of {app} never reached {wanted:?}: {:?}",
            self.world.server.deployment_status(&vehicle_id, &app)
        );
    }

    /// Runs `ticks` ticks; every third tick the console commands the next
    /// worker (round-robin) with `{message_prefix}{worker} = value(tick)`.
    fn drive(&mut self, ticks: u64, message_prefix: &str, value: impl Fn(u64) -> i64) {
        let targets: Vec<EcuId> = worker_ids().collect();
        let mut next = 0usize;
        for tick in 0..ticks {
            if tick % 3 == 0 {
                let worker = targets[next % targets.len()];
                next += 1;
                let mut hub = self.world.hub.lock();
                self.console
                    .send(
                        &mut *hub,
                        &format!("{message_prefix}{worker}"),
                        Value::I64(value(tick)),
                    )
                    .unwrap();
            }
            self.world.step().unwrap();
        }
        // Quiet period: let in-flight frames and VM queues drain.
        for _ in 0..120 {
            self.world.step().unwrap();
        }
    }

    fn actuator_value(&self, worker: EcuId, swc: SwcId) -> Value {
        self.world
            .vehicle
            .ecu(worker)
            .unwrap()
            .rte()
            .read_port_by_name(swc, "act_req")
            .unwrap()
    }

    fn assert_healthy(&mut self, ticks_so_far: u64) {
        let bus = self.world.vehicle.bus().stats();
        assert!(bus.sent > 0 && bus.delivered > 0);
        assert_eq!(bus.dropped, 0, "lossless bus must not drop frames");
        assert!(
            self.world.vehicle.bus().backlog() <= 16,
            "bus backlog must stay bounded, got {}",
            self.world.vehicle.bus().backlog()
        );

        let ecu_ids: Vec<EcuId> = std::iter::once(EcuId::new(1)).chain(worker_ids()).collect();
        for id in ecu_ids {
            let ecu = self.world.vehicle.ecu_mut(id).unwrap();
            let kernel = ecu.kernel().stats();
            assert!(
                kernel.dispatches >= ticks_so_far,
                "ECU {id}: PIRTE runnable must run every tick ({} < {ticks_so_far})",
                kernel.dispatches
            );
            assert_eq!(
                kernel.activation_overflows, 0,
                "ECU {id}: no lost activations"
            );
            assert!(
                ecu.take_behaviour_errors().is_empty(),
                "ECU {id}: no component behaviour errors"
            );
        }
    }
}

#[test]
fn ten_ecu_fleet_install_update_uninstall_cycle() {
    let mut fleet = Fleet::build();

    // --- Install v1 across all ten ECUs --------------------------------
    fleet.deploy(APP_V1);
    assert_eq!(
        fleet.ecm_pirte.lock().plugin_count(),
        1,
        "COM runs on the ECM"
    );
    for (worker, _, pirte) in &fleet.workers {
        let states = pirte.lock().plugin_states();
        assert_eq!(states.len(), 1, "worker {worker} runs exactly one plug-in");
        assert_eq!(
            states[0],
            (
                PluginId::new(format!("OP-{worker}")),
                dynar::core::lifecycle::PluginState::Running
            )
        );
    }

    // --- Soak v1: unit-gain telemetry fan-out ---------------------------
    fleet.drive(1200, "Cmd", |tick| tick as i64 + 1);
    for (worker, swc, pirte) in fleet.workers.clone() {
        let actuated = fleet.actuator_value(worker, swc);
        assert!(
            matches!(actuated, Value::I64(v) if v > 0),
            "worker {worker}: commands must reach the actuator, got {actuated:?}"
        );
        let stats = pirte.lock().stats();
        assert!(stats.signals_in > 0, "worker {worker}: data arrived");
        assert!(stats.signals_out > 0, "worker {worker}: data actuated");
        assert_eq!(stats.plugin_faults, 0, "worker {worker}: no VM faults");
        assert_eq!(stats.rejected_operations, 0, "worker {worker}: no rejects");
    }
    let ecm_stats = fleet.ecm_pirte.lock().stats();
    assert_eq!(ecm_stats.installs, 1);
    assert_eq!(ecm_stats.plugin_faults, 0);
    assert!(
        ecm_stats.signals_out > 0,
        "COM fanned data out to the workers"
    );
    fleet.assert_healthy(1200);

    // --- Uninstall v1 ----------------------------------------------------
    fleet.uninstall(APP_V1);
    assert_eq!(fleet.ecm_pirte.lock().plugin_count(), 0);
    for (worker, _, pirte) in &fleet.workers {
        assert_eq!(
            pirte.lock().plugin_count(),
            0,
            "worker {worker} must be empty after uninstall"
        );
        assert_eq!(pirte.lock().stats().uninstalls, 1);
    }
    let installed = fleet
        .world
        .server
        .installed_apps(&VehicleId::new(FLEET_VIN));
    assert!(
        installed.is_empty(),
        "server records no installed apps: {installed:?}"
    );

    // --- Update: install v2 (gain 2) and verify the new behaviour --------
    fleet.deploy(APP_V2);
    for (worker, _, pirte) in &fleet.workers {
        let states = pirte.lock().plugin_states();
        assert_eq!(
            states,
            vec![(
                PluginId::new(format!("OP-v2-{worker}")),
                dynar::core::lifecycle::PluginState::Running
            )],
            "worker {worker} runs only the v2 plug-in"
        );
    }
    fleet.drive(900, "Boost", |_| 21);
    for (worker, swc, _) in fleet.workers.clone() {
        assert_eq!(
            fleet.actuator_value(worker, swc),
            Value::I64(42),
            "worker {worker}: v2 doubles the command"
        );
    }
    for (worker, _, pirte) in &fleet.workers {
        let stats = pirte.lock().stats();
        assert_eq!(stats.installs, 2, "worker {worker}: v1 + v2 installs");
        assert_eq!(stats.plugin_faults, 0);
    }
    fleet.assert_healthy(2100);

    // --- Final teardown: the fleet ends empty and healthy ----------------
    fleet.uninstall(APP_V2);
    for (_, _, pirte) in &fleet.workers {
        assert_eq!(pirte.lock().plugin_count(), 0);
    }
    assert_eq!(fleet.ecm_pirte.lock().plugin_count(), 0);
}
