//! Socket federation acceptance: the full install → update → reconcile
//! protocol over **real UDP loopback sockets**, with induced datagram loss
//! and reordering, driven by the actor runtime.
//!
//! This is the end of the transport story: the same `TrustedServer`, ECM
//! gateways and plug-in runtime that replay byte-identically over the
//! deterministic hub here cross an actual OS network path — length-prefixed
//! checksummed datagrams, kernel socket buffers, wall-clock retransmission
//! deadlines.  The seed is pinned so the backend's induced loss/reorder
//! rolls are a fixed sequence, but thread interleaving is real, so the
//! assertions are convergence-shaped:
//!
//! * v1 installs on every vehicle, then vehicle 0 updates to v2
//!   (uninstall + install) while the rest keep running;
//! * every worker PIRTE ends with **exactly one** plug-in and zero faults —
//!   retransmitted or reordered packages are applied once, never twice;
//! * the transport ledger stays conserved: sent = delivered + lost +
//!   dropped + in-flight, across real sockets.
//!
//! `#[ignore]`d out of tier-1 (binds loopback sockets, takes wall-clock
//! seconds); the dedicated socket CI step runs it single-threaded.

use std::time::{Duration, Instant};

use dynar::bus::network::BusConfig;
use dynar::fes::{shared_transport, UdpConfig, UdpTransport};
use dynar::foundation::ids::{AppId, UserId, VehicleId};
use dynar::server::{DeploymentStatus, TrustedServer};
use dynar::sim::actors::ActorFederation;
use dynar::sim::scenario::fleet::{
    build_vehicle, fleet_hw, fleet_system, telemetry_app, APP_TELEMETRY, APP_TELEMETRY_V2, GAIN_V1,
    GAIN_V2,
};

const VEHICLES: usize = 3;
const WORKERS: u16 = 2;
const QUANTUM: Duration = Duration::from_millis(1);
const TIMEOUT: Duration = Duration::from_secs(120);

/// Polls the live server until every listed vehicle reports `expected` for
/// `app`, or the deadline passes.
fn await_status(
    federation: &ActorFederation,
    vehicles: &[VehicleId],
    app: &AppId,
    expected: fn(&DeploymentStatus) -> bool,
    what: &str,
) {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let statuses: Vec<DeploymentStatus> = {
            let (vehicles, app) = (vehicles.to_vec(), app.clone());
            federation.with_server(move |server| {
                vehicles
                    .iter()
                    .map(|vehicle| server.deployment_status(vehicle, &app))
                    .collect()
            })
        };
        if statuses.iter().all(expected) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what} did not converge within {TIMEOUT:?}: {statuses:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
#[ignore = "binds loopback sockets and runs wall-clock seconds; socket CI step"]
fn udp_federation_installs_and_updates_under_reordering() {
    // Pinned seed: the induced-fault rolls are a fixed sequence per run.
    let transport = shared_transport(UdpTransport::new(UdpConfig {
        seed: 0xDAC_2014,
        loss_probability: 0.10,
        reorder_probability: 0.30,
    }));

    let mut server = TrustedServer::new();
    let user = UserId::new("fleet-ops");
    server.create_user(user.clone()).unwrap();
    server
        .upload_app(telemetry_app(APP_TELEMETRY, "", GAIN_V1, WORKERS).unwrap())
        .unwrap();
    server
        .upload_app(telemetry_app(APP_TELEMETRY_V2, "2", GAIN_V2, WORKERS).unwrap())
        .unwrap();

    let mut vehicle_ids = Vec::new();
    for index in 0..VEHICLES {
        let vehicle_id = VehicleId::new(format!("VIN-UDP-{index:02}"));
        server
            .register_vehicle(vehicle_id.clone(), fleet_hw(WORKERS), fleet_system(WORKERS))
            .unwrap();
        server.bind_vehicle(&user, &vehicle_id).unwrap();
        vehicle_ids.push(vehicle_id);
    }

    let mut federation = ActorFederation::launch(server, "server", transport, QUANTUM);
    let mut handles = Vec::new();
    for (index, vehicle_id) in vehicle_ids.iter().enumerate() {
        let endpoint = format!("vehicle-{index}");
        let (vehicle, workers) = build_vehicle(
            &endpoint,
            WORKERS,
            BusConfig::default(),
            &federation.transport(),
            0,
        )
        .unwrap();
        federation.spawn_vehicle(vehicle_id.clone(), endpoint, vehicle);
        handles.push(workers);
    }

    // --- Phase 1: install v1 everywhere over the wire.
    let v1 = AppId::new(APP_TELEMETRY);
    for vehicle_id in &vehicle_ids {
        let (user, vehicle_id, v1) = (user.clone(), vehicle_id.clone(), v1.clone());
        federation
            .with_server(move |server| server.deploy(&user, &vehicle_id, &v1))
            .unwrap();
    }
    await_status(
        &federation,
        &vehicle_ids,
        &v1,
        |s| matches!(s, DeploymentStatus::Installed),
        "v1 install",
    );

    // --- Phase 2: update vehicle 0 to v2 (uninstall, then install).
    let v2 = AppId::new(APP_TELEMETRY_V2);
    let target = vehicle_ids[0].clone();
    {
        let (user, target, v1) = (user.clone(), target.clone(), v1.clone());
        federation
            .with_server(move |server| server.uninstall(&user, &target, &v1))
            .unwrap();
    }
    await_status(
        &federation,
        std::slice::from_ref(&target),
        &v1,
        |s| matches!(s, DeploymentStatus::NotInstalled),
        "v1 uninstall",
    );
    {
        let (user, target, v2) = (user.clone(), target.clone(), v2.clone());
        federation
            .with_server(move |server| server.deploy(&user, &target, &v2))
            .unwrap();
    }
    await_status(
        &federation,
        std::slice::from_ref(&target),
        &v2,
        |s| matches!(s, DeploymentStatus::Installed),
        "v2 update",
    );

    // --- Tear down and audit.
    let transport = federation.transport();
    let outcome = federation.shutdown();
    for (vehicle_id, _, error) in &outcome.vehicles {
        assert!(
            error.is_none(),
            "{vehicle_id}: vehicle thread died: {error:?}"
        );
    }

    // Exactly-once semantics survived real loss and reordering: one plug-in
    // per worker (v2 on the updated vehicle, v1 elsewhere), zero faults.
    for (vehicle_id, workers) in vehicle_ids.iter().zip(&handles) {
        for (worker, _, pirte) in workers {
            let pirte = pirte.lock();
            assert_eq!(
                pirte.stats().plugin_faults,
                0,
                "{vehicle_id}/{worker}: no plug-in faults"
            );
            assert_eq!(
                pirte.plugin_count(),
                1,
                "{vehicle_id}/{worker}: exactly one plug-in after install/update"
            );
        }
    }

    let stats = transport.lock().stats();
    assert!(stats.is_conserved(), "socket ledger conserved: {stats:?}");
    assert!(
        stats.lost > 0,
        "the induced loss model actually dropped datagrams: {stats:?}"
    );
}
