//! Actor-runtime acceptance: the full install protocol converges when the
//! server and every vehicle run as *real threads* over the shared transport,
//! with lossy links forcing the retransmission plane to do real work.
//!
//! This is the concurrency half of the transport story.  The deterministic
//! half — byte-identical replay, shard equivalence — lives in
//! `tests/shard_equivalence.rs` and the journal tests and keeps running over
//! `Fleet`'s lockstep loop.  Here nothing is reproducible (thread
//! interleaving and wall-clock pacing are real), so the assertions are about
//! *convergence*:
//!
//! * every vehicle reaches `DeploymentStatus::Installed` within the timeout,
//! * every worker PIRTE holds the plug-in **exactly once** with zero faults
//!   (a duplicate apply of a retransmitted package would show up here),
//! * the transport ledger stays conserved — retries may lose messages, but
//!   none may vanish unaccounted,
//! * every vehicle thread exits cleanly.
//!
//! The hub backend keeps this in tier-1 (no sockets); the same protocol over
//! real UDP is `tests/udp_federation.rs`.

use std::time::{Duration, Instant};

use dynar::bus::network::BusConfig;
use dynar::fes::{shared_transport, LinkFault, TransportConfig, TransportHub};
use dynar::foundation::ids::{AppId, UserId, VehicleId};
use dynar::foundation::time::Tick;
use dynar::server::campaign::{
    CampaignId, CampaignSpec, CampaignStatus, HealthGate, VehicleSelector, WavePlan,
};
use dynar::server::{DeploymentStatus, TrustedServer};
use dynar::sim::actors::ActorFederation;
use dynar::sim::scenario::fleet::{
    build_vehicle, fleet_hw, fleet_system, telemetry_app, APP_TELEMETRY, GAIN_V1,
};

const VEHICLES: usize = 3;
const WORKERS: u16 = 2;
const QUANTUM: Duration = Duration::from_millis(1);
const TIMEOUT: Duration = Duration::from_secs(60);

#[test]
fn threaded_federation_converges_under_loss() {
    let transport = shared_transport(TransportHub::new(TransportConfig::default()));

    // --- Trusted server: catalogue + registrations, before any thread runs.
    let mut server = TrustedServer::new();
    let user = UserId::new("fleet-ops");
    server.create_user(user.clone()).unwrap();
    server
        .upload_app(telemetry_app(APP_TELEMETRY, "", GAIN_V1, WORKERS).unwrap())
        .unwrap();

    let mut vehicle_ids = Vec::new();
    for index in 0..VEHICLES {
        let vehicle_id = VehicleId::new(format!("VIN-ACTOR-{index:02}"));
        server
            .register_vehicle(vehicle_id.clone(), fleet_hw(WORKERS), fleet_system(WORKERS))
            .unwrap();
        server.bind_vehicle(&user, &vehicle_id).unwrap();
        vehicle_ids.push(vehicle_id);
    }

    // Chaos: vehicle 0 starts partitioned from the server until tick 100
    // (~100ms of wall time), guaranteeing the first package pushes are lost
    // and the deadline timer must retransmit after the heal; the budget
    // (25 ticks × 8 attempts) comfortably outlasts the partition.  A mild
    // loss model rides on top of vehicle 1's links.
    {
        let mut hub = transport.lock();
        let faults = hub
            .fault_injection()
            .expect("the hub backend supports fault injection");
        faults.partition("server", "vehicle-0", Tick::new(100));
        faults.set_link_fault("server", "vehicle-1", LinkFault::lossy(0.2));
        faults.set_link_fault("vehicle-1", "server", LinkFault::lossy(0.2));
    }

    // --- Launch: one server actor, one actor per vehicle.
    let mut federation = ActorFederation::launch(server, "server", transport, QUANTUM);
    let mut handles = Vec::new();
    for (index, vehicle_id) in vehicle_ids.iter().enumerate() {
        let endpoint = format!("vehicle-{index}");
        let (vehicle, workers) = build_vehicle(
            &endpoint,
            WORKERS,
            BusConfig::default(),
            &federation.transport(),
            0,
        )
        .unwrap();
        federation.spawn_vehicle(vehicle_id.clone(), endpoint, vehicle);
        handles.push(workers);
    }

    // --- Deploy through the ask pattern and poll for convergence.
    let app = AppId::new(APP_TELEMETRY);
    for vehicle_id in &vehicle_ids {
        let (user, vehicle_id, app) = (user.clone(), vehicle_id.clone(), app.clone());
        federation
            .with_server(move |server| server.deploy(&user, &vehicle_id, &app))
            .unwrap();
    }

    let deadline = Instant::now() + TIMEOUT;
    loop {
        let statuses: Vec<DeploymentStatus> = {
            let (vehicle_ids, app) = (vehicle_ids.clone(), app.clone());
            federation.with_server(move |server| {
                vehicle_ids
                    .iter()
                    .map(|vehicle| server.deployment_status(vehicle, &app))
                    .collect()
            })
        };
        if statuses
            .iter()
            .all(|status| matches!(status, DeploymentStatus::Installed))
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "install did not converge within {TIMEOUT:?}: {statuses:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // --- Tear down and audit.
    let transport = federation.transport();
    let outcome = federation.shutdown();
    for (vehicle_id, _, error) in &outcome.vehicles {
        assert!(
            error.is_none(),
            "{vehicle_id}: vehicle thread died: {error:?}"
        );
    }
    assert_eq!(outcome.vehicles.len(), VEHICLES);

    // Exactly-once install on every worker, despite retransmissions.
    for (vehicle_id, workers) in vehicle_ids.iter().zip(&handles) {
        for (worker, _, pirte) in workers {
            let pirte = pirte.lock();
            assert_eq!(
                pirte.stats().plugin_faults,
                0,
                "{vehicle_id}/{worker}: no plug-in faults"
            );
            assert_eq!(
                pirte.plugin_count(),
                1,
                "{vehicle_id}/{worker}: the OP plug-in installed exactly once"
            );
        }
    }

    // The transport ledger must balance even though links were lossy.
    let stats = transport.lock().stats();
    assert!(
        stats.is_conserved(),
        "transport ledger conserved: {stats:?}"
    );
    assert!(
        stats.lost > 0,
        "the partition actually lost traffic: {stats:?}"
    );
}

/// The campaign plane drives waves from the *wall-clock* runtime too: the
/// server thread ticks on its own whenever a campaign is active (no message
/// needs to arrive), so health gates soak and advance in real time.  A
/// 1-canary / 100 %-ramp v1→v2 campaign must run to `Complete` with every
/// vehicle holding exactly the v2 plug-in — the same staged semantics the
/// deterministic `tests/campaign.rs` pins over `Fleet`'s lockstep loop.
#[test]
fn threaded_federation_completes_a_staged_campaign() {
    use dynar::sim::scenario::fleet::{APP_TELEMETRY_V2, GAIN_V2};

    let transport = shared_transport(TransportHub::new(TransportConfig::default()));

    let mut server = TrustedServer::new();
    let user = UserId::new("fleet-ops");
    server.create_user(user.clone()).unwrap();
    server
        .upload_app(telemetry_app(APP_TELEMETRY, "", GAIN_V1, WORKERS).unwrap())
        .unwrap();
    server
        .upload_app(telemetry_app(APP_TELEMETRY_V2, "2", GAIN_V2, WORKERS).unwrap())
        .unwrap();

    let mut vehicle_ids = Vec::new();
    for index in 0..VEHICLES {
        let vehicle_id = VehicleId::new(format!("VIN-CAMPAIGN-{index:02}"));
        server
            .register_vehicle(vehicle_id.clone(), fleet_hw(WORKERS), fleet_system(WORKERS))
            .unwrap();
        server.bind_vehicle(&user, &vehicle_id).unwrap();
        vehicle_ids.push(vehicle_id);
    }

    let mut federation = ActorFederation::launch(server, "server", transport, QUANTUM);
    let mut handles = Vec::new();
    for (index, vehicle_id) in vehicle_ids.iter().enumerate() {
        let endpoint = format!("campaign-vehicle-{index}");
        let (vehicle, workers) = build_vehicle(
            &endpoint,
            WORKERS,
            BusConfig::default(),
            &federation.transport(),
            0,
        )
        .unwrap();
        federation.spawn_vehicle(vehicle_id.clone(), endpoint, vehicle);
        handles.push(workers);
    }

    // Baseline: every vehicle on v1 before the campaign starts.
    let v1 = AppId::new(APP_TELEMETRY);
    for vehicle_id in &vehicle_ids {
        let (user, vehicle_id, app) = (user.clone(), vehicle_id.clone(), v1.clone());
        federation
            .with_server(move |server| server.deploy(&user, &vehicle_id, &app))
            .unwrap();
    }
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let installed = {
            let (vehicle_ids, app) = (vehicle_ids.clone(), v1.clone());
            federation.with_server(move |server| {
                vehicle_ids.iter().all(|vehicle| {
                    matches!(
                        server.deployment_status(vehicle, &app),
                        DeploymentStatus::Installed
                    )
                })
            })
        };
        if installed {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "v1 baseline did not converge within {TIMEOUT:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // One canary, then the full ramp; a short soak keeps wall time low.
    let spec = CampaignSpec {
        id: CampaignId::new("actor-rollout-v2"),
        app: AppId::new(APP_TELEMETRY_V2),
        replaces: Some(v1.clone()),
        selector: VehicleSelector::All,
        plan: WavePlan {
            canary: 1,
            ramp_percent: vec![100],
        },
        gate: HealthGate {
            min_soak_ticks: 10,
            pause_failed: 0,
            abort_failed: 1,
        },
    };
    let exposed = {
        let (user, spec) = (user.clone(), spec.clone());
        federation
            .with_server(move |server| server.create_campaign(&user, spec))
            .unwrap()
    };
    assert_eq!(exposed, 1, "the canary wave exposes exactly one vehicle");

    // The server thread must tick itself through the waves: no deploy call,
    // no inbound message — just wall-clock quanta and the health gate.
    let id = CampaignId::new("actor-rollout-v2");
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let status = {
            let id = id.clone();
            federation
                .with_server(move |server| server.campaign(&id).map(|campaign| campaign.status))
        };
        match status {
            Some(CampaignStatus::Complete) => break,
            Some(CampaignStatus::Aborted) => panic!("healthy campaign aborted"),
            _ => {}
        }
        assert!(
            Instant::now() < deadline,
            "campaign did not complete within {TIMEOUT:?}: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let outcome = federation.shutdown();
    for (vehicle_id, _, error) in &outcome.vehicles {
        assert!(
            error.is_none(),
            "{vehicle_id}: vehicle thread died: {error:?}"
        );
    }

    // Every worker ended on exactly the v2 plug-in, installed exactly once.
    for (vehicle_id, workers) in vehicle_ids.iter().zip(&handles) {
        for (worker, _, pirte) in workers {
            let pirte = pirte.lock();
            assert_eq!(
                pirte.stats().plugin_faults,
                0,
                "{vehicle_id}/{worker}: no plug-in faults"
            );
            assert_eq!(
                pirte.plugin_count(),
                1,
                "{vehicle_id}/{worker}: v2 replaced v1 exactly once"
            );
        }
    }
}
