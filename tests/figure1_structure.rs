//! Figure 1 — the dynamic component structure: plug-in SW-Cs with embedded
//! VM + PIRTE, the ECM SW-C, and the three special-purpose port types, all
//! sitting on an unchanged RTE.

use dynar::core::swc::{PluginSwc, PluginSwcConfig};
use dynar::core::virtual_port::{PortDataDirection, PortKind, VirtualPortSpec};
use dynar::foundation::ids::{EcuId, VirtualPortId};
use dynar::rte::ecu::Ecu;
use dynar::rte::port::PortDirection;
use dynar::sim::scenario::remote_car::RemoteCarScenario;

fn swc2_config() -> PluginSwcConfig {
    PluginSwcConfig::new("plugin-swc-2")
        .with_type_i_ports("mgmt_in", "mgmt_out")
        .with_virtual_port(VirtualPortSpec::new(
            VirtualPortId::new(3),
            "PluginDataIn",
            PortKind::TypeII,
            PortDataDirection::ToPlugins,
            "s3_in",
        ))
        .with_virtual_port(VirtualPortSpec::new(
            VirtualPortId::new(4),
            "WheelsReq",
            PortKind::TypeIII,
            PortDataDirection::ToSystem,
            "wheels_req",
        ))
}

#[test]
fn plugin_swc_exposes_only_ordinary_swc_ports_to_the_rte() {
    // The RTE sees a plug-in SW-C as a normal component: its descriptor only
    // contains standard provided/required ports, no plug-in concepts.
    let descriptor = swc2_config().descriptor().unwrap();
    assert_eq!(descriptor.ports().len(), 4);
    assert_eq!(
        descriptor.port("mgmt_in").unwrap().direction(),
        PortDirection::Required
    );
    assert_eq!(
        descriptor.port("mgmt_out").unwrap().direction(),
        PortDirection::Provided
    );
    assert_eq!(
        descriptor.port("s3_in").unwrap().direction(),
        PortDirection::Required
    );
    assert_eq!(
        descriptor.port("wheels_req").unwrap().direction(),
        PortDirection::Provided
    );
}

#[test]
fn plugin_swc_registers_like_any_component() {
    let mut ecu = Ecu::new(EcuId::new(2));
    let config = swc2_config();
    let descriptor = config.descriptor().unwrap();
    let (behavior, pirte) = PluginSwc::create(EcuId::new(2), config);
    let swc = ecu.add_component(descriptor, Box::new(behavior)).unwrap();
    assert_eq!(ecu.component_by_name("plugin-swc-2"), Some(swc));
    assert_eq!(
        pirte.lock().plugin_count(),
        0,
        "no plug-ins before installation"
    );
}

#[test]
fn static_api_distinguishes_the_three_port_types() {
    let config = swc2_config();
    let kinds: Vec<PortKind> = config.virtual_ports().iter().map(|v| v.kind()).collect();
    assert!(kinds.contains(&PortKind::TypeII));
    assert!(kinds.contains(&PortKind::TypeIII));
    assert!(config.type_i_in().is_some() && config.type_i_out().is_some());
}

#[test]
fn figure1_topology_is_reproduced_by_the_scenario() {
    let scenario = RemoteCarScenario::build().unwrap();
    // ECU1's PIRTE (inside the ECM SW-C) exposes the type II virtual port V0;
    // ECU2's PIRTE exposes V3-V6 exactly as drawn in Figure 3 / Figure 1.
    let ecm = scenario.ecm_pirte();
    let ecm = ecm.lock();
    assert!(ecm.virtual_port(VirtualPortId::new(0)).is_some());
    assert_eq!(ecm.ecu(), EcuId::new(1));

    let pirte2 = scenario.pirte2();
    let pirte2 = pirte2.lock();
    for id in [3, 4, 5, 6] {
        assert!(
            pirte2.virtual_port(VirtualPortId::new(id)).is_some(),
            "V{id} missing"
        );
    }
    assert_eq!(
        pirte2.virtual_port(VirtualPortId::new(4)).unwrap().name(),
        "WheelsReq"
    );
    assert_eq!(pirte2.ecu(), EcuId::new(2));
}
