//! Equivalence suite for the compiled routing plane.
//!
//! The dense, interned route tables introduced across RTE / bus / PIRTE must
//! be *behaviour-identical* to the seed `HashMap` implementation.  Three
//! angles pin that down:
//!
//! 1. **Shadow router** — a straight reimplementation of the seed `HashMap`
//!    routing semantics is driven with the same fixed-seed random operation
//!    sequence as the real [`Rte`]; every consumed value, outbound frame and
//!    data-received notification must match byte for byte (via the value
//!    codec).
//! 2. **Golden scenarios** — the quickstart and remote-car scenarios (fixed
//!    seeds) must reproduce the exact observables recorded from the seed
//!    implementation at commit `f94aa31`: FNV-1a digests of the signal
//!    sequences, drive reports, bus and PIRTE statistics.
//! 3. **Reconfiguration properties** — random install → uninstall →
//!    reinstall churn must leave the compiled tables exactly equal to a fresh
//!    compile, with no stale slots and slot-table widths bounded by the
//!    high-water mark.

use std::collections::{HashMap, VecDeque};

use dynar::bus::frame::{CanId, Frame};
use dynar::bus::network::{Bus, BusConfig, BusStats};
use dynar::core::context::{InstallationContext, LinkTarget, PortInitContext, PortLinkContext};
use dynar::core::message::InstallationPackage;
use dynar::core::pirte::Pirte;
use dynar::core::plugin::PluginPortDirection;
use dynar::core::swc::PluginSwcConfig;
use dynar::core::virtual_port::{PortDataDirection, PortKind, VirtualPortSpec};
use dynar::foundation::codec::encode_value;
use dynar::foundation::ids::{AppId, EcuId, PluginId, PluginPortId, PortId, SwcId, VirtualPortId};
use dynar::foundation::time::Tick;
use dynar::foundation::value::Value;
use dynar::rte::component::SwcDescriptor;
use dynar::rte::port::{PortDirection, PortSpec};
use dynar::rte::rte::Rte;
use dynar::sim::scenario::quickstart::Quickstart;
use dynar::sim::scenario::remote_car::RemoteCarScenario;
use dynar::vm::assembler::assemble;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

// ---------------------------------------------------------------------------
// FNV-1a folding, shared by the digest checks.
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fold(hash: &mut u64, bytes: &[u8]) {
    for byte in bytes {
        *hash ^= u64::from(*byte);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

// ---------------------------------------------------------------------------
// 1. Shadow router: the seed HashMap semantics, reimplemented verbatim.
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum ShadowBuffer {
    LastIsBest {
        value: Value,
        updated: bool,
    },
    Queued {
        queue: VecDeque<Value>,
        capacity: usize,
    },
}

impl ShadowBuffer {
    fn push(&mut self, value: Value) {
        match self {
            ShadowBuffer::LastIsBest {
                value: slot,
                updated,
            } => {
                *slot = value;
                *updated = true;
            }
            ShadowBuffer::Queued { queue, capacity } => {
                if queue.len() == *capacity {
                    queue.pop_front();
                }
                queue.push_back(value);
            }
        }
    }

    fn take(&mut self) -> Option<Value> {
        match self {
            ShadowBuffer::LastIsBest { value, updated } => {
                if *updated {
                    *updated = false;
                    Some(value.clone())
                } else {
                    None
                }
            }
            ShadowBuffer::Queued { queue, .. } => queue.pop_front(),
        }
    }
}

/// The seed implementation's routing core: `HashMap` lookups everywhere,
/// values cloned per receiver — byte-identical observables are the contract.
#[derive(Default)]
struct ShadowRte {
    buffers: HashMap<PortId, ShadowBuffer>,
    connections: HashMap<PortId, Vec<PortId>>,
    tx_mapping: HashMap<PortId, CanId>,
    rx_mapping: HashMap<CanId, Vec<PortId>>,
    outbound: Vec<(CanId, Value)>,
    data_received: Vec<PortId>,
}

impl ShadowRte {
    fn add_port(&mut self, port: PortId, queued: Option<usize>) {
        let buffer = match queued {
            Some(capacity) => ShadowBuffer::Queued {
                queue: VecDeque::new(),
                capacity,
            },
            None => ShadowBuffer::LastIsBest {
                value: Value::Void,
                updated: false,
            },
        };
        self.buffers.insert(port, buffer);
    }

    fn write_port(&mut self, provider: PortId, value: Value) {
        self.buffers
            .get_mut(&provider)
            .expect("provider registered")
            .push(value.clone());
        let receivers = self.connections.get(&provider).cloned().unwrap_or_default();
        for requirer in receivers {
            self.deliver_local(requirer, value.clone());
        }
        if let Some(frame) = self.tx_mapping.get(&provider) {
            self.outbound.push((*frame, value));
        }
    }

    fn deliver_inbound(&mut self, frame: CanId, value: Value) {
        let receivers = self.rx_mapping.get(&frame).cloned().unwrap_or_default();
        for requirer in receivers {
            self.deliver_local(requirer, value.clone());
        }
    }

    fn deliver_local(&mut self, requirer: PortId, value: Value) {
        if let Some(buffer) = self.buffers.get_mut(&requirer) {
            buffer.push(value);
            self.data_received.push(requirer);
        }
    }

    fn take_port(&mut self, port: PortId) -> Option<Value> {
        self.buffers.get_mut(&port).and_then(ShadowBuffer::take)
    }
}

/// Drives the real RTE and the shadow through the same fixed-seed operation
/// sequence — including mid-run reconfiguration — comparing every observable.
#[test]
fn compiled_rte_matches_the_seed_hashmap_router_on_random_programs() {
    let mut rte = Rte::new();
    let mut shadow = ShadowRte::default();

    let swc = |local| SwcId::new(EcuId::new(0), local);

    // Three providers on SWC0.
    let producer = SwcDescriptor::new("producer")
        .with_port(PortSpec::sender_receiver("p0", PortDirection::Provided))
        .with_port(PortSpec::sender_receiver("p1", PortDirection::Provided))
        .with_port(PortSpec::sender_receiver("p2", PortDirection::Provided));
    rte.register_component(swc(0), &producer).unwrap();
    let providers: Vec<PortId> = (0..3)
        .map(|i| rte.port_id(swc(0), &format!("p{i}")).unwrap())
        .collect();
    for provider in &providers {
        shadow.add_port(*provider, None);
    }

    // Six consumers: alternating last-is-best and small queued ports.
    let mut requirers = Vec::new();
    for i in 1..=6u16 {
        let queued = i % 2 == 0;
        let spec = if queued {
            PortSpec::queued("in", PortDirection::Required, 2)
        } else {
            PortSpec::sender_receiver("in", PortDirection::Required)
        };
        let descriptor = SwcDescriptor::new(format!("consumer{i}")).with_port(spec);
        rte.register_component(swc(i), &descriptor).unwrap();
        let port = rte.port_id(swc(i), "in").unwrap();
        shadow.add_port(port, queued.then_some(2));
        requirers.push(port);
    }

    let frames: Vec<CanId> = (0..3u32).map(|i| CanId::new(0x200 + i).unwrap()).collect();

    let mut rng = StdRng::seed_from_u64(0xD1CE);
    let mut connected: Vec<(PortId, PortId)> = Vec::new();
    for op in 0..4000u64 {
        match rng.gen_range_u64(0, 10) {
            // Mid-run reconfiguration: connect a random provider/requirer pair.
            0 => {
                let provider = providers[rng.gen_range_u64(0, 3) as usize];
                let requirer = requirers[rng.gen_range_u64(0, 6) as usize];
                rte.connect(provider, requirer).unwrap();
                shadow
                    .connections
                    .entry(provider)
                    .or_default()
                    .push(requirer);
                connected.push((provider, requirer));
                assert!(rte.verify_compiled_routes(), "op {op}: routes consistent");
            }
            // Mid-run reconfiguration: disconnect a previously added pair.
            1 if !connected.is_empty() => {
                let index = rng.gen_range_u64(0, connected.len() as u64) as usize;
                let (provider, requirer) = connected.swap_remove(index);
                rte.disconnect(provider, requirer).unwrap();
                let list = shadow.connections.get_mut(&provider).unwrap();
                let position = list.iter().position(|r| *r == requirer).unwrap();
                list.remove(position);
                assert!(rte.verify_compiled_routes(), "op {op}: routes consistent");
            }
            // Mid-run reconfiguration: map a frame onto a random requirer.
            2 => {
                let frame = frames[rng.gen_range_u64(0, 3) as usize];
                let requirer = requirers[rng.gen_range_u64(0, 6) as usize];
                rte.map_signal_in(frame, requirer).unwrap();
                shadow.rx_mapping.entry(frame).or_default().push(requirer);
            }
            // Mid-run reconfiguration: (re)map a provider onto a frame.
            3 => {
                let provider = providers[rng.gen_range_u64(0, 3) as usize];
                let frame = frames[rng.gen_range_u64(0, 3) as usize];
                rte.map_signal_out(provider, frame).unwrap();
                shadow.tx_mapping.insert(provider, frame);
            }
            // Signal plane: a component writes.
            4..=6 => {
                let provider = providers[rng.gen_range_u64(0, 3) as usize];
                let value = random_value(&mut rng, op);
                rte.write_port(provider, value.clone()).unwrap();
                shadow.write_port(provider, value);
            }
            // Signal plane: a frame arrives from the network.
            7..=8 => {
                let frame = frames[rng.gen_range_u64(0, 3) as usize];
                let value = random_value(&mut rng, op);
                rte.deliver_inbound(frame, value.clone());
                shadow.deliver_inbound(frame, value);
            }
            // Signal plane: a consumer takes.
            _ => {
                let port = requirers[rng.gen_range_u64(0, 6) as usize];
                let real = rte.take_port(port).unwrap();
                let expected = shadow.take_port(port);
                assert_eq!(
                    real.as_ref().map(encode_value),
                    expected.as_ref().map(encode_value),
                    "op {op}: byte-identical consumed value on {port}"
                );
            }
        }

        // Notification order and outbound traffic stay byte-identical.
        assert_eq!(
            rte.drain_data_received(),
            std::mem::take(&mut shadow.data_received),
            "op {op}: data-received order"
        );
        let real_outbound: Vec<(u32, Vec<u8>)> = rte
            .drain_outbound()
            .iter()
            .map(|(id, v)| (id.raw(), encode_value(v)))
            .collect();
        let shadow_outbound: Vec<(u32, Vec<u8>)> = std::mem::take(&mut shadow.outbound)
            .iter()
            .map(|(id, v)| (id.raw(), encode_value(v)))
            .collect();
        assert_eq!(real_outbound, shadow_outbound, "op {op}: outbound frames");
    }
    assert!(rte.verify_compiled_routes());
}

fn random_value(rng: &mut StdRng, op: u64) -> Value {
    match rng.gen_range_u64(0, 4) {
        0 => Value::I64(rng.next_u64() as i64),
        1 => Value::F64(op as f64 * 0.5),
        2 => Value::Text(format!("op-{op}")),
        _ => Value::List(vec![
            Value::I64(op as i64),
            Value::Bool(op.is_multiple_of(2)),
        ]),
    }
}

// ---------------------------------------------------------------------------
// 2. Golden scenarios: observables recorded from the seed implementation.
// ---------------------------------------------------------------------------

/// Seed observables captured at commit `f94aa31` (the pre-refactor HashMap
/// implementation) by running exactly these workloads.
mod golden {
    pub const QUICKSTART_FNV: u64 = 0xb66711b3b2dfb17b;
    pub const BUS_FNV: u64 = 0x088683c08bef62e5;
}

#[test]
fn quickstart_signal_sequence_is_byte_identical_to_the_seed() {
    let mut system = Quickstart::build().unwrap();
    let mut hash = FNV_OFFSET;
    for round in 1..=50i64 {
        system.feed_sensor(round).unwrap();
        let output = system.actuator_output().unwrap();
        assert_eq!(output, Value::I64(round * 2));
        fold(&mut hash, &encode_value(&output));
    }
    assert_eq!(
        hash,
        golden::QUICKSTART_FNV,
        "quickstart actuator sequence diverged from the seed implementation"
    );
}

#[test]
fn remote_car_drive_matches_the_seed_observables() {
    let mut scenario = RemoteCarScenario::build().unwrap();
    scenario.install_app().unwrap();
    let report = scenario.drive(300).unwrap();

    // DriveReport recorded from the seed implementation.
    assert_eq!(report.commands_sent, 60);
    assert_eq!(report.commands_delivered, 60);
    assert_eq!(report.final_speed, 14.0);
    assert_eq!(report.final_wheel_angle, -1.0);
    assert_eq!(report.odometer, 5.699999999999999);

    // Bus statistics recorded from the seed implementation.
    let bus = scenario.world_mut().vehicle.bus().stats();
    assert_eq!(
        bus,
        BusStats {
            sent: 68,
            delivered: 68,
            dropped: 0,
            unrouted: 0,
            worst_latency: 1,
            payload_bytes: 2191,
        }
    );

    // PIRTE signal counters recorded from the seed implementation.
    let ecm = scenario.ecm_pirte().lock().stats();
    assert_eq!(
        (
            ecm.signals_in,
            ecm.signals_out,
            ecm.slots_granted,
            ecm.instructions_executed
        ),
        (60, 60, 306, 3179),
        "ECM PIRTE counters diverged: {ecm:?}"
    );
    let swc2 = scenario.pirte2().lock().stats();
    assert_eq!(
        (
            swc2.signals_in,
            swc2.signals_out,
            swc2.slots_granted,
            swc2.instructions_executed
        ),
        (60, 60, 304, 3159),
        "SWC2 PIRTE counters diverged: {swc2:?}"
    );
    assert!(scenario.ecm_pirte().lock().verify_compiled_routes());
    assert!(scenario.pirte2().lock().verify_compiled_routes());
}

#[test]
fn lossy_bus_delivery_sequence_is_byte_identical_to_the_seed() {
    let mut bus = Bus::new(BusConfig {
        frames_per_tick: 4,
        latency_ticks: 2,
        drop_probability: 0.3,
        seed: 42,
    });
    let a = EcuId::new(1);
    let b = EcuId::new(2);
    let c = EcuId::new(3);
    bus.attach(a);
    bus.attach(b);
    bus.attach(c);
    bus.subscribe(b, CanId::new(0x10).unwrap());
    bus.subscribe(b, CanId::new(0x11).unwrap());
    bus.subscribe(c, CanId::new(0x11).unwrap());
    bus.subscribe(c, CanId::new(0x12).unwrap());

    let mut hash = FNV_OFFSET;
    for tick in 0..200u64 {
        let now = Tick::new(tick);
        let id = 0x10 + (tick % 3) as u32;
        bus.send(
            a,
            Frame::new(CanId::new(id).unwrap(), vec![tick as u8, 1]).unwrap(),
            now,
        )
        .unwrap();
        if tick % 2 == 0 {
            bus.send(
                b,
                Frame::new(CanId::new(0x12).unwrap(), vec![tick as u8, 2]).unwrap(),
                now,
            )
            .unwrap();
        }
        bus.step(now);
        for (tag, ecu) in [(1u8, a), (2, b), (3, c)] {
            for frame in bus.receive(ecu) {
                fold(&mut hash, &[tag]);
                fold(&mut hash, &frame.id().raw().to_le_bytes());
                fold(&mut hash, frame.payload());
            }
        }
    }
    assert_eq!(
        hash,
        golden::BUS_FNV,
        "lossy bus delivery sequence diverged from the seed implementation"
    );
    assert_eq!(
        bus.stats(),
        BusStats {
            sent: 300,
            delivered: 257,
            dropped: 85,
            unrouted: 0,
            worst_latency: 2,
            payload_bytes: 600,
        }
    );
}

// ---------------------------------------------------------------------------
// 3. Reconfiguration properties: no stale slots after churn.
// ---------------------------------------------------------------------------

fn churn_pirte() -> Pirte {
    let config = PluginSwcConfig::new("churn-swc")
        .with_virtual_port(VirtualPortSpec::new(
            VirtualPortId::new(0),
            "In",
            PortKind::TypeIII,
            PortDataDirection::ToPlugins,
            "swc_in",
        ))
        .with_virtual_port(VirtualPortSpec::new(
            VirtualPortId::new(1),
            "Out",
            PortKind::TypeIII,
            PortDataDirection::ToSystem,
            "swc_out",
        ));
    Pirte::new(EcuId::new(1), config)
}

fn churn_package(name: &str, base_port: u32, ports: u32) -> InstallationPackage {
    let binary = assemble(name, "yield\nhalt").unwrap().to_bytes();
    let mut pic = PortInitContext::new();
    let mut plc = PortLinkContext::new();
    for offset in 0..ports {
        let id = PluginPortId::new(base_port + offset);
        let provided = offset % 2 == 1;
        let direction = if provided {
            PluginPortDirection::Provided
        } else {
            PluginPortDirection::Required
        };
        pic = pic.with_port(format!("p{offset}"), id, direction);
        let link = if provided {
            LinkTarget::VirtualPort(VirtualPortId::new(1))
        } else if offset % 3 == 0 {
            LinkTarget::VirtualPort(VirtualPortId::new(0))
        } else {
            LinkTarget::Direct
        };
        plc = plc.with_link(id, link);
    }
    InstallationPackage::new(
        PluginId::new(name),
        AppId::new("churn"),
        binary,
        InstallationContext::new(pic, plc),
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// install → uninstall → reinstall churn leaves the compiled route
    /// tables with no stale slots: every table entry matches a fresh compile
    /// and the dense slot width is bounded by the port high-water mark.
    #[test]
    fn pirte_reinstall_churn_leaves_no_stale_slots(
        ops in proptest::collection::vec((0u8..2, 0u8..4, 1u32..5), 1..40),
    ) {
        let mut pirte = churn_pirte();
        let mut installed: HashMap<u8, u32> = HashMap::new();
        let mut high_water = 0u32;
        for (kind, plugin_index, ports) in ops {
            let name = format!("plugin-{plugin_index}");
            match kind {
                0 => {
                    // Install with a per-plugin disjoint port-id range.
                    if let std::collections::hash_map::Entry::Vacant(entry) =
                        installed.entry(plugin_index)
                    {
                        let base = u32::from(plugin_index) * 8;
                        pirte.install(churn_package(&name, base, ports)).unwrap();
                        entry.insert(ports);
                        let live: u32 = installed.values().sum();
                        high_water = high_water.max(live);
                    }
                }
                _ => {
                    if installed.remove(&plugin_index).is_some() {
                        pirte.uninstall(&PluginId::new(&name)).unwrap();
                    }
                }
            }
            prop_assert!(
                pirte.verify_compiled_routes(),
                "compiled tables diverged after churn"
            );
        }
        // Reinstall everything once more: freed slots must be reused.
        let names: Vec<u8> = installed.keys().copied().collect();
        for plugin_index in names {
            pirte.uninstall(&PluginId::new(format!("plugin-{plugin_index}"))).unwrap();
            prop_assert!(pirte.verify_compiled_routes());
        }
        for plugin_index in 0u8..4 {
            pirte
                .install(churn_package(&format!("plugin-{plugin_index}"), u32::from(plugin_index) * 8, 2))
                .unwrap();
            prop_assert!(pirte.verify_compiled_routes());
        }
        for plugin_index in 0u8..4 {
            pirte.uninstall(&PluginId::new(format!("plugin-{plugin_index}"))).unwrap();
        }
        prop_assert!(pirte.verify_compiled_routes());
        prop_assert_eq!(pirte.plugin_count(), 0);
        let width_bound = u64::from(high_water.max(8)) as usize;
        prop_assert!(
            pirte.plugin_port_slot_capacity() <= width_bound,
            "slot table width {} exceeds high-water bound {}",
            pirte.plugin_port_slot_capacity(),
            width_bound
        );
    }

    /// Random (dis)connect and (un)map churn keeps the RTE's compiled plane
    /// equal to a fresh compile of the declarative wiring.
    #[test]
    fn rte_reconnection_churn_keeps_tables_consistent(
        ops in proptest::collection::vec((0u8..4, 0u8..3, 0u8..3), 1..60),
    ) {
        let mut rte = Rte::new();
        let swc = |local| SwcId::new(EcuId::new(0), local);
        let producer = SwcDescriptor::new("p")
            .with_port(PortSpec::sender_receiver("p0", PortDirection::Provided))
            .with_port(PortSpec::sender_receiver("p1", PortDirection::Provided))
            .with_port(PortSpec::sender_receiver("p2", PortDirection::Provided));
        rte.register_component(swc(0), &producer).unwrap();
        let providers: Vec<PortId> = (0..3)
            .map(|i| rte.port_id(swc(0), &format!("p{i}")).unwrap())
            .collect();
        let mut requirers = Vec::new();
        for i in 1..=3u16 {
            let descriptor = SwcDescriptor::new(format!("c{i}"))
                .with_port(PortSpec::queued("in", PortDirection::Required, 4));
            rte.register_component(swc(i), &descriptor).unwrap();
            requirers.push(rte.port_id(swc(i), "in").unwrap());
        }
        let frame = CanId::new(0x99).unwrap();
        for (kind, a, b) in ops {
            let provider = providers[usize::from(a)];
            let requirer = requirers[usize::from(b)];
            match kind {
                0 => rte.connect(provider, requirer).unwrap(),
                1 => {
                    let _ = rte.disconnect(provider, requirer);
                }
                2 => rte.map_signal_in(frame, requirer).unwrap(),
                _ => {
                    let _ = rte.unmap_signal_in(frame, requirer);
                }
            }
            prop_assert!(rte.verify_compiled_routes());
        }
    }
}
