//! Property-based tests over the wire formats and id-assignment invariants.
//!
//! All blocks run under an explicit, fixed-seed [`ProptestConfig`] so every
//! CI run generates exactly the same cases: a failure here reproduces
//! identically on any machine.

use dynar::bus::frame::{CanId, Frame, MAX_PAYLOAD};
use dynar::core::context::{
    ExternalConnectionContext, InstallationContext, LinkTarget, PortInitContext, PortLinkContext,
};
use dynar::core::message::{Ack, AckStatus, InstallationPackage, ManagementMessage};
use dynar::core::plugin::PluginPortDirection;
use dynar::ecm::protocol::{decode_downlink, decode_uplink, encode_downlink, encode_uplink};
use dynar::foundation::codec::{decode_value, encode_value};
use dynar::foundation::error::DynarError;
use dynar::foundation::ids::{AppId, EcuId, PluginId, PluginPortId, VirtualPortId};
use dynar::foundation::value::Value;
use dynar::rte::com_mapping::{Reassembler, Segmenter};
use dynar::server::campaign::{
    Campaign, CampaignCounters, CampaignId, CampaignSpec, CampaignStatus, HealthGate,
    VehicleSelector, WavePlan,
};
use dynar::vm::assembler::{assemble, disassemble};
use dynar::vm::isa::Instruction;
use dynar::vm::program::Program;
use dynar::vm::{Budget, CompiledProgram, CompiledVm, PortHost, ShadowVm, Vm};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Void),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        any::<f64>()
            .prop_filter("NaN compares unequal", |f| !f.is_nan())
            .prop_map(Value::F64),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
        "[a-zA-Z0-9 ]{0,24}".prop_map(Value::Text),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

fn plugin_id_strategy() -> impl Strategy<Value = PluginId> {
    "[a-zA-Z][a-zA-Z0-9_-]{0,11}".prop_map(PluginId::new)
}

fn ack_strategy() -> impl Strategy<Value = Ack> {
    (
        plugin_id_strategy(),
        "[a-z][a-z0-9-]{0,11}",
        0u16..64,
        prop_oneof![
            Just(AckStatus::Installed),
            Just(AckStatus::Uninstalled),
            Just(AckStatus::Started),
            Just(AckStatus::Stopped),
            "[ -~]{0,32}".prop_map(AckStatus::Failed),
        ],
    )
        .prop_map(|(plugin, app, ecu, status)| Ack {
            plugin,
            app: AppId::new(app),
            ecu: EcuId::new(ecu),
            status,
        })
}

/// Every non-`Install` management message the ECM protocol can carry.
fn management_message_strategy() -> impl Strategy<Value = ManagementMessage> {
    prop_oneof![
        plugin_id_strategy().prop_map(|plugin| ManagementMessage::Uninstall { plugin }),
        plugin_id_strategy().prop_map(|plugin| ManagementMessage::Stop { plugin }),
        plugin_id_strategy().prop_map(|plugin| ManagementMessage::Start { plugin }),
        (0u32..64, value_strategy()).prop_map(|(port, payload)| ManagementMessage::ExternalData {
            port: PluginPortId::new(port),
            payload,
        }),
        ("[A-Za-z]{1,10}", value_strategy()).prop_map(|(message_id, payload)| {
            ManagementMessage::OutboundData {
                message_id,
                payload,
            }
        }),
        ack_strategy().prop_map(ManagementMessage::Ack),
        proptest::strategy::Just(ManagementMessage::StateReportRequest),
        (
            0u32..16,
            proptest::collection::vec((plugin_id_strategy(), "[a-z]{1,8}", 1u16..8), 0..4,),
        )
            .prop_map(|(boot_epoch, plugins)| ManagementMessage::StateReport {
                boot_epoch,
                plugins: plugins
                    .into_iter()
                    .map(|(plugin, app, ecu)| (plugin, AppId::new(app), EcuId::new(ecu)))
                    .collect(),
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every management message survives the server → ECM downlink encoding,
    /// and the recipient ECU address, sequence id, boot epoch and server
    /// incarnation survive with it.
    #[test]
    fn downlink_round_trips(
        target in 0u16..64,
        seq in 0u64..1_000_000,
        boot_epoch in 0u32..1_000,
        incarnation in 0u32..1_000,
        message in management_message_strategy(),
    ) {
        let bytes = encode_downlink(EcuId::new(target), seq, boot_epoch, incarnation, &message);
        let envelope = decode_downlink(&bytes).unwrap();
        prop_assert_eq!(envelope.target, EcuId::new(target));
        prop_assert_eq!(envelope.seq, seq);
        prop_assert_eq!(envelope.boot_epoch, boot_epoch);
        prop_assert_eq!(envelope.incarnation, incarnation);
        prop_assert_eq!(envelope.message, message);
    }

    /// Installation packages (opaque binary plus PIC/PLC context) survive the
    /// downlink too — the variant the paper's §3.1.3 example shows.
    #[test]
    fn downlink_install_round_trips(
        target in 0u16..16,
        binary in proptest::collection::vec(any::<u8>(), 0..256),
        ports in proptest::collection::vec(0u32..32, 1..6),
    ) {
        let mut pic = PortInitContext::new();
        let mut plc = PortLinkContext::new();
        let mut seen = std::collections::HashSet::new();
        for (index, id) in ports.iter().enumerate() {
            if !seen.insert(*id) {
                continue;
            }
            pic = pic.with_port(
                format!("p{index}"),
                PluginPortId::new(*id),
                PluginPortDirection::Required,
            );
            plc = plc.with_link(PluginPortId::new(*id), LinkTarget::Direct);
        }
        let package = InstallationPackage::new(
            PluginId::new("prop-plugin"),
            AppId::new("prop-app"),
            binary,
            InstallationContext::new(pic, plc),
        );
        let message = ManagementMessage::Install(package);
        let bytes = encode_downlink(EcuId::new(target), 7, 2, 3, &message);
        let envelope = decode_downlink(&bytes).unwrap();
        prop_assert_eq!(envelope.target, EcuId::new(target));
        prop_assert_eq!(envelope.seq, 7);
        prop_assert_eq!(envelope.boot_epoch, 2);
        prop_assert_eq!(envelope.incarnation, 3);
        prop_assert_eq!(envelope.message, message);
    }

    /// Every acknowledgement survives the vehicle → server uplink encoding.
    #[test]
    fn uplink_round_trips(message in management_message_strategy()) {
        let bytes = encode_uplink(&message);
        prop_assert_eq!(decode_uplink(&bytes).unwrap(), message);
    }

    /// Any in-range identifier and payload make a frame that reports exactly
    /// what was framed.
    #[test]
    fn can_framing_round_trips(
        id in 0u32..=CanId::MAX,
        payload in proptest::collection::vec(any::<u8>(), 0..=MAX_PAYLOAD),
    ) {
        let can_id = CanId::new(id).unwrap();
        let frame = Frame::new(can_id, payload.clone()).unwrap();
        prop_assert_eq!(frame.id(), can_id);
        prop_assert_eq!(frame.id().raw(), id);
        prop_assert_eq!(frame.dlc(), payload.len());
        prop_assert_eq!(frame.payload(), payload.as_slice());
        prop_assert_eq!(frame.into_payload(), payload);
    }

    /// Out-of-range identifiers and oversized payloads are rejected with the
    /// typed configuration error, never a panic.
    #[test]
    fn can_framing_rejects_invalid_inputs(
        id_overflow in 1u32..=0x7FFF_FFFF - CanId::MAX,
        oversize in 1usize..64,
    ) {
        prop_assert!(matches!(
            CanId::new(CanId::MAX + id_overflow),
            Err(DynarError::InvalidConfiguration(_))
        ));
        let id = CanId::new(0x100).unwrap();
        prop_assert!(matches!(
            Frame::new(id, vec![0; MAX_PAYLOAD + oversize]),
            Err(DynarError::InvalidConfiguration(_))
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any value survives the shared codec unchanged.
    #[test]
    fn codec_round_trips(value in value_strategy()) {
        let encoded = encode_value(&value);
        prop_assert_eq!(decode_value(&encoded).unwrap(), value);
    }

    /// Any payload survives segmentation and reassembly, regardless of size.
    #[test]
    fn segmentation_round_trips(payload in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let id = dynar::bus::frame::CanId::new(0x123).unwrap();
        let mut segmenter = Segmenter::new();
        let mut reassembler = Reassembler::new();
        let mut result = None;
        for frame in segmenter.segment(id, &payload).unwrap() {
            result = reassembler.accept(&frame).unwrap();
        }
        prop_assert_eq!(result, Some((id, payload)));
    }

    /// Installation contexts survive their wire encoding, for any mix of
    /// direct, virtual-port, remote and external links.
    #[test]
    fn context_round_trips(
        ports in proptest::collection::vec((0u32..64, any::<bool>()), 1..12),
        virtual_ids in proptest::collection::vec(0u16..16, 0..12),
        with_ecc in any::<bool>(),
    ) {
        let mut pic = PortInitContext::new();
        let mut seen = std::collections::HashSet::new();
        let mut port_ids = Vec::new();
        for (index, (id, provided)) in ports.iter().enumerate() {
            if !seen.insert(*id) {
                continue;
            }
            let direction = if *provided {
                PluginPortDirection::Provided
            } else {
                PluginPortDirection::Required
            };
            pic = pic.with_port(format!("port{index}"), PluginPortId::new(*id), direction);
            port_ids.push(PluginPortId::new(*id));
        }
        let mut plc = PortLinkContext::new();
        for (index, port) in port_ids.iter().enumerate() {
            let target = match virtual_ids.get(index) {
                None => LinkTarget::Direct,
                Some(v) if index % 2 == 0 => LinkTarget::VirtualPort(VirtualPortId::new(*v)),
                Some(v) => LinkTarget::RemotePluginPort {
                    via: VirtualPortId::new(*v),
                    remote: PluginPortId::new(u32::from(*v) + 100),
                },
            };
            plc = plc.with_link(*port, target);
        }
        let mut context = InstallationContext::new(pic, plc);
        if with_ecc {
            let mut ecc = ExternalConnectionContext::new();
            for (index, port) in port_ids.iter().enumerate() {
                ecc = ecc.with_route(
                    "device",
                    format!("msg{index}"),
                    EcuId::new(index as u16),
                    *port,
                );
            }
            context = context.with_ecc(ecc);
        }
        prop_assert!(context.validate().is_ok());
        let decoded = InstallationContext::from_bytes(&context.to_bytes()).unwrap();
        prop_assert_eq!(decoded, context);
    }

    /// Plug-in binaries survive the portable binary format, whatever the
    /// (valid) program text.
    #[test]
    fn assembled_programs_round_trip(
        constants in proptest::collection::vec(-1000i64..1000, 1..8),
        port in 0u32..16,
    ) {
        let mut source = String::new();
        for value in &constants {
            source.push_str(&format!("push_int {value}\n"));
        }
        source.push_str(&format!("write_port {port}\nhalt\n"));
        let program = assemble("generated", &source).unwrap();
        let decoded = dynar::vm::program::Program::from_bytes(&program.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &program);
        prop_assert!(!disassemble(&decoded).is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The transport hub's conservation invariant (`sent == delivered + lost
    /// + dropped + in_flight`) and per-link FIFO order hold under arbitrary
    /// interleavings of register/send/step/receive operations mixed with
    /// fault injection (loss, jitter, partitions) — the stats ledger of the
    /// federation reliability plane can never leak a message.
    #[test]
    fn transport_conservation_and_fifo_under_random_interleavings(
        ops in proptest::collection::vec(
            (0u8..6, 0usize..5, 0usize..5, 1u64..6),
            1..160,
        ),
        seed in 0u64..1024,
    ) {
        use dynar::fes::transport::{LinkFault, Transport, TransportConfig, TransportHub};
        use dynar::foundation::time::Tick;
        use std::collections::HashMap;

        let names = ["e0", "e1", "e2", "e3", "e4"];
        let mut hub = TransportHub::new(TransportConfig {
            latency_ticks: 1,
            loss_probability: 0.15,
            seed,
        });
        hub.register(names[0]);
        hub.register(names[1]);

        let mut now = 0u64;
        // Per directed link: the next payload counter and the highest
        // counter observed at the receiver (FIFO ⇒ strictly increasing).
        let mut next_seq: HashMap<(usize, usize), u64> = HashMap::new();
        let mut last_seen: HashMap<(String, String), u64> = HashMap::new();

        for (op, a, b, k) in ops {
            match op {
                0 => hub.register(names[a]),
                1 => {
                    let (from, to) = (names[a], names[b]);
                    if hub.is_registered(from) && hub.is_registered(to) {
                        let seq = next_seq.entry((a, b)).or_insert(0);
                        *seq += 1;
                        hub.send(from, to, seq.to_be_bytes().to_vec()).unwrap();
                    } else {
                        prop_assert!(hub.send(from, to, vec![]).is_err());
                    }
                }
                2 => {
                    now += k;
                    hub.step(Tick::new(now));
                }
                3 => {
                    for (sender, payload) in hub.drain(names[a]) {
                        let seq = u64::from_be_bytes(payload.as_slice().try_into().unwrap());
                        let key = (sender.as_ref().to_owned(), names[a].to_owned());
                        let last = last_seen.get(&key).copied().unwrap_or(0);
                        prop_assert!(
                            seq > last,
                            "link {:?} delivered {seq} after {last}", key
                        );
                        last_seen.insert(key, seq);
                    }
                }
                4 => hub.set_link_fault(names[a], names[b], LinkFault::jittery(k)),
                _ => hub.partition(names[a], names[b], Tick::new(now + k)),
            }
            prop_assert!(hub.stats().is_conserved(), "after op {op}: {:?}", hub.stats());
        }

        // Drain: past every partition heal tick and jittered latency, the
        // ledger closes with nothing in flight.
        now += 64;
        hub.step(Tick::new(now));
        let stats = hub.stats();
        prop_assert_eq!(stats.in_flight, 0);
        prop_assert_eq!(stats.sent, stats.delivered + stats.lost + stats.dropped);
    }
}

fn vehicle_id_strategy() -> impl Strategy<Value = dynar::foundation::ids::VehicleId> {
    "[A-Z][A-Z0-9-]{1,11}".prop_map(dynar::foundation::ids::VehicleId::new)
}

fn campaign_spec_strategy() -> impl Strategy<Value = CampaignSpec> {
    let selector = prop_oneof![
        Just(VehicleSelector::All),
        "[a-z][a-z0-9-]{0,11}".prop_map(VehicleSelector::Model),
        proptest::collection::vec(vehicle_id_strategy(), 0..5).prop_map(VehicleSelector::Vehicles),
    ];
    (
        "[a-z][a-z0-9-]{0,11}",
        "[a-z][a-z0-9-]{0,11}",
        prop_oneof![Just(None), "[a-z][a-z0-9-]{0,11}".prop_map(Some),],
        selector,
        (0usize..20, proptest::collection::vec(1u32..=100, 0..5)),
        (0u64..1000, 0u64..20, 0u64..20),
    )
        .prop_map(|(id, app, replaces, selector, plan, gate)| CampaignSpec {
            id: CampaignId::new(id),
            app: AppId::new(app),
            replaces: replaces.map(AppId::new),
            selector,
            plan: WavePlan {
                canary: plan.0,
                ramp_percent: plan.1,
            },
            gate: HealthGate {
                min_soak_ticks: gate.0,
                pause_failed: gate.1,
                abort_failed: gate.2,
            },
        })
}

fn campaign_strategy() -> impl Strategy<Value = Campaign> {
    (
        campaign_spec_strategy(),
        (
            "[a-z]{1,8}",
            proptest::collection::vec(vehicle_id_strategy(), 0..6),
        ),
        (0usize..6, 0u64..5000),
        prop_oneof![
            Just(CampaignStatus::Running),
            Just(CampaignStatus::Paused),
            Just(CampaignStatus::Aborted),
            Just(CampaignStatus::Complete),
        ],
        proptest::collection::vec(
            (
                vehicle_id_strategy(),
                proptest::collection::vec("[a-z]{1,6}".prop_map(AppId::new), 0..4),
            ),
            0..4,
        ),
        (0u64..100, 0u64..100, 0u64..100, 0u64..100),
    )
        .prop_map(
            |(spec, (user, targets), (wave, wave_started), status, last_good, counters)| Campaign {
                id: spec.id,
                user: dynar::foundation::ids::UserId::new(user),
                app: spec.app,
                replaces: spec.replaces,
                selector: spec.selector,
                targets,
                plan: spec.plan,
                gate: spec.gate,
                status,
                wave,
                wave_started: dynar::foundation::time::Tick::new(wave_started),
                last_good: last_good
                    .into_iter()
                    .map(|(vehicle, apps)| (vehicle, apps.into_iter().collect()))
                    .collect(),
                counters: CampaignCounters {
                    exposed: counters.0,
                    succeeded: counters.1,
                    failed: counters.2,
                    rolled_back: counters.3,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every campaign structure — any selector shape, wave plan, gate,
    /// lifecycle status, last-good map and counter state — survives its
    /// canonical value encoding: the form the journal's create record and
    /// the durability snapshot carry.
    #[test]
    fn campaign_codecs_round_trip(
        spec in campaign_spec_strategy(),
        campaign in campaign_strategy(),
    ) {
        prop_assert_eq!(CampaignSpec::from_value(&spec.to_value()).unwrap(), spec);
        prop_assert_eq!(Campaign::from_value(&campaign.to_value()).unwrap(), campaign);
    }

    /// Well-formed journal frames carrying the campaign record tags (20–25)
    /// with arbitrary payloads drive `TrustedServer::replay` through every
    /// campaign decode-and-apply arm: a typed error or a (vacuous) success,
    /// never a panic — decision records naming unknown campaigns included.
    #[test]
    fn campaign_journal_frames_never_panic_on_arbitrary_payloads(
        records in proptest::collection::vec(
            (20i64..=25, value_strategy(), any::<bool>()),
            1..8,
        ),
    ) {
        use dynar::foundation::codec::encode_value;
        use dynar::foundation::journal::append_frame;
        use dynar::server::TrustedServer;

        let mut journal = Vec::new();
        for (tag, payload, wrap) in records {
            // Sometimes the canonical `[tag, payload]` list shape with an
            // adversarial payload, sometimes a bare value under the tag.
            let record = if wrap {
                Value::List(vec![Value::I64(tag), payload])
            } else {
                Value::List(vec![Value::I64(tag), Value::List(vec![payload])])
            };
            append_frame(&mut journal, &encode_value(&record));
        }
        let _ = TrustedServer::replay(&journal);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every byte-level decoder in the stack — the shared value codec, the
    /// ECM wire envelopes, the installation context, the journal frame
    /// reader and the journal replay itself — returns a typed error on
    /// arbitrary (truncated, corrupted, adversarial) input.  None of them
    /// may panic: they all sit on recovery or ingress paths where the input
    /// is untrusted by definition.
    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        use dynar::core::message::DownlinkEnvelope;
        use dynar::foundation::journal::FrameReader;
        use dynar::server::TrustedServer;
        use dynar::vm::program::Program;

        let _ = decode_value(&bytes);
        let _ = decode_downlink(&bytes);
        let _ = decode_uplink(&bytes);
        let _ = DownlinkEnvelope::from_bytes(&bytes);
        let _ = ManagementMessage::from_bytes(&bytes);
        let _ = InstallationContext::from_bytes(&bytes);
        let _ = Program::from_bytes(&bytes);
        let _ = TrustedServer::replay(&bytes);
        let mut reader = FrameReader::new(&bytes);
        while let Ok(Some(_)) = reader.next_frame() {}
    }

    /// The structured `from_value` decoders of the durability plane (model
    /// descriptions, the ledger) reject arbitrary value trees with typed
    /// errors — and whenever one *does* accept a tree, re-encoding the
    /// decoded form is a fixpoint of the canonical encoding.
    #[test]
    fn durability_value_decoders_never_panic(value in value_strategy()) {
        use dynar::server::{AppDefinition, HwConf, Ledger, SystemSwConf};

        if let Ok(hw) = HwConf::from_value(&value) {
            prop_assert_eq!(HwConf::from_value(&hw.to_value()).unwrap(), hw);
        }
        if let Ok(system) = SystemSwConf::from_value(&value) {
            prop_assert_eq!(SystemSwConf::from_value(&system.to_value()).unwrap(), system);
        }
        if let Ok(app) = AppDefinition::from_value(&value) {
            prop_assert_eq!(AppDefinition::from_value(&app.to_value()).unwrap(), app);
        }
        if let Ok(ledger) = Ledger::from_value(&value) {
            prop_assert_eq!(Ledger::from_value(&ledger.to_value()).unwrap(), ledger);
        }
        if let Ok(spec) = CampaignSpec::from_value(&value) {
            prop_assert_eq!(CampaignSpec::from_value(&spec.to_value()).unwrap(), spec);
        }
        if let Ok(campaign) = Campaign::from_value(&value) {
            prop_assert_eq!(Campaign::from_value(&campaign.to_value()).unwrap(), campaign);
        }
    }
}

// ---------------------------------------------------------------------------
// Compiled execution plane properties.
// ---------------------------------------------------------------------------

/// A deterministic three-slot port host for the dual-plane runs.
struct VmHost {
    slots: Vec<Vec<Value>>,
    written: Vec<(u32, Value)>,
    logs: Vec<String>,
}

impl VmHost {
    fn new(slot_count: usize) -> Self {
        VmHost {
            slots: vec![Vec::new(); slot_count],
            written: Vec::new(),
            logs: Vec::new(),
        }
    }

    fn slot(&mut self, slot: u32) -> dynar::foundation::error::Result<&mut Vec<Value>> {
        self.slots
            .get_mut(slot as usize)
            .ok_or_else(|| DynarError::not_found("port slot", slot))
    }
}

impl PortHost for VmHost {
    fn read_port(&mut self, slot: u32) -> dynar::foundation::error::Result<Value> {
        Ok(self.slot(slot)?.first().cloned().unwrap_or_default())
    }
    fn take_port(&mut self, slot: u32) -> dynar::foundation::error::Result<Value> {
        let queue = self.slot(slot)?;
        Ok(if queue.is_empty() {
            Value::Void
        } else {
            queue.remove(0)
        })
    }
    fn write_port(&mut self, slot: u32, value: Value) -> dynar::foundation::error::Result<()> {
        self.slot(slot)?;
        self.written.push((slot, value));
        Ok(())
    }
    fn pending(&mut self, slot: u32) -> dynar::foundation::error::Result<usize> {
        Ok(self.slot(slot)?.len())
    }
    fn log(&mut self, message: &str) {
        self.logs.push(message.to_owned());
    }
}

/// Maps an arbitrary `(selector, operand)` pair onto an instruction with the
/// operand used *unclamped* — jump targets and constant references may be
/// wildly out of range.
fn raw_instruction(sel: u8, operand: u64) -> Instruction {
    match sel % 36 {
        0 => Instruction::Nop,
        1 => Instruction::PushConst(operand as u16),
        2 => Instruction::PushInt(operand as i64),
        3 => Instruction::Dup,
        4 => Instruction::Pop,
        5 => Instruction::Swap,
        6 => Instruction::Load(operand as u8),
        7 => Instruction::Store(operand as u8),
        8 => Instruction::Add,
        9 => Instruction::Sub,
        10 => Instruction::Mul,
        11 => Instruction::Div,
        12 => Instruction::Rem,
        13 => Instruction::Neg,
        14 => Instruction::Eq,
        15 => Instruction::Ne,
        16 => Instruction::Lt,
        17 => Instruction::Le,
        18 => Instruction::Gt,
        19 => Instruction::Ge,
        20 => Instruction::And,
        21 => Instruction::Or,
        22 => Instruction::Not,
        23 => Instruction::Jump(operand as u16),
        24 => Instruction::JumpIfFalse(operand as u16),
        25 => Instruction::JumpIfTrue(operand as u16),
        26 => Instruction::ReadPort(operand as u32),
        27 => Instruction::TakePort(operand as u32),
        28 => Instruction::WritePort(operand as u32),
        29 => Instruction::PortPending(operand as u32),
        30 => Instruction::MakeList(operand as u8),
        31 => Instruction::ListGet,
        32 => Instruction::ListLen,
        33 => Instruction::Log,
        34 => Instruction::Yield,
        _ => Instruction::Halt,
    }
}

/// Like [`raw_instruction`] but with every static reference reduced into
/// range, so [`Program::validate`] (and therefore compilation) succeeds.
/// Ports reduce modulo 4 while the host only has 3 slots — the missing-port
/// host-fault path stays reachable.
fn valid_instruction(sel: u8, operand: u64, len: usize, pool: usize) -> Instruction {
    match raw_instruction(sel, operand) {
        Instruction::Jump(_) => Instruction::Jump((operand % len as u64) as u16),
        Instruction::JumpIfFalse(_) => Instruction::JumpIfFalse((operand % len as u64) as u16),
        Instruction::JumpIfTrue(_) => Instruction::JumpIfTrue((operand % len as u64) as u16),
        Instruction::PushConst(_) => Instruction::PushConst((operand % pool as u64) as u16),
        Instruction::Load(_) => Instruction::Load((operand % 6) as u8),
        Instruction::Store(_) => Instruction::Store((operand % 6) as u8),
        Instruction::ReadPort(_) => Instruction::ReadPort((operand % 4) as u32),
        Instruction::TakePort(_) => Instruction::TakePort((operand % 4) as u32),
        Instruction::WritePort(_) => Instruction::WritePort((operand % 4) as u32),
        Instruction::PortPending(_) => Instruction::PortPending((operand % 4) as u32),
        other => other,
    }
}

/// Bitwise value identity: separates `NaN == NaN` (identical computation on
/// both planes) from genuine divergence, which `PartialEq` on floats cannot.
fn values_bitwise_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
        (Value::List(xs), Value::List(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys.iter())
                    .all(|(x, y)| values_bitwise_identical(x, y))
        }
        _ => a == b,
    }
}

fn slices_bitwise_identical(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| values_bitwise_identical(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Install-time compilation is total: any instruction sequence — in or
    /// out of range references, any constant pool — either compiles or is
    /// rejected with the typed configuration error.  Never a panic, and the
    /// compiled form always stays 1:1 with the source code section.
    #[test]
    fn compiling_arbitrary_programs_never_panics(
        raw in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..48),
        constants in proptest::collection::vec(value_strategy(), 0..4),
    ) {
        let mut program = Program::new("arb");
        for constant in constants {
            program = program.with_constant(constant);
        }
        let program =
            program.with_code(raw.into_iter().map(|(sel, op)| raw_instruction(sel, op)).collect());
        match CompiledProgram::compile(program.clone()) {
            Ok(compiled) => {
                prop_assert!(program.validate().is_ok());
                prop_assert_eq!(compiled.op_count(), program.code().len());
            }
            Err(DynarError::InvalidConfiguration(_)) => {
                prop_assert!(program.validate().is_err());
            }
            Err(other) => {
                prop_assert!(false, "unexpected compile error variant: {:?}", other);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The two execution planes are observably identical on generated
    /// programs under generated port traffic: per-slot reports and faults,
    /// final status, stacks, locals, memory accounting, fuel use, port
    /// writes and log streams all match — with a [`ShadowVm`] running the
    /// same traffic in lock-step as a third witness.
    #[test]
    fn random_programs_execute_identically_on_both_planes(
        raw in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..40),
        traffic in proptest::collection::vec((0u32..3, value_strategy()), 0..12),
        slot_limit in 3u64..48,
    ) {
        let len = raw.len();
        let code: Vec<Instruction> = raw
            .into_iter()
            .map(|(sel, op)| valid_instruction(sel, op, len, 3))
            .collect();
        let program = Program::new("gen")
            .with_constant(Value::I64(9))
            .with_constant(Value::Text("probe".into()))
            .with_constant(Value::Bool(true))
            .with_code(code);
        prop_assert!(program.validate().is_ok());
        let budget = Budget::new(slot_limit)
            .with_max_stack(6)
            .with_max_memory_bytes(256)
            .with_locals(4);

        let mut interp = Vm::new(program.clone(), budget);
        let mut fast = CompiledVm::compile(program.clone(), budget).unwrap();
        let mut shadow = ShadowVm::new(program, budget).unwrap();
        let mut host_i = VmHost::new(3);
        let mut host_f = VmHost::new(3);
        let mut host_s = VmHost::new(3);

        let per_slot = traffic.len() / 3 + 1;
        let mut queued = traffic.iter();
        for _ in 0..3 {
            for _ in 0..per_slot {
                if let Some((slot, value)) = queued.next() {
                    host_i.slots[*slot as usize].push(value.clone());
                    host_f.slots[*slot as usize].push(value.clone());
                    host_s.slots[*slot as usize].push(value.clone());
                }
            }
            let reference = interp.run_slot(&mut host_i);
            let compiled = fast.run_slot(&mut host_f);
            // ShadowVm panics internally on any divergence between its own
            // two planes; its report must also match the standalone runs.
            let shadowed = shadow.run_slot(&mut host_s);
            prop_assert_eq!(&reference, &compiled, "slot outcome diverged");
            prop_assert_eq!(&reference, &shadowed, "shadow outcome diverged");
            if reference.is_err() {
                break;
            }
        }

        prop_assert_eq!(interp.status(), fast.status());
        prop_assert_eq!(interp.total_instructions(), fast.total_instructions());
        prop_assert_eq!(interp.used_bytes(), fast.used_bytes());
        prop_assert!(
            slices_bitwise_identical(interp.stack(), fast.stack()),
            "stacks diverged: {:?} vs {:?}", interp.stack(), fast.stack()
        );
        prop_assert!(
            slices_bitwise_identical(interp.locals(), fast.locals()),
            "locals diverged: {:?} vs {:?}", interp.locals(), fast.locals()
        );
        prop_assert_eq!(&host_i.logs, &host_f.logs);
        prop_assert_eq!(host_i.written.len(), host_f.written.len());
        for ((slot_i, value_i), (slot_f, value_f)) in host_i.written.iter().zip(&host_f.written) {
            prop_assert_eq!(slot_i, slot_f);
            prop_assert!(
                values_bitwise_identical(value_i, value_f),
                "written values diverged: {:?} vs {:?}", value_i, value_f
            );
        }
    }
}
