//! Property-based tests over the wire formats and id-assignment invariants.

use dynar::core::context::{
    ExternalConnectionContext, InstallationContext, LinkTarget, PortInitContext, PortLinkContext,
};
use dynar::core::plugin::PluginPortDirection;
use dynar::foundation::codec::{decode_value, encode_value};
use dynar::foundation::ids::{EcuId, PluginPortId, VirtualPortId};
use dynar::foundation::value::Value;
use dynar::rte::com_mapping::{Reassembler, Segmenter};
use dynar::vm::assembler::{assemble, disassemble};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Void),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        any::<f64>().prop_filter("NaN compares unequal", |f| !f.is_nan()).prop_map(Value::F64),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
        "[a-zA-Z0-9 ]{0,24}".prop_map(Value::Text),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

proptest! {
    /// Any value survives the shared codec unchanged.
    #[test]
    fn codec_round_trips(value in value_strategy()) {
        let encoded = encode_value(&value);
        prop_assert_eq!(decode_value(&encoded).unwrap(), value);
    }

    /// Any payload survives segmentation and reassembly, regardless of size.
    #[test]
    fn segmentation_round_trips(payload in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let id = dynar::bus::frame::CanId::new(0x123).unwrap();
        let mut segmenter = Segmenter::new();
        let mut reassembler = Reassembler::new();
        let mut result = None;
        for frame in segmenter.segment(id, &payload).unwrap() {
            result = reassembler.accept(&frame).unwrap();
        }
        prop_assert_eq!(result, Some((id, payload)));
    }

    /// Installation contexts survive their wire encoding, for any mix of
    /// direct, virtual-port, remote and external links.
    #[test]
    fn context_round_trips(
        ports in proptest::collection::vec((0u32..64, any::<bool>()), 1..12),
        virtual_ids in proptest::collection::vec(0u16..16, 0..12),
        with_ecc in any::<bool>(),
    ) {
        let mut pic = PortInitContext::new();
        let mut seen = std::collections::HashSet::new();
        let mut port_ids = Vec::new();
        for (index, (id, provided)) in ports.iter().enumerate() {
            if !seen.insert(*id) {
                continue;
            }
            let direction = if *provided {
                PluginPortDirection::Provided
            } else {
                PluginPortDirection::Required
            };
            pic = pic.with_port(format!("port{index}"), PluginPortId::new(*id), direction);
            port_ids.push(PluginPortId::new(*id));
        }
        let mut plc = PortLinkContext::new();
        for (index, port) in port_ids.iter().enumerate() {
            let target = match virtual_ids.get(index) {
                None => LinkTarget::Direct,
                Some(v) if index % 2 == 0 => LinkTarget::VirtualPort(VirtualPortId::new(*v)),
                Some(v) => LinkTarget::RemotePluginPort {
                    via: VirtualPortId::new(*v),
                    remote: PluginPortId::new(u32::from(*v) + 100),
                },
            };
            plc = plc.with_link(*port, target);
        }
        let mut context = InstallationContext::new(pic, plc);
        if with_ecc {
            let mut ecc = ExternalConnectionContext::new();
            for (index, port) in port_ids.iter().enumerate() {
                ecc = ecc.with_route(
                    "device",
                    format!("msg{index}"),
                    EcuId::new(index as u16),
                    *port,
                );
            }
            context = context.with_ecc(ecc);
        }
        prop_assert!(context.validate().is_ok());
        let decoded = InstallationContext::from_bytes(&context.to_bytes()).unwrap();
        prop_assert_eq!(decoded, context);
    }

    /// Plug-in binaries survive the portable binary format, whatever the
    /// (valid) program text.
    #[test]
    fn assembled_programs_round_trip(
        constants in proptest::collection::vec(-1000i64..1000, 1..8),
        port in 0u32..16,
    ) {
        let mut source = String::new();
        for value in &constants {
            source.push_str(&format!("push_int {value}\n"));
        }
        source.push_str(&format!("write_port {port}\nhalt\n"));
        let program = assemble("generated", &source).unwrap();
        let decoded = dynar::vm::program::Program::from_bytes(&program.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &program);
        prop_assert!(!disassemble(&decoded).is_empty());
    }
}
