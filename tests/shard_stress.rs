//! Stress loop for the parallel fleet tick, pinned for CI: the churn
//! campaign — reboots, a removal and a join landing mid-wave — repeated 50
//! times at 8 shards with a different transport seed each iteration.
//!
//! The point is not any single assertion but the repetition: the shard
//! fan-out crosses real thread boundaries every tick (the worker pool has a
//! floor of two workers even on one core), so ordering assumptions that only
//! break under a particular interleaving get 50 chances per CI run to
//! surface.  Every 10th iteration additionally runs the same seed serially
//! and requires the byte-identical server snapshot, so a flake shows up as a
//! concrete state diff, not just a failed campaign.

use dynar::sim::scenario::churn::{ChurnConfig, ChurnScenario};

fn campaign(seed: u64, shards: usize) -> (Vec<u8>, u64) {
    let mut scenario = ChurnScenario::build_with(ChurnConfig {
        seed,
        shards,
        ..ChurnConfig::default()
    })
    .expect("churn scenario builds");
    let report = scenario.run().expect("churn campaign converges");
    assert_eq!(report.surviving, 8, "seed {seed:#x}: {report:?}");
    assert!(
        report.transport.is_conserved(),
        "seed {seed:#x}: {report:?}"
    );
    assert!(scenario.fleet_converged(), "seed {seed:#x}");
    (
        scenario.inner.fleet.server.snapshot_bytes(),
        report.transport.delivered,
    )
}

#[test]
fn parallel_churn_campaign_survives_fifty_reseeded_repetitions() {
    for i in 0..50u64 {
        let seed = 0xC0FFEE ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (snapshot, delivered) = campaign(seed, 8);
        if i % 10 == 0 {
            let (serial_snapshot, serial_delivered) = campaign(seed, 1);
            assert_eq!(
                snapshot, serial_snapshot,
                "seed {seed:#x}: parallel snapshot diverged from serial"
            );
            assert_eq!(
                delivered, serial_delivered,
                "seed {seed:#x}: transport counters diverged from serial"
            );
        }
    }
}
