//! Campaign-plane acceptance, pinned for CI: staged rollouts with health
//! gates at fleet scale, the canary auto-abort with bounded blast radius,
//! rollback under loss and churn, and the durability of campaign state.
//!
//! * **Flash crowd** — all 50 vehicles are eligible at once: a single wave
//!   exposes the fleet and completes after the soak.
//! * **Canary auto-abort** — a bad version (binaries no PIRTE can parse)
//!   rolls out behind a 2-vehicle canary: the abort gate trips before any
//!   ramp wave opens, fleet exposure stays below 5 %, and every exposed
//!   vehicle is rolled back to its recorded last-good manifest — verified
//!   against the ECM state reports *and* the worker PIRTEs' ground truth,
//!   with zero double-applied operations.
//! * **Rollback under fire** — the same abort under 10 % transport loss
//!   while exposed canaries reboot mid-wave.
//! * **Shard equivalence** — the same seeded campaign at 1, 2 and 8 server
//!   shards ends in byte-for-byte identical server state.
//! * **Crash replay** — a journaled server crashed mid-campaign (and again
//!   after the terminal decision) is reconstructed byte-identically from its
//!   write-ahead journal at every shard count.

use dynar::server::campaign::{CampaignId, CampaignStatus};
use dynar::server::{Ledger, TrustedServer};
use dynar::sim::scenario::campaign::{
    CampaignReport, CampaignScenario, CampaignScenarioConfig, APP_TELEMETRY_BAD,
};
use dynar::sim::scenario::fleet::{APP_TELEMETRY, APP_TELEMETRY_V2};
use dynar::sim::FleetStats;

/// The pinned fleet size of the acceptance campaigns.
const FLEET: usize = 50;

#[test]
fn flash_crowd_campaign_converges_the_whole_fleet_in_one_wave() {
    let mut scenario = CampaignScenario::build_with(CampaignScenarioConfig {
        vehicles: FLEET,
        canary: FLEET,
        ramp_percent: Vec::new(),
        min_soak_ticks: 20,
        ..CampaignScenarioConfig::default()
    })
    .expect("campaign scenario builds");
    let spec = scenario.spec("flash-v1", APP_TELEMETRY, None);
    let report = scenario.run_campaign(spec).expect("flash crowd converges");
    assert_eq!(report.status, CampaignStatus::Complete, "{report:?}");
    assert_eq!(report.exposed, FLEET as u64, "one wave, whole fleet");
    assert_eq!(report.succeeded, FLEET as u64, "{report:?}");
    assert_eq!(report.failed, 0, "{report:?}");
    assert_eq!(report.rolled_back, 0, "{report:?}");
    assert!(report.transport.is_conserved(), "{report:?}");
}

/// Runs the bad-version canary campaign and asserts the abort contract:
/// exposure bounded by the canary wave, every exposed vehicle restored.
fn assert_canary_abort(mut scenario: CampaignScenario) -> CampaignReport {
    scenario.converge_on_v1().expect("fleet converges on v1");
    let spec = scenario.spec("bad-v2", APP_TELEMETRY_BAD, Some(APP_TELEMETRY));
    let canary = scenario.config().canary as u64;
    // `run_campaign` has already re-audited every vehicle against the ECM
    // state reports and the PIRTE ground truth (including the zero
    // rejected-operations — i.e. zero double-apply — invariant) before
    // returning.
    let report = scenario.run_campaign(spec).expect("abort converges");
    assert_eq!(report.status, CampaignStatus::Aborted, "{report:?}");
    assert_eq!(report.exposed, canary, "no ramp wave ever opened");
    assert!(
        (report.exposed as f64) < 0.05 * FLEET as f64,
        "blast radius {} of {FLEET} breaches the 5 % bound",
        report.exposed
    );
    assert_eq!(
        report.rolled_back, report.exposed,
        "every exposed vehicle rolled back: {report:?}"
    );
    let ledger = scenario.inner.fleet.server.ledger();
    assert_eq!(ledger.campaigns_aborted, 1, "{ledger:?}");
    assert_eq!(ledger.campaign_exposures, report.exposed, "{ledger:?}");
    assert_eq!(ledger.campaign_rollbacks, report.rolled_back, "{ledger:?}");
    report
}

#[test]
fn bad_version_canary_auto_aborts_below_five_percent_exposure() {
    let scenario = CampaignScenario::build_with(CampaignScenarioConfig {
        vehicles: FLEET,
        canary: 2,
        ..CampaignScenarioConfig::default()
    })
    .expect("campaign scenario builds");
    let report = assert_canary_abort(scenario);
    assert_eq!(report.rebooted, 0, "{report:?}");
}

#[test]
fn rollback_converges_under_loss_with_mid_wave_reboots() {
    let scenario = CampaignScenario::build_with(CampaignScenarioConfig {
        vehicles: FLEET,
        canary: 2,
        loss_probability: 0.10,
        latency_ticks: 2,
        min_soak_ticks: 40,
        max_ticks: 12_000,
        // Both exposed canaries (the selector sorts, so the first two
        // vehicles in registration order) reboot while their bad install
        // is in flight.
        reboots: vec![(12, 0), (25, 1)],
        ..CampaignScenarioConfig::default()
    })
    .expect("campaign scenario builds");
    let report = assert_canary_abort(scenario);
    assert_eq!(report.rebooted, 2, "{report:?}");
    assert!(report.transport.is_conserved(), "{report:?}");
}

/// One full bad-version abort campaign at the given shard count, returning
/// everything that must match across counts.
fn sharded_abort_campaign(shards: usize) -> (Vec<u8>, Ledger, FleetStats) {
    let mut scenario = CampaignScenario::build_with(CampaignScenarioConfig {
        vehicles: 12,
        canary: 2,
        loss_probability: 0.05,
        latency_ticks: 2,
        shards,
        ..CampaignScenarioConfig::default()
    })
    .expect("campaign scenario builds");
    scenario.converge_on_v1().expect("fleet converges on v1");
    let spec = scenario.spec("bad-v2", APP_TELEMETRY_BAD, Some(APP_TELEMETRY));
    let report = scenario.run_campaign(spec).expect("abort converges");
    assert_eq!(
        report.status,
        CampaignStatus::Aborted,
        "{shards} shards: {report:?}"
    );
    (
        scenario.inner.fleet.server.snapshot_bytes(),
        scenario.inner.fleet.server.ledger(),
        scenario.inner.fleet.stats().clone(),
    )
}

#[test]
fn sharded_abort_campaign_matches_the_serial_one_byte_for_byte_across_shards() {
    let (snapshot, ledger, stats) = sharded_abort_campaign(1);
    for shards in [2, 8] {
        let (shadow_snapshot, shadow_ledger, shadow_stats) = sharded_abort_campaign(shards);
        assert_eq!(
            snapshot, shadow_snapshot,
            "campaign snapshot diverged at {shards} shards"
        );
        assert_eq!(
            ledger, shadow_ledger,
            "campaign ledger diverged at {shards} shards"
        );
        assert_eq!(
            stats, shadow_stats,
            "fleet counters diverged at {shards} shards"
        );
    }
}

#[test]
fn mid_campaign_crash_replays_byte_identically_at_all_shards() {
    let mut terminal_snapshots = Vec::new();
    for shards in [1, 2, 8] {
        let mut scenario = CampaignScenario::build_with(CampaignScenarioConfig {
            vehicles: 12,
            canary: 2,
            ramp_percent: vec![50, 100],
            min_soak_ticks: 25,
            shards,
            ..CampaignScenarioConfig::default()
        })
        .expect("campaign scenario builds");
        scenario.inner.fleet.server.enable_journal(4096);
        scenario.converge_on_v1().expect("fleet converges on v1");

        let id = CampaignId::new("good-v2");
        let spec = scenario.spec("good-v2", APP_TELEMETRY_V2, Some(APP_TELEMETRY));
        let user = scenario.user().clone();
        scenario
            .inner
            .fleet
            .server
            .create_campaign(&user, spec)
            .expect("campaign creates");
        for _ in 0..10 {
            scenario.step().expect("fleet steps");
        }

        // Crash point: the campaign is mid-flight — waves open, acks in the
        // air, decisions journaled.  The successor must be byte-identical.
        let campaign = scenario
            .inner
            .fleet
            .server
            .campaign(&id)
            .expect("campaign exists");
        assert_eq!(
            campaign.status,
            CampaignStatus::Running,
            "{shards} shards: crash point must land mid-campaign"
        );
        let journal = scenario
            .inner
            .fleet
            .server
            .journal_bytes()
            .expect("journal enabled")
            .to_vec();
        let successor = TrustedServer::replay(&journal).expect("mid-campaign journal replays");
        assert_eq!(
            successor.snapshot_bytes(),
            scenario.inner.fleet.server.snapshot_bytes(),
            "{shards} shards: mid-campaign crash replay diverged"
        );

        // Drive the original to its terminal decision and replay once more:
        // the full decision alphabet (create/advance/complete) round-trips.
        let report = scenario.drive(&id).expect("rollout completes");
        assert_eq!(
            report.status,
            CampaignStatus::Complete,
            "{shards} shards: {report:?}"
        );
        let journal = scenario
            .inner
            .fleet
            .server
            .journal_bytes()
            .expect("journal enabled")
            .to_vec();
        let successor = TrustedServer::replay(&journal).expect("terminal journal replays");
        let bytes = scenario.inner.fleet.server.snapshot_bytes();
        assert_eq!(
            successor.snapshot_bytes(),
            bytes,
            "{shards} shards: terminal crash replay diverged"
        );
        terminal_snapshots.push(bytes);
    }
    assert!(
        terminal_snapshots.windows(2).all(|w| w[0] == w[1]),
        "terminal campaign snapshots diverged across shard counts"
    );
}
