//! The churn + reboot chaos acceptance run, pinned for CI: 20 vehicles at
//! 10 % loss with latency jitter, a staggered v1 install, reboots firing
//! mid-wave, one vehicle removed while its operations are outstanding, one
//! vehicle joining mid-run, and a v1 → v2 update of a subset — all driven
//! declaratively through desired-state reconciliation.
//!
//! What must hold (asserted here and inside the scenario):
//!
//! * every *surviving* vehicle converges to exactly its desired manifest,
//!   verified against the ECM `StateReport` ground truth (the worker PIRTEs
//!   host exactly the expected plug-ins and the server's observed state
//!   matches after the truth-resync rounds),
//! * no double-apply across `boot_epoch`: no PIRTE of any incarnation ever
//!   rejects a duplicate operation — pre-reboot stragglers are fenced off by
//!   the epoch stamp, in-window duplicates by the dedup cache,
//! * the removed vehicle's operations fail fast with the distinct
//!   `vehicle unreachable` reason instead of burning the retry budget,
//! * the transport ledger balances at every tick, reboots (endpoint
//!   re-registration) and removals (voided in-flight traffic) included.
//!
//! Everything is seeded (transport seed, fixed topology, scheduled events),
//! so a failure here reproduces identically on any machine.

use dynar::foundation::ids::AppId;
use dynar::foundation::value::Value;
use dynar::sim::scenario::churn::{ChurnConfig, ChurnPlan, ChurnScenario};
use dynar::sim::scenario::fleet::{APP_TELEMETRY_V2, GAIN_V1, GAIN_V2};

/// The full pinned campaign at the given server shard count.  Membership
/// churn is the hard case for sharding — vehicles join, reboot and leave
/// while the tick is fanned out — and every assertion holds with the same
/// numbers at any shard count.
fn churn_acceptance(shards: usize) {
    let config = ChurnConfig {
        shards,
        vehicles: 20,
        workers_per_vehicle: 3,
        loss_probability: 0.10,
        jitter_ticks: 2,
        seed: 0xC4_A052,
        second_wave_tick: 40,
        update_tick: 300,
        update_count: 3,
        plan: ChurnPlan {
            // Two reboots land mid-install of wave 1; a third hits a vehicle
            // that already converged, exercising resync-from-installed.
            reboots: vec![(12, 0), (18, 4), (200, 7)],
            // Removed while wave-1 install packages are literally in flight
            // towards it (delivery takes latency + jitter ≥ 2 ticks), so the
            // hub must void them as dropped — and the server must fail the
            // outstanding operations fast instead of retrying into the void.
            removals: vec![(1, 3)],
            additions: vec![90],
        },
        ..ChurnConfig::default()
    };
    assert!((config.loss_probability - 0.10).abs() < f64::EPSILON);

    let mut scenario = ChurnScenario::build_with(config).unwrap();
    let report = scenario.run().unwrap();

    // Membership churn all happened: 20 - 1 removed + 1 added survivors.
    assert_eq!(report.rebooted, 3, "{report:?}");
    assert_eq!(report.removed, 1, "{report:?}");
    assert_eq!(report.added, 1, "{report:?}");
    assert_eq!(report.surviving, 20, "{report:?}");

    // The chaos was real: the lossy link dropped messages, the removed
    // vehicle's in-flight traffic was voided, and at least one retransmitted
    // wave was needed.
    assert!(report.transport.lost > 0, "{report:?}");
    assert!(report.transport.dropped > 0, "{report:?}");

    // Conservation at quiescence (held at every tick inside the run).
    let t = report.transport;
    assert_eq!(t.sent, t.delivered + t.lost + t.dropped + t.in_flight);

    // The removed vehicle's outstanding operations failed fast (fleet stats
    // count them alongside retry escalations).
    assert!(report.retry_failures > 0, "{report:?}");

    // The fleet is alive after the campaign: sensor chains actuate on every
    // surviving vehicle — including the rebooted incarnations and the
    // mid-run joiner — with the gain of exactly the telemetry version its
    // manifest prescribes.
    scenario.inner.fleet.run(40).unwrap();
    for handle in scenario.inner.handles().to_vec() {
        let desired = scenario.inner.fleet.server.desired_manifest(&handle.id);
        let gain = if desired.contains(&AppId::new(APP_TELEMETRY_V2)) {
            GAIN_V2
        } else {
            GAIN_V1
        };
        for (worker, _, _) in &handle.workers {
            let actuated = scenario.inner.actuator_value(&handle.id, *worker).unwrap();
            let Value::I64(v) = actuated else {
                panic!("{}/{worker}: no actuation, got {actuated:?}", handle.id);
            };
            assert!(
                v > 0,
                "{}/{worker}: signal chain dead after churn",
                handle.id
            );
            assert_eq!(
                v % gain,
                0,
                "{}/{worker}: gain {gain} not applied",
                handle.id
            );
        }
    }

    // End-state invariants once more, after the extra drive time.
    assert!(scenario.fleet_converged());
}

#[test]
fn churn_acceptance_twenty_vehicles_ten_percent_loss() {
    churn_acceptance(1);
}

#[test]
fn churn_acceptance_two_shards() {
    churn_acceptance(2);
}

#[test]
fn churn_acceptance_eight_shards() {
    churn_acceptance(8);
}
