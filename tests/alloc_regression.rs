//! Allocation-regression harness for the federation hot path.
//!
//! PR 4 made the steady-state transport and tick paths allocation-free:
//! interned endpoint slots, shared [`Payload`] buffers, swap-drained scratch
//! queues and `Arc<str>` runnable activations.  This test pins that down
//! with a counting global allocator, so a stray `clone()`/`collect()` on the
//! hot path fails CI instead of silently re-inflating the tick.
//!
//! All levels are asserted from a single `#[test]`: the counting allocator
//! is process-global, and a second test thread (or the libtest harness
//! reporting another test's result) would pollute the measurement window.
//!
//! * **Transport path** — a warm `send → step → drain_into` round on the
//!   hub performs exactly zero allocations (payload sharing means the only
//!   allocation of a message's life is its original encoding).
//! * **Fleet tick** — a management-quiescent 10-vehicle fleet with the
//!   telemetry app live on every worker ECU allocates nothing on the ticks
//!   where its built-in periodic sensors are idle.  Sensor broadcast ticks
//!   still allocate (value codec + frame segmentation), which bounds how
//!   many of a window's ticks may touch the allocator at all.
//! * **Compiled VM slot** — a warm [`CompiledVm`] executing an arith-heavy
//!   loop (fused superinstructions on the fast plane) runs whole slots
//!   without allocating: pre-decoded ops, pre-resolved constants and a
//!   steady-state stack leave nothing to allocate per instruction.

use dynar::fes::transport::{TransportConfig, TransportHub};
use dynar::foundation::payload::Payload;
use dynar::foundation::time::Tick;
use dynar::foundation::value::Value;
use dynar::sim::scenario::fleet::{FleetScenario, SENSOR_PERIOD};
use dynar::vm::{assemble, Budget, CompiledVm, VmStatus};
use dynar_bench::CountingAllocator;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn warm_transport_round_is_allocation_free() {
    let mut hub = TransportHub::new(TransportConfig::default());
    hub.register("server");
    hub.register("vehicle-0");
    let payload = Payload::from(vec![7u8; 64]);
    let mut inbox = Vec::new();

    // Warm-up: grow the in-flight queue, mailbox deque and drain buffer.
    for t in 1..=32u64 {
        hub.send("server", "vehicle-0", payload.clone()).unwrap();
        hub.step(Tick::new(t));
        hub.drain_into("vehicle-0", &mut inbox);
        inbox.clear();
    }

    let (allocations, ()) = CountingAllocator::count(|| {
        for t in 33..=64u64 {
            hub.send("server", "vehicle-0", payload.clone()).unwrap();
            hub.step(Tick::new(t));
            hub.drain_into("vehicle-0", &mut inbox);
            inbox.clear();
        }
    });
    assert_eq!(
        allocations, 0,
        "32 warm send/step/drain rounds must not allocate"
    );
    assert!(hub.stats().is_conserved());
}

fn quiescent_fleet_tick_is_allocation_free() {
    let mut scenario = FleetScenario::build(10).expect("fleet builds");
    // The strong version of the claim: even with the telemetry app live on
    // every worker ECU (plug-in VMs scheduled each tick), a management-
    // quiescent tick touches the allocator only where the built-in speed
    // sensor's broadcast crosses the value codec.
    scenario.install_telemetry(5).expect("install waves");
    // Warm every per-tick buffer: scratch queues, mailboxes, port buffers.
    scenario.fleet.run(256).expect("warm-up");

    let periods = 4usize;
    let window = periods * SENSOR_PERIOD as usize;
    let polls_before = scenario.fleet.stats().downlink_polls;
    let mut per_tick = Vec::with_capacity(window);
    for _ in 0..window {
        let (allocations, result) = CountingAllocator::count(|| scenario.fleet.step());
        result.expect("fleet step");
        per_tick.push(allocations);
    }

    // The dirty-set downlink sweep: a management-quiescent tick must visit
    // zero vehicles (O(active), not O(V)) — the whole window's sweep work is
    // a constant per-shard check.
    let polls = scenario.fleet.stats().downlink_polls - polls_before;
    assert_eq!(
        polls, 0,
        "quiescent ticks must not visit any vehicle in the downlink sweep"
    );

    // The sensor fires every SENSOR_PERIOD ticks; its broadcast allocates on
    // exactly two ticks per period (codec encode onto the bus, then
    // reassemble + decode at delivery).  Every other tick — transport poll,
    // server tick, kernel dispatch, plug-in VM slots — must be completely
    // allocation-free.
    let zero_ticks = per_tick.iter().filter(|&&count| count == 0).count();
    let expected_zero = window - 2 * periods;
    assert!(
        zero_ticks >= expected_zero,
        "expected at least {expected_zero}/{window} allocation-free ticks in a quiescent \
         fleet, got {zero_ticks} (per-tick allocation counts: {per_tick:?})"
    );
}

/// A [`PortHost`] whose every operation is allocation-free: integer reads,
/// counted writes, dropped logs.
struct NoAllocHost {
    writes: u64,
}

impl dynar::vm::PortHost for NoAllocHost {
    fn read_port(&mut self, _slot: u32) -> dynar::foundation::error::Result<Value> {
        Ok(Value::I64(1))
    }
    fn take_port(&mut self, _slot: u32) -> dynar::foundation::error::Result<Value> {
        Ok(Value::I64(1))
    }
    fn write_port(&mut self, _slot: u32, _value: Value) -> dynar::foundation::error::Result<()> {
        self.writes += 1;
        Ok(())
    }
    fn pending(&mut self, _slot: u32) -> dynar::foundation::error::Result<usize> {
        Ok(1)
    }
    fn log(&mut self, _message: &str) {}
}

fn warm_compiled_slot_is_allocation_free() {
    // The canonical arith-heavy workload: a counter loop whose body is one
    // fused `load; push_int; add; store` superinstruction plus the back
    // jump.  One slot executes the full per-slot budget and gets preempted.
    let program = assemble(
        "hot-loop",
        r#"
            push_int 0
            store 0
        loop:
            load 0
            push_int 1
            add
            store 0
            jump loop
        "#,
    )
    .expect("assembles");
    let mut vm = CompiledVm::compile(program, Budget::new(4096)).expect("compiles");
    let mut host = NoAllocHost { writes: 0 };

    // Warm-up: first slots size the stack and locals to their steady state.
    for _ in 0..4 {
        vm.run_slot(&mut host).expect("warm slot");
    }

    let fused_before = vm.fusion_counters().load_arith_store;
    let (allocations, ()) = CountingAllocator::count(|| {
        for _ in 0..16 {
            vm.run_slot(&mut host).expect("hot slot");
        }
    });
    assert_eq!(
        allocations, 0,
        "16 warm compiled slots must not allocate a single time"
    );
    // Prove the measurement covered the fused fast path, not a stalled VM.
    assert!(
        vm.fusion_counters().load_arith_store > fused_before,
        "the measured slots must execute fused superinstructions"
    );
    assert_eq!(vm.status(), VmStatus::Preempted);
}

#[test]
fn steady_state_hot_paths_are_allocation_free() {
    warm_transport_round_is_allocation_free();
    quiescent_fleet_tick_is_allocation_free();
    warm_compiled_slot_is_allocation_free();
}
