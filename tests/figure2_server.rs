//! Figure 2 — the trusted server: user setup, uploads, deployment with
//! compatibility checks, acknowledgement tracking, uninstallation and
//! restore, exercised through the public API of the umbrella crate.

use dynar::core::context::LinkTarget;
use dynar::core::message::{Ack, AckStatus, ManagementMessage};
use dynar::foundation::error::DynarError;
use dynar::foundation::ids::{
    AppId, EcuId, PluginId, PluginPortId, UserId, VehicleId, VirtualPortId,
};
use dynar::server::model::{
    HwConf, PluginSwcDecl, SystemSwConf, VirtualPortDecl, VirtualPortKindDecl,
};
use dynar::server::server::{DeploymentStatus, TrustedServer};
use dynar::sim::scenario::remote_car::remote_control_app;

fn model_car_system() -> SystemSwConf {
    SystemSwConf::new("model-car")
        .with_swc(PluginSwcDecl {
            ecu: EcuId::new(1),
            swc_name: "ecm-swc".into(),
            is_ecm: true,
            virtual_ports: vec![VirtualPortDecl {
                id: VirtualPortId::new(0),
                name: "PluginData".into(),
                kind: VirtualPortKindDecl::TypeII {
                    peer: EcuId::new(2),
                },
            }],
        })
        .with_swc(PluginSwcDecl {
            ecu: EcuId::new(2),
            swc_name: "plugin-swc-2".into(),
            is_ecm: false,
            virtual_ports: vec![
                VirtualPortDecl {
                    id: VirtualPortId::new(3),
                    name: "PluginDataIn".into(),
                    kind: VirtualPortKindDecl::TypeII {
                        peer: EcuId::new(1),
                    },
                },
                VirtualPortDecl {
                    id: VirtualPortId::new(4),
                    name: "WheelsReq".into(),
                    kind: VirtualPortKindDecl::TypeIII,
                },
                VirtualPortDecl {
                    id: VirtualPortId::new(5),
                    name: "SpeedReq".into(),
                    kind: VirtualPortKindDecl::TypeIII,
                },
            ],
        })
}

fn setup() -> (TrustedServer, UserId, VehicleId) {
    let mut server = TrustedServer::new();
    let user = UserId::new("alice");
    let vehicle = VehicleId::new("VIN-1");
    server.create_user(user.clone()).unwrap();
    server
        .register_vehicle(
            vehicle.clone(),
            HwConf::new()
                .with_ecu(EcuId::new(1), 512)
                .with_ecu(EcuId::new(2), 512),
            model_car_system(),
        )
        .unwrap();
    server.bind_vehicle(&user, &vehicle).unwrap();
    server.upload_app(remote_control_app().unwrap()).unwrap();
    (server, user, vehicle)
}

fn installed_ack(plugin: &str, ecu: u16) -> Vec<u8> {
    ManagementMessage::Ack(Ack {
        plugin: PluginId::new(plugin),
        app: AppId::new("remote-control"),
        ecu: EcuId::new(ecu),
        status: AckStatus::Installed,
    })
    .to_bytes()
}

#[test]
fn full_deployment_cycle_matches_section_3_2() {
    let (mut server, user, vehicle) = setup();
    let app = AppId::new("remote-control");

    // Deployment pushes one package per plug-in, addressed per ECU.
    let pushed = server.deploy(&user, &vehicle, &app).unwrap();
    assert_eq!(pushed, 2);
    let downlink = server.poll_downlink(&vehicle);
    assert_eq!(downlink.len(), 2);

    // Until the acks arrive the app is pending, afterwards installed.
    assert!(matches!(
        server.deployment_status(&vehicle, &app),
        DeploymentStatus::Pending { .. }
    ));
    server
        .process_uplink(&vehicle, &installed_ack("COM", 1))
        .unwrap();
    server
        .process_uplink(&vehicle, &installed_ack("OP", 2))
        .unwrap();
    assert_eq!(
        server.deployment_status(&vehicle, &app),
        DeploymentStatus::Installed
    );

    // The restore operation re-pushes only the plug-ins of the replaced ECU.
    assert_eq!(server.restore(&vehicle, EcuId::new(2)).unwrap(), 1);

    // Uninstallation pushes one message per plug-in.
    assert_eq!(server.uninstall(&user, &vehicle, &app).unwrap(), 2);
}

#[test]
fn generated_contexts_match_the_paper_example() {
    let (server, _user, vehicle) = setup();
    let packages = server
        .plan_deployment(&vehicle, &AppId::new("remote-control"))
        .unwrap();
    let com = &packages[0].1;
    let op = &packages[1].1;

    // COM: {P0-, P1-, P2-V0.P0, P3-V0.P1} plus the phone ECC (§4).
    assert_eq!(
        com.context.plc.target_of(PluginPortId::new(0)),
        LinkTarget::Direct
    );
    assert_eq!(
        com.context.plc.target_of(PluginPortId::new(1)),
        LinkTarget::Direct
    );
    assert_eq!(
        com.context.plc.target_of(PluginPortId::new(2)),
        LinkTarget::RemotePluginPort {
            via: VirtualPortId::new(0),
            remote: PluginPortId::new(0)
        }
    );
    assert_eq!(
        com.context.plc.target_of(PluginPortId::new(3)),
        LinkTarget::RemotePluginPort {
            via: VirtualPortId::new(0),
            remote: PluginPortId::new(1)
        }
    );
    let ecc = com.context.ecc.as_ref().unwrap();
    assert_eq!(ecc.routes().len(), 2);
    assert!(ecc.route_for("Wheels").is_some());
    assert!(ecc.route_for("Speed").is_some());

    // OP: {P2-V4, P3-V5}, no ECC.
    assert_eq!(
        op.context.plc.target_of(PluginPortId::new(2)),
        LinkTarget::VirtualPort(VirtualPortId::new(4))
    );
    assert_eq!(
        op.context.plc.target_of(PluginPortId::new(3)),
        LinkTarget::VirtualPort(VirtualPortId::new(5))
    );
    assert!(op.context.ecc.is_none());
}

#[test]
fn incompatible_and_unbound_vehicles_are_rejected() {
    let (mut server, user, _vehicle) = setup();

    let truck = VehicleId::new("VIN-TRUCK");
    server
        .register_vehicle(
            truck.clone(),
            HwConf::new().with_ecu(EcuId::new(1), 64),
            SystemSwConf::new("truck"),
        )
        .unwrap();

    // Not bound to the user yet.
    assert!(matches!(
        server
            .deploy(&user, &truck, &AppId::new("remote-control"))
            .unwrap_err(),
        DynarError::NotFound { .. }
    ));

    // Bound but incompatible (no SW conf for the truck model).
    server.bind_vehicle(&user, &truck).unwrap();
    let err = server
        .deploy(&user, &truck, &AppId::new("remote-control"))
        .unwrap_err();
    assert!(err.is_deployment_rejection());
}
