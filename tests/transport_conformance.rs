//! Transport conformance suite: the behavioural contract every
//! [`Transport`] backend must honour, run against both the deterministic
//! [`TransportHub`] and the socket-backed [`UdpTransport`].
//!
//! The protocol layers above (ECM gateways, the trusted server, the actor
//! runtime) are written against the trait, so anything they rely on must be
//! pinned here rather than in backend-specific tests:
//!
//! * registration is idempotent, unregistration reports membership, and a
//!   send towards an unregistered destination fails loudly;
//! * per-link FIFO — on a fault-free link a later message never overtakes
//!   an earlier one (the ECM's sequence-number plane assumes this for the
//!   common case and only tolerates reordering as a *fault*);
//! * conservation — every accepted message is eventually delivered, lost,
//!   dropped or in flight; nothing disappears silently;
//! * unregistering mid-flight converts in-flight traffic into `dropped`
//!   plus dropped-destination feedback (how the server learns a vehicle
//!   vanished);
//! * re-registration restores a working mailbox.
//!
//! The UDP variants drive real loopback sockets, so they are `#[ignore]`d
//! out of the default tier-1 run and executed by the dedicated socket/actor
//! CI step (single-threaded, generous timeout).
//!
//! [`Transport`]: dynar::fes::Transport
//! [`TransportHub`]: dynar::fes::TransportHub
//! [`UdpTransport`]: dynar::fes::UdpTransport

use std::time::Duration;

use dynar::fes::{Transport, TransportConfig, TransportHub, UdpConfig, UdpTransport};
use dynar::foundation::payload::Payload;
use dynar::foundation::time::Tick;

/// Steps the transport until nothing is in flight.  `pause` separates the
/// tick-driven hub (zero pause, each step advances simulated time) from the
/// socket backend (a short real-time pause lets loopback datagrams land).
fn settle(transport: &mut dyn Transport, now: &mut u64, pause: Duration) {
    for _ in 0..500 {
        *now += 1;
        transport.step(Tick::new(*now));
        if transport.stats().in_flight == 0 {
            return;
        }
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
    }
    panic!("transport did not settle: {:?}", transport.stats());
}

/// One numbered payload, recognisable after the round trip.
fn numbered(i: u64) -> Payload {
    i.to_le_bytes().to_vec().into()
}

fn registration_contract(transport: &mut dyn Transport) {
    transport.register("alpha");
    transport.register("alpha"); // idempotent, not a duplicate error
    transport.register("beta");
    assert!(transport.is_registered("alpha"));
    assert!(transport.is_registered("beta"));
    assert!(!transport.is_registered("gamma"));

    transport
        .send("alpha", "gamma", numbered(0))
        .expect_err("sending towards an unregistered destination must fail");
    transport
        .send("alpha", "beta", numbered(1))
        .expect("a registered pair must accept traffic");

    assert!(transport.unregister("beta"), "beta was a member");
    assert!(
        !transport.unregister("beta"),
        "second unregister is a no-op"
    );
    assert!(!transport.is_registered("beta"));
    assert!(!transport.unregister("gamma"), "never-registered name");
}

fn per_link_fifo_contract(transport: &mut dyn Transport, now: &mut u64, pause: Duration) {
    transport.register("sender");
    transport.register("receiver");
    const COUNT: u64 = 32;
    for i in 0..COUNT {
        transport
            .send("sender", "receiver", numbered(i))
            .expect("fault-free send");
    }
    settle(transport, now, pause);

    let mut inbox = Vec::new();
    transport.drain_into("receiver", &mut inbox);
    assert_eq!(inbox.len() as u64, COUNT, "all messages arrive");
    for (i, (from, payload)) in inbox.iter().enumerate() {
        assert_eq!(from.as_ref(), "sender");
        assert_eq!(
            payload.as_slice(),
            (i as u64).to_le_bytes(),
            "on a fault-free link, arrival order is send order"
        );
    }
    assert_eq!(
        transport.pending_for("receiver"),
        0,
        "drain empties the mailbox"
    );
}

fn conservation_contract(transport: &mut dyn Transport, now: &mut u64, pause: Duration) {
    for name in ["a", "b", "c"] {
        transport.register(name);
    }
    let mut sent = 0u64;
    for round in 0..4u64 {
        for (from, to) in [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")] {
            transport.send(from, to, numbered(round)).expect("send");
            sent += 1;
        }
        let stats = transport.stats();
        assert!(stats.is_conserved(), "conserved mid-traffic: {stats:?}");
    }
    settle(transport, now, pause);

    let stats = transport.stats();
    assert!(stats.is_conserved(), "conserved after settling: {stats:?}");
    assert_eq!(stats.sent, sent);
    assert_eq!(stats.lost, 0, "no loss model configured");
    assert_eq!(stats.dropped, 0, "every destination stayed registered");

    let mut inbox = Vec::new();
    let mut drained = 0u64;
    for name in ["a", "b", "c"] {
        transport.drain_into(name, &mut inbox);
        drained += inbox.len() as u64;
        inbox.clear();
    }
    assert_eq!(
        drained, stats.delivered,
        "every delivered message is drainable"
    );
}

fn unregister_feedback_contract(transport: &mut dyn Transport, now: &mut u64, pause: Duration) {
    transport.register("tower");
    transport.register("vanishing");
    for i in 0..8 {
        transport
            .send("tower", "vanishing", numbered(i))
            .expect("send");
    }
    // The messages are accepted (possibly already on the wire) — now the
    // destination disappears before anyone drains them.
    assert!(transport.unregister("vanishing"));
    settle(transport, now, pause);

    let stats = transport.stats();
    assert!(stats.is_conserved(), "conserved after drops: {stats:?}");
    assert_eq!(
        stats.dropped + stats.delivered,
        8,
        "traffic towards the unregistered endpoint is dropped (or was \
         delivered before the unregister), never lost silently: {stats:?}"
    );
    if stats.dropped > 0 {
        let fed_back = transport.take_dropped_destinations();
        assert!(
            fed_back.iter().any(|name| name.as_ref() == "vanishing"),
            "dropped-destination feedback names the dead endpoint: {fed_back:?}"
        );
    }
    assert!(
        transport.take_dropped_destinations().is_empty(),
        "feedback is take-once"
    );
}

fn reregistration_contract(transport: &mut dyn Transport, now: &mut u64, pause: Duration) {
    transport.register("base");
    transport.register("phoenix");
    transport.unregister("phoenix");
    transport.register("phoenix");
    assert!(transport.is_registered("phoenix"));

    transport
        .send("base", "phoenix", numbered(99))
        .expect("send after rebirth");
    settle(transport, now, pause);
    let mut inbox = Vec::new();
    transport.drain_into("phoenix", &mut inbox);
    assert_eq!(inbox.len(), 1, "the re-registered endpoint receives again");
    assert_eq!(inbox[0].1.as_slice(), 99u64.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Deterministic hub backend (tier-1: no sockets, no wall-clock time).
// ---------------------------------------------------------------------------

fn fresh_hub() -> TransportHub {
    TransportHub::new(TransportConfig::default())
}

#[test]
fn hub_registration() {
    registration_contract(&mut fresh_hub());
}

#[test]
fn hub_per_link_fifo() {
    per_link_fifo_contract(&mut fresh_hub(), &mut 0, Duration::ZERO);
}

#[test]
fn hub_conservation() {
    conservation_contract(&mut fresh_hub(), &mut 0, Duration::ZERO);
}

#[test]
fn hub_unregister_feedback() {
    unregister_feedback_contract(&mut fresh_hub(), &mut 0, Duration::ZERO);
}

#[test]
fn hub_reregistration() {
    reregistration_contract(&mut fresh_hub(), &mut 0, Duration::ZERO);
}

// ---------------------------------------------------------------------------
// UDP loopback backend (socket CI step: `-- --ignored --test-threads=1`).
// ---------------------------------------------------------------------------

fn fresh_udp() -> UdpTransport {
    // No induced faults: the conformance contract is about the fault-free
    // baseline; the chaos behaviour is pinned in tests/udp_federation.rs.
    UdpTransport::new(UdpConfig::default())
}

const UDP_PAUSE: Duration = Duration::from_millis(1);

#[test]
#[ignore = "binds loopback sockets; run by the dedicated socket CI step"]
fn udp_registration() {
    registration_contract(&mut fresh_udp());
}

#[test]
#[ignore = "binds loopback sockets; run by the dedicated socket CI step"]
fn udp_per_link_fifo() {
    per_link_fifo_contract(&mut fresh_udp(), &mut 0, UDP_PAUSE);
}

#[test]
#[ignore = "binds loopback sockets; run by the dedicated socket CI step"]
fn udp_conservation() {
    conservation_contract(&mut fresh_udp(), &mut 0, UDP_PAUSE);
}

#[test]
#[ignore = "binds loopback sockets; run by the dedicated socket CI step"]
fn udp_unregister_feedback() {
    unregister_feedback_contract(&mut fresh_udp(), &mut 0, UDP_PAUSE);
}

#[test]
#[ignore = "binds loopback sockets; run by the dedicated socket CI step"]
fn udp_reregistration() {
    reregistration_contract(&mut fresh_udp(), &mut 0, UDP_PAUSE);
}
