//! Negative integration tests: malformed installations, over-budget plug-in
//! programs and rejected deployments must surface as typed [`DynarError`]
//! variants (and fault-isolated plug-in states), never as panics.

use dynar::core::context::{InstallationContext, LinkTarget, PortInitContext, PortLinkContext};
use dynar::core::lifecycle::PluginState;
use dynar::core::message::InstallationPackage;
use dynar::core::pirte::Pirte;
use dynar::core::plugin::PluginPortDirection;
use dynar::core::swc::PluginSwcConfig;
use dynar::core::virtual_port::{PortDataDirection, PortKind, VirtualPortSpec};
use dynar::foundation::error::DynarError;
use dynar::foundation::ids::{
    AppId, EcuId, PluginId, PluginPortId, UserId, VehicleId, VirtualPortId,
};
use dynar::server::model::{
    HwConf, PluginSwcDecl, SystemSwConf, VirtualPortDecl, VirtualPortKindDecl,
};
use dynar::server::server::TrustedServer;
use dynar::sim::scenario::remote_car::remote_control_app;
use dynar::vm::assembler::assemble;
use dynar::vm::budget::Budget;

fn host_config() -> PluginSwcConfig {
    PluginSwcConfig::new("plugin-swc").with_virtual_port(VirtualPortSpec::new(
        VirtualPortId::new(0),
        "Out",
        PortKind::TypeIII,
        PortDataDirection::ToSystem,
        "swc_out",
    ))
}

fn idle_binary() -> Vec<u8> {
    assemble("idle", "yield\nhalt").unwrap().to_bytes()
}

fn package(plugin: &str, context: InstallationContext) -> InstallationPackage {
    InstallationPackage::new(
        PluginId::new(plugin),
        AppId::new("test-app"),
        idle_binary(),
        context,
    )
}

// ---------------------------------------------------------------------------
// PIRTE installation failures
// ---------------------------------------------------------------------------

#[test]
fn install_rejects_links_to_undeclared_virtual_ports() {
    let mut pirte = Pirte::new(EcuId::new(1), host_config());
    // The PLC references virtual port 7, but the static API only declares 0.
    let context = InstallationContext::new(
        PortInitContext::new().with_port(
            "out",
            PluginPortId::new(0),
            PluginPortDirection::Provided,
        ),
        PortLinkContext::new().with_link(
            PluginPortId::new(0),
            LinkTarget::VirtualPort(VirtualPortId::new(7)),
        ),
    );
    let err = pirte.install(package("bad-link", context)).unwrap_err();
    assert!(
        matches!(
            err,
            DynarError::NotFound {
                kind: "virtual port",
                ..
            }
        ),
        "expected a virtual-port NotFound, got {err:?}"
    );
    assert_eq!(pirte.plugin_count(), 0, "nothing may be half-installed");
    assert_eq!(pirte.stats().rejected_operations, 1);
    assert_eq!(pirte.stats().installs, 0);
}

#[test]
fn install_rejects_duplicate_plugins_and_reused_port_ids() {
    let mut pirte = Pirte::new(EcuId::new(1), host_config());
    let context = |id: u32| {
        InstallationContext::new(
            PortInitContext::new().with_port(
                "out",
                PluginPortId::new(id),
                PluginPortDirection::Provided,
            ),
            PortLinkContext::new(),
        )
    };
    pirte.install(package("first", context(0))).unwrap();

    // Same plug-in id again.
    let err = pirte.install(package("first", context(1))).unwrap_err();
    assert!(
        matches!(
            err,
            DynarError::Duplicate {
                kind: "plug-in",
                ..
            }
        ),
        "expected duplicate plug-in, got {err:?}"
    );

    // Fresh plug-in id, but a port id the first installation already owns —
    // the SW-C-scope uniqueness the server's PIC generation must respect.
    let err = pirte.install(package("second", context(0))).unwrap_err();
    assert!(
        matches!(
            err,
            DynarError::Duplicate {
                kind: "plug-in port id",
                ..
            }
        ),
        "expected duplicate port id, got {err:?}"
    );

    assert_eq!(pirte.plugin_count(), 1);
    assert_eq!(pirte.stats().rejected_operations, 2);
}

#[test]
fn install_rejects_garbage_binaries_and_inconsistent_contexts() {
    let mut pirte = Pirte::new(EcuId::new(1), host_config());

    // A binary that is not in the portable VM format.
    let garbage = InstallationPackage::new(
        PluginId::new("garbage"),
        AppId::new("test-app"),
        vec![0xDE, 0xAD, 0xBE, 0xEF],
        InstallationContext::new(PortInitContext::new(), PortLinkContext::new()),
    );
    let err = pirte.install(garbage).unwrap_err();
    assert!(
        matches!(err, DynarError::ProtocolViolation(_)),
        "expected a protocol violation for a malformed binary, got {err:?}"
    );

    // A PIC declaring the same port name twice (mismatched context).
    let inconsistent = InstallationContext::new(
        PortInitContext::new()
            .with_port("dup", PluginPortId::new(0), PluginPortDirection::Required)
            .with_port("dup", PluginPortId::new(1), PluginPortDirection::Required),
        PortLinkContext::new(),
    );
    let err = pirte
        .install(package("inconsistent", inconsistent))
        .unwrap_err();
    assert!(
        matches!(err, DynarError::InvalidConfiguration(_)),
        "expected an invalid-configuration error, got {err:?}"
    );

    // A PLC linking one plug-in port twice.
    let double_link = InstallationContext::new(
        PortInitContext::new().with_port(
            "out",
            PluginPortId::new(0),
            PluginPortDirection::Provided,
        ),
        PortLinkContext::new()
            .with_link(
                PluginPortId::new(0),
                LinkTarget::VirtualPort(VirtualPortId::new(0)),
            )
            .with_link(PluginPortId::new(0), LinkTarget::Direct),
    );
    let err = pirte
        .install(package("double-link", double_link))
        .unwrap_err();
    assert!(
        matches!(err, DynarError::InvalidConfiguration(_)),
        "expected an invalid-configuration error, got {err:?}"
    );

    assert_eq!(pirte.plugin_count(), 0);
}

// ---------------------------------------------------------------------------
// Over-budget plug-in programs
// ---------------------------------------------------------------------------

#[test]
fn over_budget_program_faults_in_isolation_instead_of_panicking() {
    // A stack budget of two cannot survive three consecutive pushes.
    let config = host_config().with_plugin_budget(Budget::default().with_max_stack(2));
    let mut pirte = Pirte::new(EcuId::new(1), config);
    let binary = assemble(
        "hog",
        "push_int 1\npush_int 2\npush_int 3\npush_int 4\nhalt",
    )
    .unwrap()
    .to_bytes();
    let context = InstallationContext::new(PortInitContext::new(), PortLinkContext::new());
    pirte
        .install(InstallationPackage::new(
            PluginId::new("hog"),
            AppId::new("test-app"),
            binary,
            context,
        ))
        .unwrap();

    pirte.run_plugins();
    let stats = pirte.stats();
    assert_eq!(stats.plugin_faults, 1, "the budget violation is a fault");
    assert_eq!(
        pirte.plugin(&PluginId::new("hog")).unwrap().state(),
        PluginState::Failed,
        "the offending plug-in is quarantined"
    );

    // The failed plug-in is never scheduled again; the PIRTE stays usable.
    pirte.run_plugins();
    assert_eq!(pirte.stats().plugin_faults, 1, "no repeat faults");
    assert_eq!(
        pirte.stats().slots_granted,
        1,
        "failed plug-ins get no slots"
    );
}

#[test]
fn stack_budget_violation_is_a_typed_budget_error() {
    use dynar::foundation::value::Value;
    use dynar::vm::interpreter::{PortHost, Vm};

    struct NoPorts;
    impl PortHost for NoPorts {
        fn read_port(&mut self, _: u32) -> dynar::foundation::error::Result<Value> {
            Ok(Value::Void)
        }
        fn take_port(&mut self, _: u32) -> dynar::foundation::error::Result<Value> {
            Ok(Value::Void)
        }
        fn write_port(&mut self, _: u32, _: Value) -> dynar::foundation::error::Result<()> {
            Ok(())
        }
        fn pending(&mut self, _: u32) -> dynar::foundation::error::Result<usize> {
            Ok(0)
        }
        fn log(&mut self, _: &str) {}
    }

    let program = assemble("hog", "push_int 1\npush_int 2\npush_int 3\nhalt").unwrap();
    let mut vm = Vm::new(program, Budget::default().with_max_stack(2));
    let err = vm.run_slot(&mut NoPorts).unwrap_err();
    assert!(
        matches!(err, DynarError::BudgetExhausted { what: "stack", .. }),
        "expected a stack budget exhaustion, got {err:?}"
    );
}

// ---------------------------------------------------------------------------
// Trusted-server deployment rejections
// ---------------------------------------------------------------------------

fn single_ecu_system() -> SystemSwConf {
    SystemSwConf::new("model-car").with_swc(PluginSwcDecl {
        ecu: EcuId::new(1),
        swc_name: "ecm-swc".into(),
        is_ecm: true,
        virtual_ports: vec![VirtualPortDecl {
            id: VirtualPortId::new(0),
            name: "PluginData".into(),
            kind: VirtualPortKindDecl::TypeII {
                peer: EcuId::new(2),
            },
        }],
    })
}

/// The full model-car system software configuration, matching what the
/// remote-control app's deployment description expects.
fn model_car_system() -> SystemSwConf {
    single_ecu_system().with_swc(PluginSwcDecl {
        ecu: EcuId::new(2),
        swc_name: "plugin-swc-2".into(),
        is_ecm: false,
        virtual_ports: vec![
            VirtualPortDecl {
                id: VirtualPortId::new(3),
                name: "PluginDataIn".into(),
                kind: VirtualPortKindDecl::TypeII {
                    peer: EcuId::new(1),
                },
            },
            VirtualPortDecl {
                id: VirtualPortId::new(4),
                name: "WheelsReq".into(),
                kind: VirtualPortKindDecl::TypeIII,
            },
            VirtualPortDecl {
                id: VirtualPortId::new(5),
                name: "SpeedReq".into(),
                kind: VirtualPortKindDecl::TypeIII,
            },
        ],
    })
}

#[test]
fn server_rejects_deployments_onto_missing_hardware() {
    let mut server = TrustedServer::new();
    let user = UserId::new("alice");
    let vehicle = VehicleId::new("VIN-TINY-1");
    server.create_user(user.clone()).unwrap();
    // Only one ECU: the remote-control app also needs ECU 2.
    server
        .register_vehicle(
            vehicle.clone(),
            HwConf::new().with_ecu(EcuId::new(1), 512),
            single_ecu_system(),
        )
        .unwrap();
    server.bind_vehicle(&user, &vehicle).unwrap();
    server.upload_app(remote_control_app().unwrap()).unwrap();

    let err = server
        .deploy(&user, &vehicle, &AppId::new("remote-control"))
        .unwrap_err();
    assert!(
        matches!(err, DynarError::Incompatible(_)),
        "expected an incompatibility rejection, got {err:?}"
    );
    assert!(err.is_deployment_rejection());
    assert!(server.installed_apps(&vehicle).is_empty());
}

#[test]
fn server_rejects_unknown_apps_and_missing_dependencies() {
    let mut server = TrustedServer::new();
    let user = UserId::new("alice");
    let vehicle = VehicleId::new("VIN-MODEL-CAR-1");
    server.create_user(user.clone()).unwrap();
    server
        .register_vehicle(
            vehicle.clone(),
            HwConf::new()
                .with_ecu(EcuId::new(1), 512)
                .with_ecu(EcuId::new(2), 512),
            model_car_system(),
        )
        .unwrap();
    server.bind_vehicle(&user, &vehicle).unwrap();

    // Unknown application.
    let err = server
        .deploy(&user, &vehicle, &AppId::new("no-such-app"))
        .unwrap_err();
    assert!(
        matches!(err, DynarError::NotFound { kind: "app", .. }),
        "expected app NotFound, got {err:?}"
    );

    // An app that requires another app that is not installed.
    let mut needy = remote_control_app().unwrap();
    needy.id = AppId::new("needy");
    let needy = needy.with_dependency(AppId::new("base-services"));
    server.upload_app(needy).unwrap();
    let err = server
        .deploy(&user, &vehicle, &AppId::new("needy"))
        .unwrap_err();
    assert!(
        matches!(err, DynarError::MissingDependency { .. }),
        "expected a missing dependency, got {err:?}"
    );
    assert!(err.is_deployment_rejection());
}

#[test]
fn server_rejects_deployments_by_non_owners() {
    let mut server = TrustedServer::new();
    let owner = UserId::new("alice");
    let stranger = UserId::new("mallory");
    let vehicle = VehicleId::new("VIN-MODEL-CAR-1");
    server.create_user(owner.clone()).unwrap();
    server.create_user(stranger.clone()).unwrap();
    server
        .register_vehicle(
            vehicle.clone(),
            HwConf::new()
                .with_ecu(EcuId::new(1), 512)
                .with_ecu(EcuId::new(2), 512),
            single_ecu_system(),
        )
        .unwrap();
    server.bind_vehicle(&owner, &vehicle).unwrap();
    server.upload_app(remote_control_app().unwrap()).unwrap();

    let err = server
        .deploy(&stranger, &vehicle, &AppId::new("remote-control"))
        .unwrap_err();
    assert!(
        matches!(err, DynarError::NotFound { .. }),
        "a non-owner must not learn more than 'not found', got {err:?}"
    );
}
