//! Sharded-vs-serial equivalence, pinned for CI: the same seeded campaign
//! run with 1, 2 and 8 server shards must end in **byte-for-byte identical**
//! server state.
//!
//! This is the contract that makes the parallel fleet tick trustworthy: the
//! shard fan-out ([`dynar::server::server::ShardHandle`] + per-shard hubs +
//! deterministic journal merge) is a pure execution strategy — it must never
//! leak into observable state.  Three layers are compared against the serial
//! baseline:
//!
//! * the durability snapshot (`snapshot_bytes`, globally sorted and
//!   deliberately shard-agnostic),
//! * the operation ledger (commutative event sums folded per shard),
//! * the fleet- and transport-level counters (per-link fault/jitter streams
//!   are keyed by endpoint names and the pinned seed, not by hub identity).
//!
//! A second test pins the durability half under parallelism: a journaled
//! campaign run at 2 and 8 shards replays byte-identically — including a
//! mid-campaign crash + recovery — and the merged journal is itself
//! shard-agnostic (a serial replay of a parallel journal converges on the
//! same bytes).

use dynar::server::{Ledger, TrustedServer};
use dynar::sim::scenario::chaos::{ChaosConfig, ChaosScenario};
use dynar::sim::scenario::restart::{RestartConfig, RestartScenario};
use dynar::sim::FleetStats;

/// One full chaos campaign (10 % loss, jitter, mid-wave partition) at the
/// given shard count, returning everything that must match across counts.
fn chaos_campaign(shards: usize) -> (Vec<u8>, Ledger, FleetStats) {
    let mut scenario = ChaosScenario::build_with(ChaosConfig {
        shards,
        ..ChaosConfig::default()
    })
    .expect("chaos scenario builds");
    let report = scenario.run().expect("chaos campaign converges");
    assert!(report.transport.is_conserved(), "{report:?}");
    (
        scenario.inner.fleet.server.snapshot_bytes(),
        scenario.inner.fleet.server.ledger(),
        scenario.inner.fleet.stats().clone(),
    )
}

#[test]
fn sharded_chaos_campaign_matches_the_serial_one_byte_for_byte() {
    let (snapshot, ledger, stats) = chaos_campaign(1);
    for shards in [2, 8] {
        let (shadow_snapshot, shadow_ledger, shadow_stats) = chaos_campaign(shards);
        assert_eq!(
            snapshot, shadow_snapshot,
            "durability snapshot diverged at {shards} shards"
        );
        assert_eq!(
            ledger, shadow_ledger,
            "operation ledger diverged at {shards} shards"
        );
        assert_eq!(
            stats, shadow_stats,
            "fleet counters diverged at {shards} shards"
        );
    }
}

#[test]
fn parallel_journal_replays_byte_identically_through_a_crash() {
    for shards in [2, 8] {
        // The scenario itself asserts byte identity twice: at the crash
        // (replayed successor == crashed process) and at the end (the
        // successor's own journal replays byte-identically) — both with the
        // journal records produced by *parallel* ticks.
        let mut scenario = RestartScenario::build_with(RestartConfig {
            vehicles: 6,
            shards,
            ..RestartConfig::default()
        })
        .expect("restart scenario builds");
        let report = scenario.run().expect("restart campaign converges");
        assert_eq!(report.incarnation, 1, "{shards} shards: {report:?}");
        assert!(report.journal_bytes > 0, "{shards} shards: {report:?}");

        // The merged journal is shard-agnostic: replaying the parallel run's
        // journal into a *serial* server converges on the same bytes.
        let journal = scenario
            .inner
            .fleet
            .server
            .journal_bytes()
            .expect("successor journals")
            .to_vec();
        let serial_replay =
            TrustedServer::replay(&journal).expect("parallel journal replays serially");
        assert_eq!(
            serial_replay.snapshot_bytes(),
            scenario.inner.fleet.server.snapshot_bytes(),
            "{shards} shards: serial replay of the parallel journal diverged"
        );
    }
}
