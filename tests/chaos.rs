//! The chaos acceptance run, pinned for CI: install → update → uninstall
//! waves over a transport losing 10 % of all messages, with latency jitter
//! and a 50-tick partition cutting two vehicles off mid-install.
//!
//! What must hold (and is asserted here and inside the scenario):
//!
//! * every management operation resolves — `Installed`, `NotInstalled` or a
//!   typed failure — within the server's retry horizon; nothing hangs,
//! * no duplicate installs: retransmissions are deduplicated at the ECM
//!   gateway, so no PIRTE ever rejects (or applies) a second copy,
//! * the transport ledger balances at every tick:
//!   `sent == delivered + lost + dropped (+ in-flight)`.
//!
//! Everything is seeded (transport seed, fixed fleet topology), so a failure
//! here reproduces identically on any machine.

use dynar::foundation::value::Value;
use dynar::sim::scenario::chaos::{ChaosConfig, ChaosScenario, PartitionPlan};

/// The full pinned campaign at the given server shard count.  Shard count is
/// an execution strategy, not a behaviour: every assertion below holds with
/// the exact same numbers whether the tick is serial (1 shard) or fanned out
/// over the worker pool (2/8 shards).
fn chaos_acceptance(shards: usize) {
    let config = ChaosConfig {
        shards,
        ..ChaosConfig::default()
    };
    assert!((config.loss_probability - 0.10).abs() < f64::EPSILON);
    assert_eq!(
        config.partition,
        Some(PartitionPlan {
            start_tick: 5,
            duration_ticks: 50,
            vehicles: 2,
        })
    );

    let mut scenario = ChaosScenario::build_with(config).unwrap();
    let report = scenario.run().unwrap();

    // Convergence: every operation of every wave resolved, and at this loss
    // rate the retry budget recovers all of them.
    assert_eq!(report.installed_v1, 6, "{report:?}");
    assert_eq!(report.uninstalled, 6, "{report:?}");
    assert_eq!(report.installed_v2, 6, "{report:?}");
    assert_eq!(report.retry_failures, 0, "{report:?}");

    // The chaos was real: messages were lost and retransmissions happened
    // (more downlink pushes than the 3 packages × 6 vehicles × 2 installs +
    // 3 × 6 uninstalls = 54 a lossless run needs).
    assert!(report.transport.lost > 0, "{report:?}");
    let fleet_stats = scenario.inner.fleet.stats();
    assert!(
        fleet_stats.downlink_messages > 54,
        "retransmissions must show up in the downlink count: {fleet_stats:?}"
    );

    // Conservation at quiescence (held at every tick inside the run).
    let t = report.transport;
    assert_eq!(t.sent, t.delivered + t.lost + t.dropped + t.in_flight);

    // The fleet is alive after the campaign: sensor chains still actuate
    // with the v2 gain on every vehicle.
    scenario.inner.fleet.run(40).unwrap();
    for handle in scenario.inner.handles().to_vec() {
        for (worker, _, _) in &handle.workers {
            let actuated = scenario.inner.actuator_value(&handle.id, *worker).unwrap();
            let Value::I64(v) = actuated else {
                panic!("{}/{worker}: no actuation, got {actuated:?}", handle.id);
            };
            assert!(
                v > 0,
                "{}/{worker}: signal chain dead after chaos",
                handle.id
            );
            assert_eq!(
                v % dynar::sim::scenario::fleet::GAIN_V2,
                0,
                "{}/{worker}: v2 gain applied",
                handle.id
            );
        }
    }
    scenario.verify_no_duplicates().unwrap();
}

#[test]
fn chaos_acceptance_ten_percent_loss_fifty_tick_partition() {
    chaos_acceptance(1);
}

#[test]
fn chaos_acceptance_two_shards() {
    chaos_acceptance(2);
}

#[test]
fn chaos_acceptance_eight_shards() {
    chaos_acceptance(8);
}
