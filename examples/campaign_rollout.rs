//! Campaign rollout: a staged fleet-wide update driven by the trusted
//! server's campaign plane — and the same plane auto-aborting a bad version.
//!
//! Act 1 rolls the v2 telemetry app across a 30-vehicle fleet behind a
//! 2-vehicle canary and 25 % / 50 % / 100 % ramp waves: each wave must be
//! fully acknowledged and soaked before the health gate opens the next one.
//! Act 2 then attempts a version whose plug-in binaries no PIRTE can parse:
//! every canary install fails vehicle-side, the abort gate trips before any
//! ramp wave opens, and the campaign rewrites every exposed vehicle's
//! desired manifest back to its recorded last-good set — ordinary
//! reconciliation reinstalls v2, and the fleet ends exactly where it stood.
//!
//! ```console
//! $ cargo run --release --example campaign_rollout
//! ```

use dynar::server::campaign::CampaignStatus;
use dynar::sim::scenario::campaign::{CampaignScenario, CampaignScenarioConfig, APP_TELEMETRY_BAD};
use dynar::sim::scenario::fleet::{APP_TELEMETRY, APP_TELEMETRY_V2};

fn main() {
    let mut scenario = CampaignScenario::build_with(CampaignScenarioConfig {
        vehicles: 30,
        canary: 2,
        ramp_percent: vec![25, 50, 100],
        min_soak_ticks: 25,
        ..CampaignScenarioConfig::default()
    })
    .expect("campaign scenario builds");

    println!("== Act 1: staged v1 -> v2 update behind canary and ramp waves ==");
    scenario.converge_on_v1().expect("fleet converges on v1");
    println!(
        "fleet of {} converged on {APP_TELEMETRY} after {} ticks",
        scenario.config().vehicles,
        scenario.inner.fleet.stats().ticks
    );

    let spec = scenario.spec("rollout-v2", APP_TELEMETRY_V2, Some(APP_TELEMETRY));
    let report = scenario.run_campaign(spec).expect("rollout converges");
    assert_eq!(report.status, CampaignStatus::Complete);
    println!(
        "campaign complete: {} exposed, {} succeeded, {} ticks total",
        report.exposed, report.succeeded, report.ticks
    );

    println!();
    println!("== Act 2: a bad version trips the canary abort gate ==");
    let spec = scenario.spec("rollout-bad", APP_TELEMETRY_BAD, Some(APP_TELEMETRY_V2));
    let report = scenario.run_campaign(spec).expect("abort converges");
    assert_eq!(report.status, CampaignStatus::Aborted);
    println!(
        "campaign aborted: {} exposed ({} failed), {} rolled back to last-good",
        report.exposed, report.failed, report.rolled_back
    );
    let ledger = scenario.inner.fleet.server.ledger();
    println!(
        "ledger: {} exposures, {} rollbacks, {} completed, {} aborted",
        ledger.campaign_exposures,
        ledger.campaign_rollbacks,
        ledger.campaigns_completed,
        ledger.campaigns_aborted
    );
    println!("every vehicle re-audited against its ECM state report and PIRTE ground truth");
}
