//! Quickstart: one ECU, one plug-in SW-C, one dynamically installed plug-in.
//!
//! Run with `cargo run --example quickstart`.

use dynar::foundation::error::DynarError;
use dynar::sim::scenario::quickstart::Quickstart;

fn main() -> Result<(), DynarError> {
    let mut system = Quickstart::build()?;
    println!("built a single-ECU system with one plug-in SW-C");
    println!(
        "installed plug-ins: {:?}",
        system.pirte.lock().plugin_states()
    );

    for sensor in [3, 10, 21] {
        system.feed_sensor(sensor)?;
        println!(
            "sensor = {sensor:>3}  ->  actuator = {}",
            system.actuator_output()?
        );
    }

    let stats = system.pirte.lock().stats();
    println!(
        "PIRTE routed {} signals in, {} signals out, over {} VM slots",
        stats.signals_in, stats.signals_out, stats.slots_granted
    );
    Ok(())
}
