//! Fleet deployment: the trusted server manages several vehicles with
//! different configurations — a compatible model car, a second car with an
//! already-installed conflicting application, and an incompatible truck —
//! and finally restores a replaced ECU.
//!
//! Run with `cargo run --example fleet_deployment`.

use dynar::core::message::{Ack, AckStatus, ManagementMessage};
use dynar::foundation::error::DynarError;
use dynar::foundation::ids::{AppId, EcuId, PluginId, UserId, VehicleId};
use dynar::server::model::{AppDefinition, HwConf, PluginArtifact, SwConf, SystemSwConf};
use dynar::server::server::TrustedServer;
use dynar::sim::scenario::remote_car::remote_control_app;

fn ack(plugin: &str, app: &str, ecu: u16) -> Vec<u8> {
    ManagementMessage::Ack(Ack {
        plugin: PluginId::new(plugin),
        app: AppId::new(app),
        ecu: EcuId::new(ecu),
        status: AckStatus::Installed,
    })
    .to_bytes()
}

fn main() -> Result<(), DynarError> {
    let mut server = TrustedServer::new();
    let fleet_manager = UserId::new("fleet-manager");
    server.create_user(fleet_manager.clone())?;

    // Vehicle 1: the model car from the paper's demonstrator.
    let car1 = VehicleId::new("VIN-CAR-1");
    server.register_vehicle(car1.clone(), model_car_hw(), model_car_system())?;
    server.bind_vehicle(&fleet_manager, &car1)?;

    // Vehicle 2: an identical car that already runs a conflicting app.
    let car2 = VehicleId::new("VIN-CAR-2");
    server.register_vehicle(car2.clone(), model_car_hw(), model_car_system())?;
    server.bind_vehicle(&fleet_manager, &car2)?;

    // Vehicle 3: a truck whose model no deployment description covers.
    let truck = VehicleId::new("VIN-TRUCK-1");
    server.register_vehicle(
        truck.clone(),
        HwConf::new().with_ecu(EcuId::new(1), 128),
        SystemSwConf::new("truck"),
    )?;
    server.bind_vehicle(&fleet_manager, &truck)?;

    // Catalogue: the remote-control app plus a conflicting manual-drive app.
    let remote_control = remote_control_app()?;
    let manual_drive = AppDefinition::new(AppId::new("manual-drive"))
        .with_conflict(remote_control.id.clone())
        .with_plugin(PluginArtifact {
            id: PluginId::new("MANUAL"),
            binary: dynar::vm::assembler::assemble("MANUAL", "yield\nhalt")?.to_bytes(),
            ports: vec![],
        })
        .with_sw_conf(
            SwConf::new("model-car").with_placement(PluginId::new("MANUAL"), EcuId::new(2)),
        );
    let remote_control_conflicting = {
        let mut app = remote_control.clone();
        app.conflicts.push(AppId::new("manual-drive"));
        app
    };
    server.upload_app(remote_control_conflicting)?;
    server.upload_app(manual_drive)?;

    // Pre-install manual-drive on car 2.
    server.deploy(&fleet_manager, &car2, &AppId::new("manual-drive"))?;
    server.process_uplink(&car2, &ack("MANUAL", "manual-drive", 2))?;

    println!("rolling out 'remote-control' across the fleet:");
    for vehicle in [&car1, &car2, &truck] {
        match server.deploy(&fleet_manager, vehicle, &AppId::new("remote-control")) {
            Ok(packages) => println!("  {vehicle}: pushed {packages} installation packages"),
            Err(err) => println!("  {vehicle}: rejected — {err}"),
        }
    }

    // Car 1 acknowledges; the app becomes installed.
    server.process_uplink(&car1, &ack("COM", "remote-control", 1))?;
    server.process_uplink(&car1, &ack("OP", "remote-control", 2))?;
    println!("car 1 installed apps: {:?}", server.installed_apps(&car1));

    // A workshop replaces ECU2 on car 1: restore re-pushes its plug-ins.
    let repushed = server.restore(&car1, EcuId::new(2))?;
    println!(
        "restore after replacing {}: {repushed} package(s) re-pushed",
        EcuId::new(2)
    );
    Ok(())
}

fn model_car_hw() -> HwConf {
    HwConf::new()
        .with_ecu(EcuId::new(1), 512)
        .with_ecu(EcuId::new(2), 512)
}

fn model_car_system() -> SystemSwConf {
    use dynar::foundation::ids::VirtualPortId;
    use dynar::server::model::{PluginSwcDecl, VirtualPortDecl, VirtualPortKindDecl};
    SystemSwConf::new("model-car")
        .with_swc(PluginSwcDecl {
            ecu: EcuId::new(1),
            swc_name: "ecm-swc".into(),
            is_ecm: true,
            virtual_ports: vec![VirtualPortDecl {
                id: VirtualPortId::new(0),
                name: "PluginData".into(),
                kind: VirtualPortKindDecl::TypeII {
                    peer: EcuId::new(2),
                },
            }],
        })
        .with_swc(PluginSwcDecl {
            ecu: EcuId::new(2),
            swc_name: "plugin-swc-2".into(),
            is_ecm: false,
            virtual_ports: vec![
                VirtualPortDecl {
                    id: VirtualPortId::new(3),
                    name: "PluginDataIn".into(),
                    kind: VirtualPortKindDecl::TypeII {
                        peer: EcuId::new(1),
                    },
                },
                VirtualPortDecl {
                    id: VirtualPortId::new(4),
                    name: "WheelsReq".into(),
                    kind: VirtualPortKindDecl::TypeIII,
                },
                VirtualPortDecl {
                    id: VirtualPortId::new(5),
                    name: "SpeedReq".into(),
                    kind: VirtualPortKindDecl::TypeIII,
                },
            ],
        })
}
