//! Fleet-scale demonstration: 50 four-ECU vehicles federated through one
//! trusted server, installed in staged waves, then updated in place while
//! the rest of the fleet keeps driving.
//!
//! The server runs **sharded** (4 shards, one transport hub each), so the
//! fleet tick fans out over the fixed worker pool — the same campaign at
//! `shards: 1` produces byte-identical server state.
//!
//! ```console
//! $ cargo run --release --example fleet_scale
//! ```

use dynar::foundation::ids::EcuId;
use dynar::foundation::value::Value;
use dynar::sim::scenario::fleet::{FleetScenario, FleetScenarioConfig, GAIN_V1, GAIN_V2};

fn main() {
    let vehicles = 50;
    let mut scenario = FleetScenario::build_with(FleetScenarioConfig {
        vehicles,
        shards: 4,
        ..FleetScenarioConfig::default()
    })
    .expect("fleet builds");
    println!(
        "built a fleet of {} vehicles x {} ECUs across {} server shards",
        scenario.fleet.len(),
        1 + scenario.workers_per_vehicle(),
        scenario.fleet.server.shard_count()
    );

    scenario
        .install_telemetry(10)
        .expect("staged install waves complete");
    println!(
        "installed telemetry in waves of 10 by tick {} ({} downlinks, {} uplinks)",
        scenario.fleet.now().as_u64(),
        scenario.fleet.stats().downlink_messages,
        scenario.fleet.stats().uplink_messages,
    );

    scenario.fleet.run(200).expect("fleet drives");
    report_actuation(&scenario, "after v1 soak");

    // Update the first half of the fleet to v2 while the rest keeps driving.
    let targets: Vec<_> = scenario
        .fleet
        .vehicle_ids()
        .iter()
        .take(vehicles / 2)
        .cloned()
        .collect();
    scenario
        .update_telemetry(&targets, 10)
        .expect("update waves complete");
    scenario.fleet.run(200).expect("fleet drives on");
    report_actuation(&scenario, "after the v2 update wave");

    println!(
        "done at tick {}: gains v1={GAIN_V1} / v2={GAIN_V2} observable above",
        scenario.fleet.now().as_u64()
    );
}

fn report_actuation(scenario: &FleetScenario, label: &str) {
    let mut sampled = 0usize;
    let mut sum = 0i64;
    for handle in scenario.handles() {
        if let Some(Value::I64(v)) = scenario.actuator_value(&handle.id, EcuId::new(2)) {
            sampled += 1;
            sum += v;
        }
    }
    println!(
        "{label}: {sampled}/{} vehicles actuating, mean actuator value {}",
        scenario.fleet.len(),
        if sampled > 0 { sum / sampled as i64 } else { 0 }
    );
}
