//! The paper's Section 4 demonstrator (Figure 3): a smart phone remotely
//! controls a two-ECU model car through the dynamically installed COM and OP
//! plug-ins.
//!
//! Run with `cargo run --example remote_control_car`.

use dynar::foundation::error::DynarError;
use dynar::sim::scenario::remote_car::RemoteCarScenario;

fn main() -> Result<(), DynarError> {
    let mut scenario = RemoteCarScenario::build()?;
    println!("vehicle registered with the trusted server; deploying the remote-control app ...");
    scenario.install_app()?;
    println!(
        "ECU1 (ECM) plug-ins: {:?}",
        scenario.ecm_pirte().lock().plugin_states()
    );
    println!(
        "ECU2 plug-ins:       {:?}",
        scenario.pirte2().lock().plugin_states()
    );

    let report = scenario.drive(500)?;
    println!("drive report after 500 ticks:");
    println!("  commands sent by the phone : {}", report.commands_sent);
    println!(
        "  commands applied by the car: {}",
        report.commands_delivered
    );
    println!(
        "  final speed                : {:.1} m/s",
        report.final_speed
    );
    println!(
        "  final wheel angle          : {:.1} deg",
        report.final_wheel_angle
    );
    println!("  odometer                   : {:.2} m", report.odometer);
    Ok(())
}
