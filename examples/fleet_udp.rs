//! Fleet over real sockets: the install/update protocol crossing actual UDP
//! loopback datagrams, with the server and every vehicle running as
//! independent threads.
//!
//! Everything above the transport is identical to the deterministic
//! examples — the same `TrustedServer`, ECM gateways and plug-in runtime —
//! but here the wire is `UdpTransport` (length-prefixed, checksummed
//! datagrams over `127.0.0.1` sockets) with induced loss and reordering,
//! and the driver is the `ActorFederation` runtime: wall-clock
//! retransmission deadlines instead of simulated ticks.
//!
//! Run with `cargo run --example fleet_udp`.

use std::time::{Duration, Instant};

use dynar::bus::network::BusConfig;
use dynar::fes::{shared_transport, UdpConfig, UdpTransport};
use dynar::foundation::error::DynarError;
use dynar::foundation::ids::{AppId, UserId, VehicleId};
use dynar::server::{DeploymentStatus, TrustedServer};
use dynar::sim::actors::ActorFederation;
use dynar::sim::scenario::fleet::{
    build_vehicle, fleet_hw, fleet_system, telemetry_app, APP_TELEMETRY, APP_TELEMETRY_V2, GAIN_V1,
    GAIN_V2,
};

const VEHICLES: usize = 4;
const WORKERS: u16 = 2;
const QUANTUM: Duration = Duration::from_millis(1);
const TIMEOUT: Duration = Duration::from_secs(60);

fn await_installed(
    federation: &ActorFederation,
    vehicles: &[VehicleId],
    app: &AppId,
    expect_installed: bool,
) -> Result<(), DynarError> {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let statuses: Vec<DeploymentStatus> = {
            let (vehicles, app) = (vehicles.to_vec(), app.clone());
            federation.with_server(move |server| {
                vehicles
                    .iter()
                    .map(|vehicle| server.deployment_status(vehicle, &app))
                    .collect()
            })
        };
        let done = statuses.iter().all(|status| {
            if expect_installed {
                matches!(status, DeploymentStatus::Installed)
            } else {
                matches!(status, DeploymentStatus::NotInstalled)
            }
        });
        if done {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(DynarError::RetryExhausted {
                operation: format!("convergence of {app} over UDP"),
                attempts: 0,
            });
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn main() -> Result<(), DynarError> {
    // A lossy, reordering wire: 8 % of datagrams vanish, 25 % are held back
    // long enough for a later one to overtake them.  The retransmission and
    // sequence-number planes have to absorb all of it.
    let transport = shared_transport(UdpTransport::new(UdpConfig {
        seed: 0xDAC_2014,
        loss_probability: 0.08,
        reorder_probability: 0.25,
    }));

    let mut server = TrustedServer::new();
    let operator = UserId::new("fleet-ops");
    server.create_user(operator.clone())?;
    server.upload_app(telemetry_app(APP_TELEMETRY, "", GAIN_V1, WORKERS)?)?;
    server.upload_app(telemetry_app(APP_TELEMETRY_V2, "2", GAIN_V2, WORKERS)?)?;

    let mut vehicle_ids = Vec::new();
    for index in 0..VEHICLES {
        let vehicle_id = VehicleId::new(format!("VIN-UDP-{index:02}"));
        server.register_vehicle(vehicle_id.clone(), fleet_hw(WORKERS), fleet_system(WORKERS))?;
        server.bind_vehicle(&operator, &vehicle_id)?;
        vehicle_ids.push(vehicle_id);
    }

    let mut federation = ActorFederation::launch(server, "server", transport, QUANTUM);
    for (index, vehicle_id) in vehicle_ids.iter().enumerate() {
        let endpoint = format!("vehicle-{index}");
        let (vehicle, _workers) = build_vehicle(
            &endpoint,
            WORKERS,
            BusConfig::default(),
            &federation.transport(),
            0,
        )?;
        federation.spawn_vehicle(vehicle_id.clone(), endpoint.clone(), vehicle);
        println!("vehicle {vehicle_id} up on its own thread as {endpoint}");
    }

    println!("installing {APP_TELEMETRY} on {VEHICLES} vehicles over UDP loopback...");
    let started = Instant::now();
    let v1 = AppId::new(APP_TELEMETRY);
    for vehicle_id in &vehicle_ids {
        let (operator, vehicle_id, v1) = (operator.clone(), vehicle_id.clone(), v1.clone());
        federation.with_server(move |server| server.deploy(&operator, &vehicle_id, &v1))?;
    }
    await_installed(&federation, &vehicle_ids, &v1, true)?;
    println!("  installed everywhere in {:?}", started.elapsed());

    let target = vehicle_ids[0].clone();
    println!("updating {target} to {APP_TELEMETRY_V2} while the rest keep running...");
    let started = Instant::now();
    {
        let (operator, target, v1) = (operator.clone(), target.clone(), v1.clone());
        federation.with_server(move |server| server.uninstall(&operator, &target, &v1))?;
    }
    await_installed(&federation, std::slice::from_ref(&target), &v1, false)?;
    let v2 = AppId::new(APP_TELEMETRY_V2);
    {
        let (operator, target, v2) = (operator.clone(), target.clone(), v2.clone());
        federation.with_server(move |server| server.deploy(&operator, &target, &v2))?;
    }
    await_installed(&federation, std::slice::from_ref(&target), &v2, true)?;
    println!("  updated in {:?}", started.elapsed());

    let transport = federation.transport();
    let outcome = federation.shutdown();
    let stats = transport.lock().stats();
    println!("wire ledger: {stats:?}");
    println!(
        "  conserved: {} | retry escalations: {}",
        stats.is_conserved(),
        outcome
            .vehicles
            .iter()
            .filter(|(_, _, error)| error.is_some())
            .count()
    );
    assert!(stats.is_conserved(), "transport ledger must balance");
    println!("all vehicles converged over a real OS network path");
    Ok(())
}
