//! Offline shim for `serde_derive`.
//!
//! The workspace only uses serde derives as markers on plain-old-data types;
//! nothing ever serializes through serde (the wire formats are hand-written
//! codecs in `dynar-foundation`).  The derives therefore expand to nothing,
//! which keeps them trivially correct for any input type, including generics
//! and `#[serde(...)]` attributes.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
