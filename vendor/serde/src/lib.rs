//! Offline shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and macro
//! namespaces so `use serde::{Serialize, Deserialize}` works for derive
//! annotations.  The traits are empty markers — the workspace's wire formats
//! are hand-written codecs and never go through serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no members in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no members in the shim).
pub trait Deserialize<'de>: Sized {}
