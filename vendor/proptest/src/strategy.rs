//! The `Strategy` trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns true (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Build a recursive strategy: `self` is the leaf, `recurse` wraps any
    /// strategy of the same value type into a deeper one, and `depth` bounds
    /// the nesting.  `desired_size` and `expected_branch_size` are accepted
    /// for upstream signature compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // At each level, half the mass stays on leaves so generated
            // structures terminate quickly.
            current = Union::new(vec![leaf.clone(), recurse(current).boxed()]).boxed();
        }
        current
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A cheaply clonable, type-erased strategy.
pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Uniform (or weighted) choice between strategies of one value type.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Uniform choice.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.len() as u64;
        Union {
            arms: arms.into_iter().map(|arm| (1, arm)).collect(),
            total_weight,
        }
    }

    /// Weighted choice.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut roll = rng.below(0, self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if roll < weight {
                return arm.generate(rng);
            }
            roll -= weight;
        }
        unreachable!("weighted roll exceeded total weight")
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + offset as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128 * span) >> 64;
                (*self.start() as i128 + offset as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
