//! Offline shim for the parts of `proptest` 1.x this workspace uses.
//!
//! It keeps the upstream call-site API — `proptest!`, `prop_oneof!`,
//! `prop_assert*!`, `Strategy` combinators, `collection::vec`, `any::<T>()`,
//! integer-range strategies and a regex-lite `&str` strategy — but generates
//! cases from a fixed-seed deterministic RNG and performs no shrinking.
//! Failures therefore reproduce exactly across runs and machines, which is
//! what the repository's CI requires.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a `proptest!`-based test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define deterministic property tests.
///
/// Mirrors the upstream grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, ys in proptest::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // With an explicit config for the whole block.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests!(($config); $($rest)*);
    };
    // Default config.
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal: expand each `fn` in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr); ) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            // Seed derived from the test name: deterministic per test,
            // decorrelated between tests.
            let seed = config.seed ^ $crate::test_runner::fnv1a(stringify!($name).as_bytes());
            let mut runner = $crate::test_runner::TestRng::seeded(seed);
            for case in 0..config.cases {
                runner.set_case(case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut runner);
                )+
                $body
            }
        }
        $crate::__proptest_tests!(($config); $($rest)*);
    };
}

/// Choose uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::Union::weighted(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
    ( $( $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Assert a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "proptest assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}
