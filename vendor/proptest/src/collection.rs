//! Collection strategies (`vec`) and the `SizeRange` they accept.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            lo: range.start,
            hi_exclusive: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange {
            lo: *range.start(),
            hi_exclusive: *range.end() + 1,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.lo, self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
