//! `any::<T>()` and the `Arbitrary` trait behind it.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical generation strategy.
pub trait Arbitrary {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix finite magnitudes across scales; avoid NaN/inf so equality
        // properties stay meaningful (callers filter further if needed).
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exponent = rng.below(0, 61) as i32 - 30;
        mantissa * (2.0f64).powi(exponent)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally wider BMP scalars.
        if rng.below(0, 4) == 0 {
            char::from_u32(rng.below(0x20, 0xD800) as u32).unwrap_or('?')
        } else {
            (rng.below(0x20, 0x7F) as u8) as char
        }
    }
}
