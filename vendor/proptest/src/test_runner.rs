//! Deterministic case runner: configuration and the generation RNG.

/// Configuration accepted by `proptest!` blocks.
///
/// Only the fields this workspace uses are modelled; construction mirrors the
/// upstream struct-update idiom (`ProptestConfig { cases: 64, ..Default::default() }`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
    /// Base RNG seed; each test XORs in a hash of its own name.
    pub seed: u64,
    /// Accepted for upstream compatibility; the shim never forks.
    pub fork: bool,
    /// Accepted for upstream compatibility; the shim has no timeouts.
    pub timeout: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            seed: 0xDAC2_0140_0000_0001,
            fork: false,
            timeout: 0,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// FNV-1a, used to derive per-test seeds from test names.
pub const fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash
}

/// The deterministic generation RNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    seed: u64,
    state: u64,
}

impl TestRng {
    /// Build from an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        TestRng { seed, state: seed }
    }

    /// Re-anchor the stream for a new test case so that case `n` is
    /// reproducible regardless of how much entropy earlier cases consumed.
    ///
    /// The anchor is passed through a full SplitMix64 finalizer rather than a
    /// linear offset: a `seed + case * GAMMA` anchor would make case `c+1`'s
    /// stream a one-step shift of case `c`'s (GAMMA is also the generator's
    /// own increment), collapsing the diversity of the generated cases.
    pub fn set_case(&mut self, case: u32) {
        let mut z = self
            .seed
            .wrapping_add(u64::from(case).wrapping_mul(0xA24B_AED4_963E_E407));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = z ^ (z >> 31);
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[low, high)`.
    pub fn below(&mut self, low: u64, high: u64) -> u64 {
        debug_assert!(low < high);
        let span = high - low;
        low + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform `usize` in `[low, high)`.
    pub fn usize_in(&mut self, low: usize, high: usize) -> usize {
        self.below(low as u64, high as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
