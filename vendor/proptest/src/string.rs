//! Regex-lite string strategies: `"[a-zA-Z0-9 ]{0,24}"` style patterns.
//!
//! Upstream proptest treats `&str` as a full regex-derived strategy; the shim
//! supports the subset the workspace's properties actually use — sequences of
//! literal characters and character classes, each optionally repeated with
//! `{n}`, `{lo,hi}`, `?`, `*` or `+` (unbounded repeats cap at 8).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    lo: usize,
    hi_inclusive: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        Some(']') => break,
                        Some('\\') => chars.next().unwrap_or('\\'),
                        Some(other) => other,
                        None => panic!("unterminated character class in {pattern:?}"),
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.peek() {
                            Some(']') | None => {
                                ranges.push((lo, lo));
                                ranges.push(('-', '-'));
                            }
                            Some(_) => {
                                let hi = chars.next().unwrap();
                                ranges.push((lo, hi));
                            }
                        }
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
            other => Atom::Literal(other),
        };
        let (lo, hi_inclusive) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repeat lower bound"),
                        hi.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let exact: usize = spec.trim().parse().expect("bad repeat count");
                        (exact, exact)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece {
            atom,
            lo,
            hi_inclusive,
        });
    }
    pieces
}

fn generate_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64).saturating_sub(*lo as u64) + 1)
                .sum();
            let mut roll = rng.below(0, total.max(1));
            for (lo, hi) in ranges {
                let span = (*hi as u64).saturating_sub(*lo as u64) + 1;
                if roll < span {
                    return char::from_u32(*lo as u32 + roll as u32).unwrap_or(*lo);
                }
                roll -= span;
            }
            ranges.first().map(|(lo, _)| *lo).unwrap_or('?')
        }
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let count = rng.usize_in(piece.lo, piece.hi_inclusive + 1);
            for _ in 0..count {
                out.push(generate_atom(&piece.atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn class_pattern_respects_alphabet_and_length() {
        let mut rng = TestRng::seeded(42);
        for _ in 0..200 {
            let s = "[a-zA-Z0-9 ]{0,24}".generate(&mut rng);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
    }

    #[test]
    fn literal_and_repeat_forms() {
        let mut rng = TestRng::seeded(7);
        let s = "ab[0-9]{3}".generate(&mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
    }
}
