//! Offline shim for the parts of `criterion` 0.5 this workspace uses.
//!
//! Benchmarks compile and run: each `Bencher::iter` call performs a warm-up,
//! then times batches until the configured measurement window is filled, and
//! prints a mean per-iteration wall-clock time.  There are no statistics,
//! plots or baselines — this exists so the bench harness stays compiling and
//! runnable without network access.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set how long to warm up before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Set the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let report = run_bench(self, &mut f);
        print_report(&id, &report);
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl IdLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.label());
        let report = run_bench(self.criterion, &mut f);
        print_report(&label, &report);
        self
    }

    /// Benchmark a closure that receives an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IdLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        let report = run_bench(self.criterion, &mut |b: &mut Bencher| f(b, input));
        print_report(&label, &report);
        self
    }

    /// Close the group (upstream flushes reports here; the shim prints eagerly).
    pub fn finish(self) {}
}

/// Benchmark identifiers: plain strings or `BenchmarkId::new(name, param)`.
pub trait IdLabel {
    /// Render the identifier for the report line.
    fn label(&self) -> String;
}

impl IdLabel for &str {
    fn label(&self) -> String {
        (*self).to_string()
    }
}

impl IdLabel for String {
    fn label(&self) -> String {
        self.clone()
    }
}

impl IdLabel for BenchmarkId {
    fn label(&self) -> String {
        self.0.clone()
    }
}

/// A parameterized benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to benchmark closures; `iter` does the timing.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
    iters: u64,
}

impl Bencher {
    /// Time `f`, repeatedly, for the configured measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates per-iteration cost to size batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));

        // Size batches so each sample is long enough to time reliably.
        let target_batch_nanos = (self.measurement_time.as_nanos()
            / self.sample_size.max(1) as u128)
            .clamp(1_000, 50_000_000);
        let batch = ((target_batch_nanos / per_iter.max(1)) as u64).max(1);

        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline && self.samples.len() < self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / batch as u32);
            self.iters += batch;
        }
        if self.samples.is_empty() {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            self.iters = 1;
        }
    }
}

struct Report {
    mean: Duration,
    min: Duration,
    max: Duration,
    iters: u64,
}

fn run_bench<F: FnMut(&mut Bencher)>(criterion: &Criterion, f: &mut F) -> Report {
    let mut bencher = Bencher {
        warm_up_time: criterion.warm_up_time,
        measurement_time: criterion.measurement_time,
        sample_size: criterion.sample_size,
        samples: Vec::new(),
        iters: 0,
    };
    f(&mut bencher);
    let (mut min, mut max, mut total) = (Duration::MAX, Duration::ZERO, Duration::ZERO);
    for sample in &bencher.samples {
        min = min.min(*sample);
        max = max.max(*sample);
        total += *sample;
    }
    let count = bencher.samples.len().max(1) as u32;
    Report {
        mean: total / count,
        min: if min == Duration::MAX {
            Duration::ZERO
        } else {
            min
        },
        max,
        iters: bencher.iters,
    }
}

fn print_report(label: &str, report: &Report) {
    println!(
        "{label:<48} time: [{:>12?} {:>12?} {:>12?}]  ({} iterations)",
        report.min, report.mean, report.max, report.iters
    );
}

/// Mirror of `criterion_group!`: defines a function running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
