//! Offline shim for the parts of `parking_lot` this workspace uses: a
//! non-poisoning [`Mutex`] and [`RwLock`] delegating to `std::sync`.

#![forbid(unsafe_code)]

pub use std::sync::MutexGuard;
pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
