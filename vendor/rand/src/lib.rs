//! Offline shim for the parts of `rand` 0.8 this workspace uses.
//!
//! [`rngs::StdRng`] is a SplitMix64 generator — not cryptographically secure,
//! but deterministic, seedable and statistically fine for the probabilistic
//! loss/error models in the bus and transport simulations.

#![forbid(unsafe_code)]

/// Core trait for random number generation.
pub trait RngCore {
    /// Return the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Return the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 high-quality bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Uniform `u64` in `[low, high)`. Panics if the range is empty.
    fn gen_range_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "gen_range_u64: empty range");
        let span = high - low;
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // simulation-sized ranges used here.
        low + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range_u64(0, 1000), b.gen_range_u64(0, 1000));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "empirical p off: {hits}");
    }
}
