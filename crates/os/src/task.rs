//! Task model: identifiers, priorities, states and static configuration.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::event::EventMask;

/// Identifier of a task within one kernel instance.
///
/// # Example
/// ```
/// use dynar_os::task::TaskId;
/// assert_eq!(TaskId::new(3).index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(u16);

impl TaskId {
    /// Creates a task identifier from its kernel-local index.
    pub fn new(index: u16) -> Self {
        TaskId(index)
    }

    /// Returns the kernel-local index.
    pub fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// A fixed task priority; larger values are more urgent, as in OSEK.
///
/// # Example
/// ```
/// use dynar_os::task::TaskPriority;
/// assert!(TaskPriority::new(10) > TaskPriority::new(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TaskPriority(u8);

impl TaskPriority {
    /// The lowest possible priority.
    pub const IDLE: TaskPriority = TaskPriority(0);

    /// Creates a priority level; larger is more urgent.
    pub fn new(level: u8) -> Self {
        TaskPriority(level)
    }

    /// Returns the numeric priority level.
    pub fn level(self) -> u8 {
        self.0
    }
}

impl fmt::Display for TaskPriority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

/// The OSEK task state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TaskState {
    /// Not activated; the task does not compete for the processor.
    #[default]
    Suspended,
    /// Activated and waiting for the processor.
    Ready,
    /// Currently dispatched.
    Running,
    /// Blocked on an event (extended tasks only).
    Waiting,
}

impl fmt::Display for TaskState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TaskState::Suspended => "suspended",
            TaskState::Ready => "ready",
            TaskState::Running => "running",
            TaskState::Waiting => "waiting",
        };
        f.write_str(name)
    }
}

/// Static configuration of one task, as it would appear in an OIL file.
///
/// # Example
/// ```
/// use dynar_os::task::{TaskConfig, TaskPriority};
///
/// let cfg = TaskConfig::new("tenms", TaskPriority::new(5))
///     .extended()
///     .with_max_activations(2);
/// assert_eq!(cfg.name(), "tenms");
/// assert!(cfg.is_extended());
/// assert_eq!(cfg.max_activations(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskConfig {
    name: String,
    priority: TaskPriority,
    extended: bool,
    max_activations: u8,
}

impl TaskConfig {
    /// Creates a basic task configuration with a single allowed activation.
    pub fn new(name: impl Into<String>, priority: TaskPriority) -> Self {
        TaskConfig {
            name: name.into(),
            priority,
            extended: false,
            max_activations: 1,
        }
    }

    /// Marks the task as an extended task, able to wait for events.
    #[must_use]
    pub fn extended(mut self) -> Self {
        self.extended = true;
        self
    }

    /// Sets the number of activation requests that may be queued.
    #[must_use]
    pub fn with_max_activations(mut self, max: u8) -> Self {
        self.max_activations = max.max(1);
        self
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task's static priority.
    pub fn priority(&self) -> TaskPriority {
        self.priority
    }

    /// Whether the task may wait for events.
    pub fn is_extended(&self) -> bool {
        self.extended
    }

    /// How many activations may be pending at once.
    pub fn max_activations(&self) -> u8 {
        self.max_activations
    }
}

/// The runtime control block the kernel keeps per task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct TaskControlBlock {
    pub(crate) config: TaskConfig,
    pub(crate) state: TaskState,
    pub(crate) pending_activations: u8,
    pub(crate) set_events: EventMask,
    pub(crate) waited_events: EventMask,
    /// Dynamic priority, raised by the priority-ceiling protocol.
    pub(crate) dynamic_priority: TaskPriority,
    pub(crate) activation_count: u64,
    pub(crate) preemption_count: u64,
}

impl TaskControlBlock {
    pub(crate) fn new(config: TaskConfig) -> Self {
        let priority = config.priority();
        TaskControlBlock {
            config,
            state: TaskState::Suspended,
            pending_activations: 0,
            set_events: EventMask::NONE,
            waited_events: EventMask::NONE,
            dynamic_priority: priority,
            activation_count: 0,
            preemption_count: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering_follows_osek() {
        assert!(TaskPriority::new(200) > TaskPriority::new(100));
        assert_eq!(TaskPriority::IDLE.level(), 0);
    }

    #[test]
    fn builder_configures_extended_tasks() {
        let cfg = TaskConfig::new("t", TaskPriority::new(1))
            .extended()
            .with_max_activations(0);
        assert!(cfg.is_extended());
        assert_eq!(cfg.max_activations(), 1, "clamped to at least one");
    }

    #[test]
    fn default_state_is_suspended() {
        assert_eq!(TaskState::default(), TaskState::Suspended);
    }

    #[test]
    fn control_block_starts_clean() {
        let tcb = TaskControlBlock::new(TaskConfig::new("t", TaskPriority::new(3)));
        assert_eq!(tcb.state, TaskState::Suspended);
        assert_eq!(tcb.pending_activations, 0);
        assert_eq!(tcb.dynamic_priority, TaskPriority::new(3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(TaskId::new(2).to_string(), "task2");
        assert_eq!(TaskPriority::new(9).to_string(), "prio9");
        assert_eq!(TaskState::Waiting.to_string(), "waiting");
    }
}
