//! OSEK events: bit masks that extended tasks can wait for.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not};

use serde::{Deserialize, Serialize};

/// A set of up to 32 events, represented as a bit mask exactly as in OSEK.
///
/// # Example
/// ```
/// use dynar_os::event::EventMask;
///
/// let rx = EventMask::bit(0);
/// let timeout = EventMask::bit(1);
/// let waited = rx | timeout;
/// assert!(waited.intersects(rx));
/// assert!(!waited.without(rx | timeout).any());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord,
)]
pub struct EventMask(u32);

impl EventMask {
    /// The empty event set.
    pub const NONE: EventMask = EventMask(0);
    /// The full event set.
    pub const ALL: EventMask = EventMask(u32::MAX);

    /// Creates a mask from its raw bit pattern.
    pub fn from_bits(bits: u32) -> Self {
        EventMask(bits)
    }

    /// Creates a mask with the single event `index` (0..=31) set.
    ///
    /// # Panics
    ///
    /// Panics if `index` is 32 or larger.
    pub fn bit(index: u8) -> Self {
        assert!(index < 32, "event index out of range: {index}");
        EventMask(1 << index)
    }

    /// Returns the raw bit pattern.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Returns `true` if any event is set.
    pub fn any(self) -> bool {
        self.0 != 0
    }

    /// Returns `true` if all events in `other` are also set in `self`.
    pub fn contains(self, other: EventMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if at least one event is set in both masks.
    pub fn intersects(self, other: EventMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Returns `self` with all events in `other` cleared.
    #[must_use]
    pub fn without(self, other: EventMask) -> EventMask {
        EventMask(self.0 & !other.0)
    }

    /// Number of events set.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }
}

impl BitOr for EventMask {
    type Output = EventMask;

    fn bitor(self, rhs: EventMask) -> EventMask {
        EventMask(self.0 | rhs.0)
    }
}

impl BitOrAssign for EventMask {
    fn bitor_assign(&mut self, rhs: EventMask) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for EventMask {
    type Output = EventMask;

    fn bitand(self, rhs: EventMask) -> EventMask {
        EventMask(self.0 & rhs.0)
    }
}

impl Not for EventMask {
    type Output = EventMask;

    fn not(self) -> EventMask {
        EventMask(!self.0)
    }
}

impl fmt::Display for EventMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "events({:#010x})", self.0)
    }
}

impl fmt::Binary for EventMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for EventMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for EventMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Octal for EventMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_construction_and_union() {
        let m = EventMask::bit(0) | EventMask::bit(5);
        assert_eq!(m.bits(), 0b10_0001);
        assert_eq!(m.count(), 2);
    }

    #[test]
    #[should_panic(expected = "event index out of range")]
    fn bit_rejects_out_of_range() {
        let _ = EventMask::bit(32);
    }

    #[test]
    fn contains_and_intersects() {
        let set = EventMask::from_bits(0b1100);
        assert!(set.contains(EventMask::from_bits(0b0100)));
        assert!(!set.contains(EventMask::from_bits(0b0101)));
        assert!(set.intersects(EventMask::from_bits(0b0101)));
        assert!(!set.intersects(EventMask::from_bits(0b0011)));
    }

    #[test]
    fn without_clears_bits() {
        let set = EventMask::from_bits(0b1111);
        assert_eq!(set.without(EventMask::from_bits(0b0101)).bits(), 0b1010);
    }

    #[test]
    fn or_assign_accumulates() {
        let mut m = EventMask::NONE;
        m |= EventMask::bit(3);
        m |= EventMask::bit(3);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn formatting_variants() {
        let m = EventMask::from_bits(0xAB);
        assert_eq!(format!("{m:x}"), "ab");
        assert_eq!(format!("{m:X}"), "AB");
        assert_eq!(format!("{m:b}"), "10101011");
        assert_eq!(format!("{m:o}"), "253");
        assert!(m.to_string().contains("0x000000ab"));
    }
}
