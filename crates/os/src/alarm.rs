//! Counters and alarms: the periodic-activation machinery of OSEK.
//!
//! Alarms observe the kernel's single system counter (driven by the
//! simulation clock) and, on expiry, either activate a task or set an event
//! for a task — exactly the two alarm actions used by AUTOSAR's RTE to
//! trigger periodic runnables.

use std::fmt;

use serde::{Deserialize, Serialize};

use dynar_foundation::time::Tick;

use crate::event::EventMask;
use crate::task::TaskId;

/// Identifier of an alarm within one kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AlarmId(u16);

impl AlarmId {
    /// Creates an alarm identifier from its kernel-local index.
    pub fn new(index: u16) -> Self {
        AlarmId(index)
    }

    /// Returns the kernel-local index.
    pub fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for AlarmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alarm{}", self.0)
    }
}

/// What an alarm does when it expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlarmAction {
    /// Activate the given task.
    ActivateTask(TaskId),
    /// Set the given events for the given (extended) task.
    SetEvent(TaskId, EventMask),
}

impl AlarmAction {
    /// The task targeted by this action.
    pub fn task(self) -> TaskId {
        match self {
            AlarmAction::ActivateTask(t) | AlarmAction::SetEvent(t, _) => t,
        }
    }
}

/// One configured alarm.
///
/// # Example
/// ```
/// use dynar_os::alarm::{Alarm, AlarmAction};
/// use dynar_os::task::TaskId;
/// use dynar_foundation::time::Tick;
///
/// // Fires at t=10 and then every 10 ticks.
/// let mut alarm = Alarm::relative(10, Some(10), AlarmAction::ActivateTask(TaskId::new(0)), Tick::ZERO);
/// assert!(alarm.poll(Tick::new(9)).is_none());
/// assert!(alarm.poll(Tick::new(10)).is_some());
/// assert!(alarm.poll(Tick::new(19)).is_none());
/// assert!(alarm.poll(Tick::new(20)).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    next_expiry: Tick,
    cycle: Option<u64>,
    action: AlarmAction,
    armed: bool,
    expirations: u64,
}

impl Alarm {
    /// Creates an alarm expiring `offset` ticks after `now`, optionally
    /// repeating every `cycle` ticks.
    pub fn relative(offset: u64, cycle: Option<u64>, action: AlarmAction, now: Tick) -> Self {
        Alarm {
            next_expiry: now.advance(offset),
            cycle,
            action,
            armed: true,
            expirations: 0,
        }
    }

    /// Creates an alarm expiring at the absolute time `at`, optionally
    /// repeating every `cycle` ticks.
    pub fn absolute(at: Tick, cycle: Option<u64>, action: AlarmAction) -> Self {
        Alarm {
            next_expiry: at,
            cycle,
            action,
            armed: true,
            expirations: 0,
        }
    }

    /// The action performed on expiry.
    pub fn action(&self) -> AlarmAction {
        self.action
    }

    /// Whether the alarm is still armed.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// The next expiry time, if armed.
    pub fn next_expiry(&self) -> Option<Tick> {
        self.armed.then_some(self.next_expiry)
    }

    /// Total number of expirations so far.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// Cancels the alarm; it will no longer expire.
    pub fn cancel(&mut self) {
        self.armed = false;
    }

    /// Checks the alarm against the current time, returning its action if it
    /// expires at `now`.  Cyclic alarms re-arm themselves; one-shot alarms
    /// disarm.
    pub fn poll(&mut self, now: Tick) -> Option<AlarmAction> {
        if !self.armed || now < self.next_expiry {
            return None;
        }
        self.expirations += 1;
        match self.cycle {
            Some(cycle) if cycle > 0 => {
                // Catch up without firing multiple times in one poll: the
                // kernel polls every tick, so a single step is sufficient and
                // keeps bursts bounded even if a caller skips ticks.
                self.next_expiry = now.advance(cycle);
            }
            _ => self.armed = false,
        }
        Some(self.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activate(task: u16) -> AlarmAction {
        AlarmAction::ActivateTask(TaskId::new(task))
    }

    #[test]
    fn one_shot_alarm_fires_once() {
        let mut alarm = Alarm::relative(5, None, activate(1), Tick::ZERO);
        assert!(alarm.poll(Tick::new(4)).is_none());
        assert_eq!(alarm.poll(Tick::new(5)), Some(activate(1)));
        assert!(alarm.poll(Tick::new(6)).is_none());
        assert!(!alarm.is_armed());
        assert_eq!(alarm.expirations(), 1);
    }

    #[test]
    fn cyclic_alarm_rearms() {
        let mut alarm = Alarm::relative(2, Some(3), activate(0), Tick::ZERO);
        let mut fired = Vec::new();
        for t in 0..12 {
            if alarm.poll(Tick::new(t)).is_some() {
                fired.push(t);
            }
        }
        assert_eq!(fired, vec![2, 5, 8, 11]);
        assert_eq!(alarm.expirations(), 4);
    }

    #[test]
    fn absolute_alarm_expires_at_exact_time() {
        let mut alarm = Alarm::absolute(Tick::new(7), None, activate(2));
        assert_eq!(alarm.next_expiry(), Some(Tick::new(7)));
        assert!(alarm.poll(Tick::new(6)).is_none());
        assert!(alarm.poll(Tick::new(7)).is_some());
        assert_eq!(alarm.next_expiry(), None);
    }

    #[test]
    fn cancelled_alarm_never_fires() {
        let mut alarm = Alarm::relative(1, Some(1), activate(0), Tick::ZERO);
        alarm.cancel();
        assert!(alarm.poll(Tick::new(100)).is_none());
        assert_eq!(alarm.expirations(), 0);
    }

    #[test]
    fn set_event_action_carries_task_and_mask() {
        let action = AlarmAction::SetEvent(TaskId::new(3), EventMask::bit(1));
        assert_eq!(action.task(), TaskId::new(3));
    }

    #[test]
    fn late_poll_fires_and_schedules_from_now() {
        let mut alarm = Alarm::relative(2, Some(10), activate(0), Tick::ZERO);
        assert!(alarm.poll(Tick::new(25)).is_some());
        assert_eq!(alarm.next_expiry(), Some(Tick::new(35)));
    }
}
