//! An OSEK-like operating system simulation.
//!
//! AUTOSAR's basic software runs on an operating system descended from the
//! OSEK standard (paper §2): statically configured tasks with fixed
//! priorities, counters and alarms for periodic activation, events for task
//! synchronisation and resources with a priority-ceiling protocol.  This crate
//! reproduces that execution model as a deterministic, discrete-time kernel
//! that the `dynar-rte` crate drives: the kernel decides *which* task runs,
//! the RTE executes the runnables mapped to it.
//!
//! The kernel never executes user code itself; it is a pure scheduling data
//! structure, which keeps it trivially deterministic and easy to test.
//!
//! # Example
//!
//! ```
//! use dynar_os::kernel::Kernel;
//! use dynar_os::task::{TaskConfig, TaskPriority};
//!
//! # fn main() -> Result<(), dynar_foundation::error::DynarError> {
//! let mut kernel = Kernel::new();
//! let control = kernel.add_task(TaskConfig::new("control", TaskPriority::new(10)))?;
//! let logging = kernel.add_task(TaskConfig::new("logging", TaskPriority::new(1)))?;
//!
//! kernel.activate(control)?;
//! kernel.activate(logging)?;
//!
//! // The higher-priority control task is dispatched first.
//! assert_eq!(kernel.schedule(), Some(control));
//! kernel.terminate(control)?;
//! assert_eq!(kernel.schedule(), Some(logging));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alarm;
pub mod event;
pub mod kernel;
pub mod resource;
pub mod task;

pub use alarm::{Alarm, AlarmAction, AlarmId};
pub use event::EventMask;
pub use kernel::{Kernel, KernelStats};
pub use resource::{Resource, ResourceId};
pub use task::{TaskConfig, TaskId, TaskPriority, TaskState};
