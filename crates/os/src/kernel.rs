//! The kernel: task management, scheduling, alarms, events and resources.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::time::Tick;

use crate::alarm::{Alarm, AlarmAction, AlarmId};
use crate::event::EventMask;
use crate::resource::{Resource, ResourceId};
use crate::task::{TaskConfig, TaskControlBlock, TaskId, TaskState};

/// Aggregate scheduling statistics, used by the isolation experiments (E4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Total successful task activations.
    pub activations: u64,
    /// Total dispatch decisions that selected a task.
    pub dispatches: u64,
    /// Times a running task was preempted by a higher-priority task.
    pub preemptions: u64,
    /// Total alarm expirations applied.
    pub alarm_expirations: u64,
    /// Activation requests rejected because the activation limit was reached.
    pub activation_overflows: u64,
}

/// The OSEK-like kernel of one ECU.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Kernel {
    tasks: Vec<TaskControlBlock>,
    names: HashMap<String, TaskId>,
    alarms: Vec<Alarm>,
    resources: Vec<Resource>,
    running: Option<TaskId>,
    now: Tick,
    stats: KernelStats,
}

impl Kernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        Kernel::default()
    }

    /// Current simulated time as last told to [`Kernel::advance`].
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Scheduling statistics accumulated so far.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Number of configured tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    // ------------------------------------------------------------------
    // Task management
    // ------------------------------------------------------------------

    /// Registers a task and returns its identifier.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::Duplicate`] if a task with the same name exists.
    pub fn add_task(&mut self, config: TaskConfig) -> Result<TaskId> {
        if self.names.contains_key(config.name()) {
            return Err(DynarError::duplicate("task", config.name()));
        }
        let id = TaskId::new(self.tasks.len() as u16);
        self.names.insert(config.name().to_owned(), id);
        self.tasks.push(TaskControlBlock::new(config));
        Ok(id)
    }

    /// Looks a task up by name.
    pub fn task_by_name(&self, name: &str) -> Option<TaskId> {
        self.names.get(name).copied()
    }

    /// The current state of a task.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown task.
    pub fn task_state(&self, task: TaskId) -> Result<TaskState> {
        Ok(self.tcb(task)?.state)
    }

    /// The static configuration of a task.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown task.
    pub fn task_config(&self, task: TaskId) -> Result<&TaskConfig> {
        Ok(&self.tcb(task)?.config)
    }

    /// Activates a task (OSEK `ActivateTask`).
    ///
    /// A suspended task becomes ready; an already active task queues an extra
    /// activation up to its configured limit.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown task and
    /// [`DynarError::InvalidConfiguration`] when the activation limit is
    /// exceeded (OSEK `E_OS_LIMIT`).
    pub fn activate(&mut self, task: TaskId) -> Result<()> {
        let outcome = {
            let tcb = self.tcb_mut(task)?;
            match tcb.state {
                TaskState::Suspended => {
                    tcb.state = TaskState::Ready;
                    tcb.activation_count += 1;
                    Ok(())
                }
                _ => {
                    if tcb.pending_activations + 1 < tcb.config.max_activations() {
                        tcb.pending_activations += 1;
                        tcb.activation_count += 1;
                        Ok(())
                    } else {
                        Err(DynarError::invalid_config(format!(
                            "activation limit reached for task {}",
                            tcb.config.name()
                        )))
                    }
                }
            }
        };
        match &outcome {
            Ok(()) => self.stats.activations += 1,
            Err(_) => self.stats.activation_overflows += 1,
        }
        outcome
    }

    /// Terminates the given task (OSEK `TerminateTask`).
    ///
    /// If extra activations are pending the task immediately becomes ready
    /// again, otherwise it is suspended.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown task.
    pub fn terminate(&mut self, task: TaskId) -> Result<()> {
        if self.running == Some(task) {
            self.running = None;
        }
        let tcb = self.tcb_mut(task)?;
        tcb.dynamic_priority = tcb.config.priority();
        if tcb.pending_activations > 0 {
            tcb.pending_activations -= 1;
            tcb.state = TaskState::Ready;
        } else {
            tcb.state = TaskState::Suspended;
        }
        Ok(())
    }

    /// Terminates `task` and activates `next` in one step (OSEK `ChainTask`).
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Kernel::terminate`] and [`Kernel::activate`].
    pub fn chain(&mut self, task: TaskId, next: TaskId) -> Result<()> {
        self.terminate(task)?;
        self.activate(next)
    }

    // ------------------------------------------------------------------
    // Events
    // ------------------------------------------------------------------

    /// Sets events for an extended task (OSEK `SetEvent`), waking it if it
    /// waits on any of them.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown task and
    /// [`DynarError::InvalidConfiguration`] for a basic task.
    pub fn set_event(&mut self, task: TaskId, events: EventMask) -> Result<()> {
        let tcb = self.tcb_mut(task)?;
        if !tcb.config.is_extended() {
            return Err(DynarError::invalid_config(format!(
                "task {} is not an extended task",
                tcb.config.name()
            )));
        }
        tcb.set_events |= events;
        if tcb.state == TaskState::Waiting && tcb.set_events.intersects(tcb.waited_events) {
            tcb.state = TaskState::Ready;
            tcb.waited_events = EventMask::NONE;
        }
        Ok(())
    }

    /// Makes the running extended task wait for `events` (OSEK `WaitEvent`).
    ///
    /// If one of the events is already set the task keeps running; otherwise
    /// it transitions to `Waiting` and loses the processor.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown task and
    /// [`DynarError::InvalidConfiguration`] for a basic task.
    pub fn wait_event(&mut self, task: TaskId, events: EventMask) -> Result<()> {
        let was_running = self.running == Some(task);
        let tcb = self.tcb_mut(task)?;
        if !tcb.config.is_extended() {
            return Err(DynarError::invalid_config(format!(
                "task {} is not an extended task",
                tcb.config.name()
            )));
        }
        if tcb.set_events.intersects(events) {
            return Ok(());
        }
        tcb.waited_events = events;
        tcb.state = TaskState::Waiting;
        if was_running {
            self.running = None;
        }
        Ok(())
    }

    /// Clears events of an extended task (OSEK `ClearEvent`).
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown task.
    pub fn clear_event(&mut self, task: TaskId, events: EventMask) -> Result<()> {
        let tcb = self.tcb_mut(task)?;
        tcb.set_events = tcb.set_events.without(events);
        Ok(())
    }

    /// Returns the currently set events of a task (OSEK `GetEvent`).
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown task.
    pub fn events_of(&self, task: TaskId) -> Result<EventMask> {
        Ok(self.tcb(task)?.set_events)
    }

    // ------------------------------------------------------------------
    // Alarms
    // ------------------------------------------------------------------

    /// Registers an alarm and returns its identifier.
    pub fn add_alarm(&mut self, alarm: Alarm) -> AlarmId {
        let id = AlarmId::new(self.alarms.len() as u16);
        self.alarms.push(alarm);
        id
    }

    /// Cancels an alarm (OSEK `CancelAlarm`).
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown alarm.
    pub fn cancel_alarm(&mut self, alarm: AlarmId) -> Result<()> {
        let slot = self
            .alarms
            .get_mut(alarm.index() as usize)
            .ok_or_else(|| DynarError::not_found("alarm", alarm))?;
        slot.cancel();
        Ok(())
    }

    /// Advances kernel time to `now`, firing due alarms and applying their
    /// actions.  Returns the actions that fired, in alarm order.
    pub fn advance(&mut self, now: Tick) -> Vec<AlarmAction> {
        self.now = now;
        let mut fired = Vec::new();
        for index in 0..self.alarms.len() {
            if let Some(action) = self.alarms[index].poll(now) {
                self.stats.alarm_expirations += 1;
                match action {
                    AlarmAction::ActivateTask(task) => {
                        // An activation overflow on a periodic alarm means the
                        // task missed its deadline; the error is counted in the
                        // stats and the overflow is otherwise tolerated.
                        let _ = self.activate(task);
                    }
                    AlarmAction::SetEvent(task, events) => {
                        let _ = self.set_event(task, events);
                    }
                }
                fired.push(action);
            }
        }
        fired
    }

    // ------------------------------------------------------------------
    // Resources (immediate priority ceiling)
    // ------------------------------------------------------------------

    /// Registers a resource and returns its identifier.
    pub fn add_resource(&mut self, resource: Resource) -> ResourceId {
        let id = ResourceId::new(self.resources.len() as u16);
        self.resources.push(resource);
        id
    }

    /// Acquires a resource for `task` (OSEK `GetResource`), raising the task's
    /// dynamic priority to the resource ceiling.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown ids and
    /// [`DynarError::InvalidConfiguration`] if the resource is already held by
    /// another task.
    pub fn get_resource(&mut self, task: TaskId, resource: ResourceId) -> Result<()> {
        let res = self
            .resources
            .get_mut(resource.index() as usize)
            .ok_or_else(|| DynarError::not_found("resource", resource))?;
        if !res.try_acquire(task) {
            return Err(DynarError::invalid_config(format!(
                "resource {} already held",
                res.name()
            )));
        }
        let ceiling = res.ceiling();
        let tcb = self.tcb_mut(task)?;
        if ceiling > tcb.dynamic_priority {
            tcb.dynamic_priority = ceiling;
        }
        Ok(())
    }

    /// Releases a resource held by `task` (OSEK `ReleaseResource`), restoring
    /// the task's priority to its static level or to the highest ceiling of
    /// the resources it still holds.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown ids and
    /// [`DynarError::InvalidConfiguration`] if `task` does not hold it.
    pub fn release_resource(&mut self, task: TaskId, resource: ResourceId) -> Result<()> {
        let res = self
            .resources
            .get_mut(resource.index() as usize)
            .ok_or_else(|| DynarError::not_found("resource", resource))?;
        if res.release(task).is_err() {
            return Err(DynarError::invalid_config(format!(
                "resource {} not held by {task}",
                res.name()
            )));
        }
        let still_held_ceiling = self
            .resources
            .iter()
            .filter(|r| r.holder() == Some(task))
            .map(Resource::ceiling)
            .max();
        let tcb = self.tcb_mut(task)?;
        tcb.dynamic_priority = match still_held_ceiling {
            Some(ceiling) if ceiling > tcb.config.priority() => ceiling,
            _ => tcb.config.priority(),
        };
        Ok(())
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Picks the highest-priority ready (or running) task and dispatches it.
    ///
    /// Returns the task now holding the processor, or `None` if every task is
    /// suspended or waiting.  Preemptions of a lower-priority running task are
    /// counted in [`KernelStats::preemptions`].
    pub fn schedule(&mut self) -> Option<TaskId> {
        let best = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, tcb)| matches!(tcb.state, TaskState::Ready | TaskState::Running))
            .max_by(|(ia, a), (ib, b)| {
                (a.dynamic_priority, std::cmp::Reverse(*ia))
                    .cmp(&(b.dynamic_priority, std::cmp::Reverse(*ib)))
            })
            .map(|(i, _)| TaskId::new(i as u16))?;

        if let Some(current) = self.running {
            if current != best {
                if let Ok(tcb) = self.tcb_mut(current) {
                    if tcb.state == TaskState::Running {
                        tcb.state = TaskState::Ready;
                        tcb.preemption_count += 1;
                        self.stats.preemptions += 1;
                    }
                }
            }
        }

        if self.running != Some(best) {
            self.stats.dispatches += 1;
        }
        self.running = Some(best);
        if let Ok(tcb) = self.tcb_mut(best) {
            tcb.state = TaskState::Running;
        }
        Some(best)
    }

    /// The task currently holding the processor, if any.
    pub fn running(&self) -> Option<TaskId> {
        self.running
    }

    fn tcb(&self, task: TaskId) -> Result<&TaskControlBlock> {
        self.tasks
            .get(task.index() as usize)
            .ok_or_else(|| DynarError::not_found("task", task))
    }

    fn tcb_mut(&mut self, task: TaskId) -> Result<&mut TaskControlBlock> {
        self.tasks
            .get_mut(task.index() as usize)
            .ok_or_else(|| DynarError::not_found("task", task))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alarm::Alarm;
    use crate::task::TaskPriority;

    fn kernel_with(priorities: &[u8]) -> (Kernel, Vec<TaskId>) {
        let mut kernel = Kernel::new();
        let ids = priorities
            .iter()
            .enumerate()
            .map(|(i, p)| {
                kernel
                    .add_task(TaskConfig::new(format!("t{i}"), TaskPriority::new(*p)))
                    .unwrap()
            })
            .collect();
        (kernel, ids)
    }

    #[test]
    fn duplicate_task_names_are_rejected() {
        let mut kernel = Kernel::new();
        kernel
            .add_task(TaskConfig::new("a", TaskPriority::new(1)))
            .unwrap();
        let err = kernel
            .add_task(TaskConfig::new("a", TaskPriority::new(2)))
            .unwrap_err();
        assert!(matches!(err, DynarError::Duplicate { .. }));
    }

    #[test]
    fn highest_priority_ready_task_runs() {
        let (mut kernel, ids) = kernel_with(&[1, 5, 3]);
        for id in &ids {
            kernel.activate(*id).unwrap();
        }
        assert_eq!(kernel.schedule(), Some(ids[1]));
        kernel.terminate(ids[1]).unwrap();
        assert_eq!(kernel.schedule(), Some(ids[2]));
    }

    #[test]
    fn equal_priority_prefers_earlier_task() {
        let (mut kernel, ids) = kernel_with(&[4, 4]);
        kernel.activate(ids[1]).unwrap();
        kernel.activate(ids[0]).unwrap();
        assert_eq!(kernel.schedule(), Some(ids[0]));
    }

    #[test]
    fn preemption_is_counted() {
        let (mut kernel, ids) = kernel_with(&[1, 9]);
        kernel.activate(ids[0]).unwrap();
        assert_eq!(kernel.schedule(), Some(ids[0]));
        kernel.activate(ids[1]).unwrap();
        assert_eq!(kernel.schedule(), Some(ids[1]));
        assert_eq!(kernel.stats().preemptions, 1);
        assert_eq!(kernel.task_state(ids[0]).unwrap(), TaskState::Ready);
    }

    #[test]
    fn activation_limit_is_enforced() {
        let mut kernel = Kernel::new();
        let t = kernel
            .add_task(TaskConfig::new("t", TaskPriority::new(1)).with_max_activations(2))
            .unwrap();
        kernel.activate(t).unwrap();
        kernel.activate(t).unwrap();
        assert!(kernel.activate(t).is_err());
        assert_eq!(kernel.stats().activation_overflows, 1);
    }

    #[test]
    fn pending_activation_reactivates_after_terminate() {
        let mut kernel = Kernel::new();
        let t = kernel
            .add_task(TaskConfig::new("t", TaskPriority::new(1)).with_max_activations(2))
            .unwrap();
        kernel.activate(t).unwrap();
        kernel.activate(t).unwrap();
        kernel.schedule();
        kernel.terminate(t).unwrap();
        assert_eq!(kernel.task_state(t).unwrap(), TaskState::Ready);
        kernel.terminate(t).unwrap();
        assert_eq!(kernel.task_state(t).unwrap(), TaskState::Suspended);
    }

    #[test]
    fn events_wake_waiting_tasks() {
        let mut kernel = Kernel::new();
        let t = kernel
            .add_task(TaskConfig::new("t", TaskPriority::new(1)).extended())
            .unwrap();
        kernel.activate(t).unwrap();
        kernel.schedule();
        kernel.wait_event(t, EventMask::bit(0)).unwrap();
        assert_eq!(kernel.task_state(t).unwrap(), TaskState::Waiting);
        assert_eq!(kernel.schedule(), None);
        kernel.set_event(t, EventMask::bit(0)).unwrap();
        assert_eq!(kernel.task_state(t).unwrap(), TaskState::Ready);
        assert_eq!(kernel.schedule(), Some(t));
        assert!(kernel.events_of(t).unwrap().any());
        kernel.clear_event(t, EventMask::bit(0)).unwrap();
        assert!(!kernel.events_of(t).unwrap().any());
    }

    #[test]
    fn wait_with_already_set_event_does_not_block() {
        let mut kernel = Kernel::new();
        let t = kernel
            .add_task(TaskConfig::new("t", TaskPriority::new(1)).extended())
            .unwrap();
        kernel.activate(t).unwrap();
        kernel.schedule();
        kernel.set_event(t, EventMask::bit(2)).unwrap();
        kernel.wait_event(t, EventMask::bit(2)).unwrap();
        assert_eq!(kernel.task_state(t).unwrap(), TaskState::Running);
    }

    #[test]
    fn events_on_basic_tasks_are_rejected() {
        let (mut kernel, ids) = kernel_with(&[1]);
        assert!(kernel.set_event(ids[0], EventMask::bit(0)).is_err());
        assert!(kernel.wait_event(ids[0], EventMask::bit(0)).is_err());
    }

    #[test]
    fn alarms_activate_tasks_periodically() {
        let (mut kernel, ids) = kernel_with(&[1]);
        kernel.add_alarm(Alarm::relative(
            5,
            Some(5),
            AlarmAction::ActivateTask(ids[0]),
            Tick::ZERO,
        ));
        let mut activations = 0;
        for t in 1..=20u64 {
            let fired = kernel.advance(Tick::new(t));
            activations += fired.len();
            if !fired.is_empty() {
                kernel.schedule();
                kernel.terminate(ids[0]).unwrap();
            }
        }
        assert_eq!(activations, 4);
        assert_eq!(kernel.stats().alarm_expirations, 4);
    }

    #[test]
    fn cancelled_alarm_stops_firing() {
        let (mut kernel, ids) = kernel_with(&[1]);
        let alarm = kernel.add_alarm(Alarm::relative(
            1,
            Some(1),
            AlarmAction::ActivateTask(ids[0]),
            Tick::ZERO,
        ));
        kernel.advance(Tick::new(1));
        kernel.cancel_alarm(alarm).unwrap();
        assert!(kernel.advance(Tick::new(5)).is_empty());
    }

    #[test]
    fn resource_ceiling_raises_and_restores_priority() {
        let (mut kernel, ids) = kernel_with(&[2, 5]);
        let res = kernel.add_resource(Resource::new("shared", TaskPriority::new(9)));
        kernel.activate(ids[0]).unwrap();
        kernel.schedule();
        kernel.get_resource(ids[0], res).unwrap();

        // A higher-priority task becomes ready but cannot preempt while the
        // ceiling is held.
        kernel.activate(ids[1]).unwrap();
        assert_eq!(kernel.schedule(), Some(ids[0]));

        kernel.release_resource(ids[0], res).unwrap();
        assert_eq!(kernel.schedule(), Some(ids[1]));
    }

    #[test]
    fn resource_misuse_is_reported() {
        let (mut kernel, ids) = kernel_with(&[1, 1]);
        let res = kernel.add_resource(Resource::new("r", TaskPriority::new(3)));
        kernel.get_resource(ids[0], res).unwrap();
        assert!(kernel.get_resource(ids[1], res).is_err());
        assert!(kernel.release_resource(ids[1], res).is_err());
        assert!(kernel.release_resource(ids[0], ResourceId::new(9)).is_err());
    }

    #[test]
    fn chain_terminates_and_activates() {
        let (mut kernel, ids) = kernel_with(&[1, 2]);
        kernel.activate(ids[0]).unwrap();
        kernel.schedule();
        kernel.chain(ids[0], ids[1]).unwrap();
        assert_eq!(kernel.task_state(ids[0]).unwrap(), TaskState::Suspended);
        assert_eq!(kernel.schedule(), Some(ids[1]));
    }

    #[test]
    fn unknown_ids_return_not_found() {
        let mut kernel = Kernel::new();
        assert!(kernel.activate(TaskId::new(0)).is_err());
        assert!(kernel.task_state(TaskId::new(0)).is_err());
        assert!(kernel.cancel_alarm(AlarmId::new(0)).is_err());
    }

    #[test]
    fn task_lookup_by_name() {
        let (kernel, ids) = kernel_with(&[1, 2]);
        assert_eq!(kernel.task_by_name("t1"), Some(ids[1]));
        assert_eq!(kernel.task_by_name("nope"), None);
        assert_eq!(kernel.task_count(), 2);
    }
}
