//! OSEK resources with the immediate priority-ceiling protocol.
//!
//! Resources guard critical sections shared between tasks (the RTE uses them
//! for exclusive areas around port buffers).  When a task takes a resource its
//! dynamic priority is raised to the resource's ceiling, preventing any task
//! that could also take the resource from preempting it — the OSEK way of
//! avoiding priority inversion without blocking.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::task::{TaskId, TaskPriority};

/// Identifier of a resource within one kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(u16);

impl ResourceId {
    /// Creates a resource identifier from its kernel-local index.
    pub fn new(index: u16) -> Self {
        ResourceId(index)
    }

    /// Returns the kernel-local index.
    pub fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "resource{}", self.0)
    }
}

/// One configured resource with its priority ceiling.
///
/// # Example
/// ```
/// use dynar_os::resource::Resource;
/// use dynar_os::task::{TaskId, TaskPriority};
///
/// let mut res = Resource::new("port-buffer", TaskPriority::new(10));
/// assert!(res.try_acquire(TaskId::new(0)));
/// assert!(!res.try_acquire(TaskId::new(1)), "already held");
/// assert_eq!(res.release(TaskId::new(0)), Ok(()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resource {
    name: String,
    ceiling: TaskPriority,
    holder: Option<TaskId>,
    contention_count: u64,
}

impl Resource {
    /// Creates a resource with the given name and priority ceiling.
    pub fn new(name: impl Into<String>, ceiling: TaskPriority) -> Self {
        Resource {
            name: name.into(),
            ceiling,
            holder: None,
            contention_count: 0,
        }
    }

    /// The resource name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The static priority ceiling of the resource.
    pub fn ceiling(&self) -> TaskPriority {
        self.ceiling
    }

    /// The task currently holding the resource, if any.
    pub fn holder(&self) -> Option<TaskId> {
        self.holder
    }

    /// How many acquisition attempts found the resource already held.
    pub fn contention_count(&self) -> u64 {
        self.contention_count
    }

    /// Attempts to acquire the resource for `task`.
    ///
    /// Returns `true` on success.  Under the immediate ceiling protocol a
    /// correctly configured system never observes contention (the ceiling
    /// prevents competitors from running); the counter exists to surface
    /// configuration mistakes.
    pub fn try_acquire(&mut self, task: TaskId) -> bool {
        match self.holder {
            None => {
                self.holder = Some(task);
                true
            }
            Some(holder) if holder == task => true,
            Some(_) => {
                self.contention_count += 1;
                false
            }
        }
    }

    /// Releases the resource held by `task`.
    ///
    /// # Errors
    ///
    /// Returns the actual holder (or `None`) if `task` does not hold the
    /// resource, so callers can report the misuse.
    pub fn release(&mut self, task: TaskId) -> Result<(), Option<TaskId>> {
        if self.holder == Some(task) {
            self.holder = None;
            Ok(())
        } else {
            Err(self.holder)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut res = Resource::new("r", TaskPriority::new(5));
        let t = TaskId::new(1);
        assert!(res.try_acquire(t));
        assert_eq!(res.holder(), Some(t));
        assert!(res.try_acquire(t), "re-acquisition by holder is idempotent");
        res.release(t).unwrap();
        assert_eq!(res.holder(), None);
    }

    #[test]
    fn contention_is_counted() {
        let mut res = Resource::new("r", TaskPriority::new(5));
        assert!(res.try_acquire(TaskId::new(0)));
        assert!(!res.try_acquire(TaskId::new(1)));
        assert!(!res.try_acquire(TaskId::new(2)));
        assert_eq!(res.contention_count(), 2);
    }

    #[test]
    fn release_by_non_holder_reports_holder() {
        let mut res = Resource::new("r", TaskPriority::new(5));
        assert!(res.try_acquire(TaskId::new(0)));
        assert_eq!(res.release(TaskId::new(1)), Err(Some(TaskId::new(0))));
        assert_eq!(res.release(TaskId::new(0)), Ok(()));
        assert_eq!(res.release(TaskId::new(0)), Err(None));
    }

    #[test]
    fn metadata_accessors() {
        let res = Resource::new("buf", TaskPriority::new(9));
        assert_eq!(res.name(), "buf");
        assert_eq!(res.ceiling(), TaskPriority::new(9));
        assert_eq!(ResourceId::new(4).to_string(), "resource4");
    }
}
