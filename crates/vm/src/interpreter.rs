//! The plug-in virtual machine interpreter.

use std::fmt;

use serde::{Deserialize, Serialize};

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::value::Value;

use crate::budget::Budget;
use crate::exec::{self, ArithOp, CmpOp, Flow};
use crate::isa::Instruction;
use crate::program::Program;

/// The window a plug-in has onto the rest of the system: its own ports plus a
/// diagnostic log.  The PIRTE implements this trait; tests use lightweight
/// fakes.
pub trait PortHost {
    /// Returns the latest value of port `slot` without consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for a slot the plug-in does not own.
    fn read_port(&mut self, slot: u32) -> Result<Value>;

    /// Consumes and returns the next queued value of port `slot`, or
    /// [`Value::Void`] when nothing is queued.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for a slot the plug-in does not own.
    fn take_port(&mut self, slot: u32) -> Result<Value>;

    /// Writes a value to port `slot`.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for a slot the plug-in does not own.
    fn write_port(&mut self, slot: u32, value: Value) -> Result<()>;

    /// Number of values waiting on port `slot`.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for a slot the plug-in does not own.
    fn pending(&mut self, slot: u32) -> Result<usize>;

    /// Records a diagnostic message produced by the plug-in.
    fn log(&mut self, message: &str);
}

/// The execution state of a plug-in virtual machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum VmStatus {
    /// Ready to execute (or resume) its program.
    #[default]
    Runnable,
    /// The program executed a `yield` and waits for its next slot.
    Yielded,
    /// The per-slot instruction budget ran out; execution resumes next slot.
    Preempted,
    /// The program executed `halt` and will not run again.
    Halted,
    /// The program faulted; it will not run again.
    Faulted,
}

impl fmt::Display for VmStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            VmStatus::Runnable => "runnable",
            VmStatus::Yielded => "yielded",
            VmStatus::Preempted => "preempted",
            VmStatus::Halted => "halted",
            VmStatus::Faulted => "faulted",
        };
        f.write_str(name)
    }
}

/// What happened during one execution slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotReport {
    /// Instructions executed in this slot.
    pub instructions: u64,
    /// The machine status at the end of the slot.
    pub status: VmStatus,
}

/// One plug-in virtual machine instance: a loaded program plus its live
/// execution state.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vm {
    program: Program,
    budget: Budget,
    pc: usize,
    stack: Vec<Value>,
    locals: Vec<Value>,
    status: VmStatus,
    total_instructions: u64,
    slots_run: u64,
    /// Running total of `payload_size` over stack and locals, maintained
    /// incrementally so the per-instruction memory check is O(1) instead of
    /// rescanning the whole machine state on every push.
    used_bytes: usize,
}

impl Vm {
    /// Loads a program into a fresh machine with the given budget.
    pub fn new(program: Program, budget: Budget) -> Self {
        Vm {
            program,
            locals: vec![Value::Void; budget.local_count()],
            budget,
            pc: 0,
            stack: Vec::new(),
            status: VmStatus::Runnable,
            total_instructions: 0,
            slots_run: 0,
            used_bytes: 0,
        }
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The budget the machine runs under.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Current machine status.
    pub fn status(&self) -> VmStatus {
        self.status
    }

    /// Total instructions executed since the program was loaded.
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Number of execution slots granted so far.
    pub fn slots_run(&self) -> u64 {
        self.slots_run
    }

    /// The current program counter (next instruction to execute).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// The current operand stack, bottom first.
    pub fn stack(&self) -> &[Value] {
        &self.stack
    }

    /// The current local variable slots.
    pub fn locals(&self) -> &[Value] {
        &self.locals
    }

    /// The current incremental memory footprint in bytes.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Resets the machine to the start of its program, clearing stack and
    /// locals.  Used when a plug-in is restarted after an update.
    pub fn reset(&mut self) {
        self.pc = 0;
        self.stack.clear();
        self.locals = vec![Value::Void; self.budget.local_count()];
        self.status = VmStatus::Runnable;
        self.used_bytes = 0;
    }

    /// Runs one best-effort execution slot against `host`.
    ///
    /// Execution ends when the program yields, halts, exhausts its per-slot
    /// instruction budget, or faults.  A halted or faulted machine returns a
    /// zero-instruction report without touching the host.
    ///
    /// # Errors
    ///
    /// Returns the fault that stopped the program (the machine transitions to
    /// [`VmStatus::Faulted`] and stays there).
    pub fn run_slot(&mut self, host: &mut dyn PortHost) -> Result<SlotReport> {
        if matches!(self.status, VmStatus::Halted | VmStatus::Faulted) {
            return Ok(SlotReport {
                instructions: 0,
                status: self.status,
            });
        }
        self.slots_run += 1;
        self.status = VmStatus::Runnable;
        let mut executed = 0u64;

        while executed < self.budget.instructions_per_slot() {
            let Some(instruction) = self.program.code().get(self.pc).cloned() else {
                // Running off the end of the program is treated as an
                // implicit halt, like returning from `main`.
                self.status = VmStatus::Halted;
                break;
            };
            executed += 1;
            self.total_instructions += 1;
            self.pc += 1;
            match self.execute(&instruction, host) {
                Ok(Flow::Continue) => {}
                Ok(Flow::Yield) => {
                    self.status = VmStatus::Yielded;
                    break;
                }
                Ok(Flow::Halt) => {
                    self.status = VmStatus::Halted;
                    break;
                }
                Err(err) => {
                    self.status = VmStatus::Faulted;
                    return Err(err);
                }
            }
        }
        if executed == self.budget.instructions_per_slot() && self.status == VmStatus::Runnable {
            self.status = VmStatus::Preempted;
        }
        Ok(SlotReport {
            instructions: executed,
            status: self.status,
        })
    }

    fn execute(&mut self, instruction: &Instruction, host: &mut dyn PortHost) -> Result<Flow> {
        match instruction {
            Instruction::Nop => {}
            Instruction::PushConst(index) => {
                let value = self
                    .program
                    .constants()
                    .get(*index as usize)
                    .cloned()
                    .ok_or_else(|| {
                        DynarError::VmFault(format!("constant #{index} out of range"))
                    })?;
                self.push(value)?;
            }
            Instruction::PushInt(v) => self.push(Value::I64(*v))?,
            Instruction::Dup => {
                let top = self.peek()?.clone();
                self.push(top)?;
            }
            Instruction::Pop => {
                self.pop()?;
            }
            Instruction::Swap => {
                let a = self.pop()?;
                let b = self.pop()?;
                self.push(a)?;
                self.push(b)?;
            }
            Instruction::Load(index) => {
                let value =
                    self.locals.get(*index as usize).cloned().ok_or_else(|| {
                        DynarError::VmFault(format!("local {index} out of range"))
                    })?;
                self.push(value)?;
            }
            Instruction::Store(index) => {
                let value = self.pop()?;
                let slot = self
                    .locals
                    .get_mut(*index as usize)
                    .ok_or_else(|| DynarError::VmFault(format!("local {index} out of range")))?;
                // Replace the local's contribution to the running footprint.
                let delta_out = slot.payload_size();
                let delta_in = value.payload_size();
                *slot = value;
                self.used_bytes = self.used_bytes.saturating_sub(delta_out) + delta_in;
                self.check_memory()?;
            }
            Instruction::Add
            | Instruction::Sub
            | Instruction::Mul
            | Instruction::Div
            | Instruction::Rem => {
                let op = match instruction {
                    Instruction::Add => ArithOp::Add,
                    Instruction::Sub => ArithOp::Sub,
                    Instruction::Mul => ArithOp::Mul,
                    Instruction::Div => ArithOp::Div,
                    _ => ArithOp::Rem,
                };
                let right = self.pop()?;
                let left = self.pop()?;
                self.push(exec::arithmetic(op, &left, &right)?)?;
            }
            Instruction::Neg => {
                let value = self.pop()?;
                self.push(exec::negate(value)?)?;
            }
            Instruction::Eq | Instruction::Ne => {
                let right = self.pop()?;
                let left = self.pop()?;
                let equal = exec::values_equal(&left, &right);
                self.push(Value::Bool(if matches!(instruction, Instruction::Eq) {
                    equal
                } else {
                    !equal
                }))?;
            }
            Instruction::Lt | Instruction::Le | Instruction::Gt | Instruction::Ge => {
                let op = match instruction {
                    Instruction::Lt => CmpOp::Lt,
                    Instruction::Le => CmpOp::Le,
                    Instruction::Gt => CmpOp::Gt,
                    _ => CmpOp::Ge,
                };
                let right = self.pop()?;
                let left = self.pop()?;
                self.push(exec::compare(op, &left, &right)?)?;
            }
            Instruction::And | Instruction::Or => {
                let right = self.pop()?.as_bool().ok_or_else(exec::type_fault("bool"))?;
                let left = self.pop()?.as_bool().ok_or_else(exec::type_fault("bool"))?;
                let result = if matches!(instruction, Instruction::And) {
                    left && right
                } else {
                    left || right
                };
                self.push(Value::Bool(result))?;
            }
            Instruction::Not => {
                let value = self.pop()?.as_bool().ok_or_else(exec::type_fault("bool"))?;
                self.push(Value::Bool(!value))?;
            }
            Instruction::Jump(target) => self.jump(*target)?,
            Instruction::JumpIfFalse(target) => {
                let condition = self.pop()?.as_bool().ok_or_else(exec::type_fault("bool"))?;
                if !condition {
                    self.jump(*target)?;
                }
            }
            Instruction::JumpIfTrue(target) => {
                let condition = self.pop()?.as_bool().ok_or_else(exec::type_fault("bool"))?;
                if condition {
                    self.jump(*target)?;
                }
            }
            Instruction::ReadPort(slot) => {
                let value = host.read_port(*slot)?;
                self.push(value)?;
            }
            Instruction::TakePort(slot) => {
                let value = host.take_port(*slot)?;
                self.push(value)?;
            }
            Instruction::WritePort(slot) => {
                let value = self.pop()?;
                host.write_port(*slot, value)?;
            }
            Instruction::PortPending(slot) => {
                let pending = host.pending(*slot)?;
                self.push(Value::I64(pending as i64))?;
            }
            Instruction::MakeList(count) => {
                let count = *count as usize;
                if self.stack.len() < count {
                    return Err(DynarError::VmFault("stack underflow in make_list".into()));
                }
                let items = self.stack.split_off(self.stack.len() - count);
                // The items leave the stack (their bytes move into the list
                // the push below accounts for).
                let moved: usize = items.iter().map(Value::payload_size).sum();
                self.used_bytes = self.used_bytes.saturating_sub(moved);
                self.push(Value::List(items))?;
            }
            Instruction::ListGet => {
                let index = self.pop()?.expect_i64().map_err(exec::to_vm_fault)?;
                let list = self.pop()?;
                let items = list.as_list().ok_or_else(exec::type_fault("list"))?;
                let item =
                    items
                        .get(usize::try_from(index).map_err(|_| {
                            DynarError::VmFault(format!("negative list index {index}"))
                        })?)
                        .cloned()
                        .ok_or_else(|| {
                            DynarError::VmFault(format!(
                                "list index {index} out of range for {} elements",
                                items.len()
                            ))
                        })?;
                self.push(item)?;
            }
            Instruction::ListLen => {
                let list = self.pop()?;
                let items = list.as_list().ok_or_else(exec::type_fault("list"))?;
                self.push(Value::I64(items.len() as i64))?;
            }
            Instruction::Log => {
                let value = self.pop()?;
                host.log(&value.to_string());
            }
            Instruction::Yield => return Ok(Flow::Yield),
            Instruction::Halt => return Ok(Flow::Halt),
        }
        Ok(Flow::Continue)
    }

    fn jump(&mut self, target: u16) -> Result<()> {
        if target as usize > self.program.code().len() {
            return Err(DynarError::VmFault(format!(
                "jump target {target} outside program"
            )));
        }
        self.pc = target as usize;
        Ok(())
    }

    fn push(&mut self, value: Value) -> Result<()> {
        if self.stack.len() >= self.budget.max_stack() {
            return Err(DynarError::BudgetExhausted {
                plugin: self.program.name().to_owned(),
                what: "stack",
            });
        }
        self.used_bytes += value.payload_size();
        self.stack.push(value);
        self.check_memory()
    }

    fn pop(&mut self) -> Result<Value> {
        let value = self
            .stack
            .pop()
            .ok_or_else(|| DynarError::VmFault("stack underflow".into()))?;
        self.used_bytes = self.used_bytes.saturating_sub(value.payload_size());
        Ok(value)
    }

    fn peek(&self) -> Result<&Value> {
        self.stack
            .last()
            .ok_or_else(|| DynarError::VmFault("stack underflow".into()))
    }

    fn check_memory(&self) -> Result<()> {
        debug_assert_eq!(
            self.used_bytes,
            self.stack
                .iter()
                .chain(self.locals.iter())
                .map(Value::payload_size)
                .sum::<usize>(),
            "incremental memory accounting drifted"
        );
        if self.used_bytes > self.budget.max_memory_bytes() {
            return Err(DynarError::BudgetExhausted {
                plugin: self.program.name().to_owned(),
                what: "memory",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::assemble;

    /// A host with a fixed number of slots, each holding one queued value.
    pub(crate) struct FakeHost {
        pub slots: Vec<Vec<Value>>,
        pub written: Vec<(u32, Value)>,
        pub logs: Vec<String>,
    }

    impl FakeHost {
        pub(crate) fn new(slot_count: usize) -> Self {
            FakeHost {
                slots: vec![Vec::new(); slot_count],
                written: Vec::new(),
                logs: Vec::new(),
            }
        }

        fn slot(&mut self, slot: u32) -> Result<&mut Vec<Value>> {
            self.slots
                .get_mut(slot as usize)
                .ok_or_else(|| DynarError::not_found("port slot", slot))
        }
    }

    impl PortHost for FakeHost {
        fn read_port(&mut self, slot: u32) -> Result<Value> {
            Ok(self.slot(slot)?.first().cloned().unwrap_or_default())
        }
        fn take_port(&mut self, slot: u32) -> Result<Value> {
            let queue = self.slot(slot)?;
            Ok(if queue.is_empty() {
                Value::Void
            } else {
                queue.remove(0)
            })
        }
        fn write_port(&mut self, slot: u32, value: Value) -> Result<()> {
            self.slot(slot)?;
            self.written.push((slot, value));
            Ok(())
        }
        fn pending(&mut self, slot: u32) -> Result<usize> {
            Ok(self.slot(slot)?.len())
        }
        fn log(&mut self, message: &str) {
            self.logs.push(message.to_owned());
        }
    }

    fn run(source: &str, host: &mut FakeHost) -> (Vm, SlotReport) {
        let program = assemble("test", source).unwrap();
        let mut vm = Vm::new(program, Budget::default());
        let report = vm.run_slot(host).unwrap();
        (vm, report)
    }

    #[test]
    fn arithmetic_and_locals() {
        let mut host = FakeHost::new(1);
        let (_, report) = run(
            r#"
            push_int 7
            push_int 3
            sub
            store 0
            load 0
            push_int 10
            mul
            write_port 0
            halt
            "#,
            &mut host,
        );
        assert_eq!(report.status, VmStatus::Halted);
        assert_eq!(host.written, vec![(0, Value::I64(40))]);
    }

    #[test]
    fn float_arithmetic_promotes() {
        let mut host = FakeHost::new(1);
        run(
            r#"
            push_const 2.5
            push_int 2
            mul
            write_port 0
            halt
            "#,
            &mut host,
        );
        assert_eq!(host.written, vec![(0, Value::F64(5.0))]);
    }

    #[test]
    fn division_by_zero_faults() {
        let mut host = FakeHost::new(1);
        let program = assemble("t", "push_int 1\npush_int 0\ndiv\nhalt").unwrap();
        let mut vm = Vm::new(program, Budget::default());
        let err = vm.run_slot(&mut host).unwrap_err();
        assert!(matches!(err, DynarError::VmFault(_)));
        assert_eq!(vm.status(), VmStatus::Faulted);
        // A faulted machine refuses to run again without a reset.
        let report = vm.run_slot(&mut host).unwrap();
        assert_eq!(report.instructions, 0);
        vm.reset();
        assert_eq!(vm.status(), VmStatus::Runnable);
    }

    #[test]
    fn loops_and_conditionals() {
        let mut host = FakeHost::new(1);
        // Sum the integers 1..=5 and write the result.
        let (_, report) = run(
            r#"
            push_int 0
            store 0          ; sum
            push_int 1
            store 1          ; i
        loop:
            load 1
            push_int 5
            gt
            jump_if_true done
            load 0
            load 1
            add
            store 0
            load 1
            push_int 1
            add
            store 1
            jump loop
        done:
            load 0
            write_port 0
            halt
            "#,
            &mut host,
        );
        assert_eq!(report.status, VmStatus::Halted);
        assert_eq!(host.written, vec![(0, Value::I64(15))]);
    }

    #[test]
    fn yield_preserves_state_across_slots() {
        let mut host = FakeHost::new(1);
        let program = assemble(
            "t",
            r#"
            push_int 0
            store 0
        loop:
            load 0
            push_int 1
            add
            store 0
            load 0
            write_port 0
            yield
            jump loop
            "#,
        )
        .unwrap();
        let mut vm = Vm::new(program, Budget::default());
        for _ in 0..3 {
            let report = vm.run_slot(&mut host).unwrap();
            assert_eq!(report.status, VmStatus::Yielded);
        }
        let written: Vec<i64> = host
            .written
            .iter()
            .map(|(_, v)| v.as_i64().unwrap())
            .collect();
        assert_eq!(written, vec![1, 2, 3]);
        assert_eq!(vm.slots_run(), 3);
    }

    #[test]
    fn instruction_budget_preempts_runaway_plugins() {
        let mut host = FakeHost::new(1);
        let program = assemble("t", "loop:\n jump loop").unwrap();
        let mut vm = Vm::new(program, Budget::new(50));
        let report = vm.run_slot(&mut host).unwrap();
        assert_eq!(report.status, VmStatus::Preempted);
        assert_eq!(report.instructions, 50);
        // The plug-in keeps being preempted but never faults.
        let report = vm.run_slot(&mut host).unwrap();
        assert_eq!(report.status, VmStatus::Preempted);
        assert_eq!(vm.total_instructions(), 100);
    }

    #[test]
    fn stack_budget_is_enforced() {
        let mut host = FakeHost::new(1);
        let program = assemble("t", "loop:\n push_int 1\n jump loop").unwrap();
        let mut vm = Vm::new(program, Budget::new(10_000).with_max_stack(16));
        let err = vm.run_slot(&mut host).unwrap_err();
        assert!(matches!(
            err,
            DynarError::BudgetExhausted { what: "stack", .. }
        ));
    }

    #[test]
    fn memory_budget_is_enforced() {
        let mut host = FakeHost::new(1);
        host.slots[0].push(Value::Bytes(vec![0; 4096]));
        let program = assemble("t", "take_port 0\nstore 0\nhalt").unwrap();
        let mut vm = Vm::new(program, Budget::default().with_max_memory_bytes(256));
        let err = vm.run_slot(&mut host).unwrap_err();
        assert!(matches!(
            err,
            DynarError::BudgetExhausted { what: "memory", .. }
        ));
    }

    #[test]
    fn port_host_calls_flow_through() {
        let mut host = FakeHost::new(3);
        host.slots[0].push(Value::I64(5));
        host.slots[0].push(Value::I64(6));
        let (_, _) = run(
            r#"
            port_pending 0
            write_port 2
            take_port 0
            write_port 1
            take_port 0
            write_port 1
            take_port 0
            write_port 1
            halt
            "#,
            &mut host,
        );
        assert_eq!(
            host.written,
            vec![
                (2, Value::I64(2)),
                (1, Value::I64(5)),
                (1, Value::I64(6)),
                (1, Value::Void),
            ]
        );
    }

    #[test]
    fn unknown_port_slot_faults_the_plugin() {
        let mut host = FakeHost::new(1);
        let program = assemble("t", "read_port 9\nhalt").unwrap();
        let mut vm = Vm::new(program, Budget::default());
        assert!(vm.run_slot(&mut host).is_err());
        assert_eq!(vm.status(), VmStatus::Faulted);
    }

    #[test]
    fn lists_and_logging() {
        let mut host = FakeHost::new(1);
        run(
            r#"
            push_const "Wheels"
            push_int 30
            make_list 2
            dup
            list_len
            write_port 0
            dup
            push_int 0
            list_get
            log
            push_int 1
            list_get
            write_port 0
            halt
            "#,
            &mut host,
        );
        assert_eq!(host.written[0], (0, Value::I64(2)));
        assert_eq!(host.written[1], (0, Value::I64(30)));
        assert_eq!(host.logs, vec!["\"Wheels\"".to_owned()]);
    }

    #[test]
    fn comparisons_and_booleans() {
        let mut host = FakeHost::new(1);
        run(
            r#"
            push_int 3
            push_int 4
            lt
            push_int 4
            push_int 4
            ge
            and
            not
            write_port 0
            push_const true
            push_const false
            or
            write_port 0
            halt
            "#,
            &mut host,
        );
        assert_eq!(
            host.written,
            vec![(0, Value::Bool(false)), (0, Value::Bool(true))]
        );
    }

    #[test]
    fn running_off_the_end_halts() {
        let mut host = FakeHost::new(1);
        let program = assemble("t", "push_int 1\npop").unwrap();
        let mut vm = Vm::new(program, Budget::default());
        let report = vm.run_slot(&mut host).unwrap();
        assert_eq!(report.status, VmStatus::Halted);
    }

    #[test]
    fn equality_covers_mixed_numeric_types() {
        let mut host = FakeHost::new(1);
        run(
            r#"
            push_int 2
            push_const 2.0
            eq
            write_port 0
            push_const "a"
            push_const "b"
            ne
            write_port 0
            halt
            "#,
            &mut host,
        );
        assert_eq!(
            host.written,
            vec![(0, Value::Bool(true)), (0, Value::Bool(true))]
        );
    }
}
