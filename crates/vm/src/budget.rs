//! Best-effort resource budgets for plug-in execution.
//!
//! The paper assigns each plug-in SW-C's virtual machine "its own memory, as
//! well as computational and communication resources" so that plug-ins run
//! best-effort without competing with the built-in functionality (§3.1.1).
//! [`Budget`] is the concrete form of that assignment in this reproduction:
//! it bounds how many instructions a plug-in may execute per scheduling slot,
//! how deep its stack may grow, how many locals it may use and how many bytes
//! of values it may hold alive.

use serde::{Deserialize, Serialize};

/// Resource limits applied to one plug-in virtual machine instance.
///
/// # Example
/// ```
/// use dynar_vm::budget::Budget;
///
/// let tight = Budget::new(100).with_max_stack(8).with_max_memory_bytes(1024);
/// assert_eq!(tight.instructions_per_slot(), 100);
/// assert_eq!(tight.max_stack(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Budget {
    instructions_per_slot: u64,
    max_stack: usize,
    local_count: usize,
    max_memory_bytes: usize,
}

impl Budget {
    /// Creates a budget with the given per-slot instruction limit and
    /// defaults for the structural limits.
    pub fn new(instructions_per_slot: u64) -> Self {
        Budget {
            instructions_per_slot: instructions_per_slot.max(1),
            ..Budget::default()
        }
    }

    /// Sets the maximum stack depth.
    #[must_use]
    pub fn with_max_stack(mut self, max_stack: usize) -> Self {
        self.max_stack = max_stack.max(2);
        self
    }

    /// Sets the number of local variables available to the plug-in.
    #[must_use]
    pub fn with_locals(mut self, local_count: usize) -> Self {
        self.local_count = local_count.clamp(1, 256);
        self
    }

    /// Sets the maximum number of value bytes the plug-in may hold alive
    /// across its stack and locals.
    #[must_use]
    pub fn with_max_memory_bytes(mut self, bytes: usize) -> Self {
        self.max_memory_bytes = bytes.max(64);
        self
    }

    /// Instructions the plug-in may execute in one scheduling slot.
    pub fn instructions_per_slot(&self) -> u64 {
        self.instructions_per_slot
    }

    /// Maximum stack depth.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// Number of local variable slots.
    pub fn local_count(&self) -> usize {
        self.local_count
    }

    /// Maximum bytes of live values.
    pub fn max_memory_bytes(&self) -> usize {
        self.max_memory_bytes
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            instructions_per_slot: 10_000,
            max_stack: 256,
            local_count: 32,
            max_memory_bytes: 64 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous_but_bounded() {
        let budget = Budget::default();
        assert!(budget.instructions_per_slot() >= 1000);
        assert!(budget.max_stack() >= 16);
        assert!(budget.local_count() >= 8);
        assert!(budget.max_memory_bytes() >= 4096);
    }

    #[test]
    fn builders_clamp_to_sane_minimums() {
        let budget = Budget::new(0)
            .with_max_stack(0)
            .with_locals(0)
            .with_max_memory_bytes(0);
        assert_eq!(budget.instructions_per_slot(), 1);
        assert_eq!(budget.max_stack(), 2);
        assert_eq!(budget.local_count(), 1);
        assert_eq!(budget.max_memory_bytes(), 64);
    }

    #[test]
    fn locals_are_capped_at_instruction_addressable_range() {
        assert_eq!(Budget::default().with_locals(1000).local_count(), 256);
    }
}
