//! A small text assembler and disassembler for plug-in programs.
//!
//! Plug-ins in the examples and benches are written in this assembly dialect,
//! compiled to [`Program`]s with [`assemble`] and shipped as binaries via
//! [`Program::to_bytes`].  The syntax is one instruction per line, `;`
//! comments, `label:` definitions and label references as jump targets:
//!
//! ```text
//! ; forward whatever arrives on port 0 to port 1
//! loop:
//!     port_pending 0
//!     push_int 0
//!     gt
//!     jump_if_false idle
//!     take_port 0
//!     write_port 1
//! idle:
//!     yield
//!     jump loop
//! ```

use std::collections::HashMap;

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::value::Value;

use crate::isa::Instruction;
use crate::program::Program;

/// Assembles a program from its textual form.
///
/// # Errors
///
/// Returns [`DynarError::InvalidConfiguration`] describing the offending line
/// for syntax errors, unknown mnemonics, bad operands or undefined labels.
pub fn assemble(name: &str, source: &str) -> Result<Program> {
    let mut program = Program::new(name);
    let mut labels: HashMap<String, u16> = HashMap::new();
    let mut statements: Vec<(usize, String, Option<String>)> = Vec::new();

    // First pass: strip comments, collect labels and raw statements.
    let mut next_pc: u16 = 0;
    for (line_no, raw_line) in source.lines().enumerate() {
        let line = raw_line.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() || labels.insert(label.to_owned(), next_pc).is_some() {
                return Err(line_error(line_no, raw_line, "invalid or duplicate label"));
            }
            continue;
        }
        let (mnemonic, operand) = match line.split_once(char::is_whitespace) {
            Some((m, rest)) => (m.to_owned(), Some(rest.trim().to_owned())),
            None => (line.to_owned(), None),
        };
        statements.push((line_no, mnemonic, operand));
        next_pc = next_pc
            .checked_add(1)
            .ok_or_else(|| DynarError::invalid_config("program longer than 65535 instructions"))?;
    }

    // Second pass: encode instructions, resolving labels.
    for (line_no, mnemonic, operand) in statements {
        let instruction = parse_statement(&mnemonic, operand.as_deref(), &labels, &mut program)
            .map_err(|reason| line_error(line_no, &mnemonic, &reason))?;
        program.push_instruction(instruction);
    }
    program.validate()?;
    Ok(program)
}

fn line_error(line_no: usize, line: &str, reason: &str) -> DynarError {
    DynarError::invalid_config(format!("line {}: {reason}: {line}", line_no + 1))
}

fn parse_statement(
    mnemonic: &str,
    operand: Option<&str>,
    labels: &HashMap<String, u16>,
    program: &mut Program,
) -> std::result::Result<Instruction, String> {
    let need = |operand: Option<&str>| -> std::result::Result<String, String> {
        operand
            .map(str::to_owned)
            .ok_or_else(|| "missing operand".to_owned())
    };
    let none = |operand: Option<&str>, instruction: Instruction| {
        if operand.is_some() {
            Err("unexpected operand".to_owned())
        } else {
            Ok(instruction)
        }
    };
    let parse_u8 = |s: String| s.parse::<u8>().map_err(|e| e.to_string());
    let parse_u32 = |s: String| s.parse::<u32>().map_err(|e| e.to_string());
    let parse_i64 = |s: String| s.parse::<i64>().map_err(|e| e.to_string());
    let resolve_label = |s: String| -> std::result::Result<u16, String> {
        if let Ok(direct) = s.parse::<u16>() {
            return Ok(direct);
        }
        labels
            .get(&s)
            .copied()
            .ok_or_else(|| format!("undefined label {s}"))
    };

    match mnemonic {
        "nop" => none(operand, Instruction::Nop),
        "push_const" => {
            let literal = need(operand)?;
            let value = parse_literal(&literal)?;
            let index = program.intern_constant(value);
            Ok(Instruction::PushConst(index))
        }
        "push_int" => Ok(Instruction::PushInt(parse_i64(need(operand)?)?)),
        "dup" => none(operand, Instruction::Dup),
        "pop" => none(operand, Instruction::Pop),
        "swap" => none(operand, Instruction::Swap),
        "load" => Ok(Instruction::Load(parse_u8(need(operand)?)?)),
        "store" => Ok(Instruction::Store(parse_u8(need(operand)?)?)),
        "add" => none(operand, Instruction::Add),
        "sub" => none(operand, Instruction::Sub),
        "mul" => none(operand, Instruction::Mul),
        "div" => none(operand, Instruction::Div),
        "rem" => none(operand, Instruction::Rem),
        "neg" => none(operand, Instruction::Neg),
        "eq" => none(operand, Instruction::Eq),
        "ne" => none(operand, Instruction::Ne),
        "lt" => none(operand, Instruction::Lt),
        "le" => none(operand, Instruction::Le),
        "gt" => none(operand, Instruction::Gt),
        "ge" => none(operand, Instruction::Ge),
        "and" => none(operand, Instruction::And),
        "or" => none(operand, Instruction::Or),
        "not" => none(operand, Instruction::Not),
        "jump" => Ok(Instruction::Jump(resolve_label(need(operand)?)?)),
        "jump_if_false" => Ok(Instruction::JumpIfFalse(resolve_label(need(operand)?)?)),
        "jump_if_true" => Ok(Instruction::JumpIfTrue(resolve_label(need(operand)?)?)),
        "read_port" => Ok(Instruction::ReadPort(parse_u32(need(operand)?)?)),
        "take_port" => Ok(Instruction::TakePort(parse_u32(need(operand)?)?)),
        "write_port" => Ok(Instruction::WritePort(parse_u32(need(operand)?)?)),
        "port_pending" => Ok(Instruction::PortPending(parse_u32(need(operand)?)?)),
        "make_list" => Ok(Instruction::MakeList(parse_u8(need(operand)?)?)),
        "list_get" => none(operand, Instruction::ListGet),
        "list_len" => none(operand, Instruction::ListLen),
        "log" => none(operand, Instruction::Log),
        "yield" => none(operand, Instruction::Yield),
        "halt" => none(operand, Instruction::Halt),
        other => Err(format!("unknown mnemonic {other}")),
    }
}

fn parse_literal(literal: &str) -> std::result::Result<Value, String> {
    let literal = literal.trim();
    if literal == "void" {
        return Ok(Value::Void);
    }
    if literal == "true" {
        return Ok(Value::Bool(true));
    }
    if literal == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(stripped) = literal.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| "unterminated string literal".to_owned())?;
        return Ok(Value::Text(inner.to_owned()));
    }
    if literal.contains('.') {
        return literal
            .parse::<f64>()
            .map(Value::F64)
            .map_err(|e| e.to_string());
    }
    literal
        .parse::<i64>()
        .map(Value::I64)
        .map_err(|e| e.to_string())
}

/// Renders a program back into assembly text (labels are emitted as numeric
/// targets).
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    out.push_str(&format!("; program {}\n", program.name()));
    for (index, constant) in program.constants().iter().enumerate() {
        out.push_str(&format!("; const #{index} = {constant}\n"));
    }
    for (pc, instruction) in program.code().iter().enumerate() {
        out.push_str(&format!("{pc:>5}: {instruction}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_labels_and_literals() {
        let program = assemble(
            "t",
            r#"
            ; copy one value
            push_const "hello"
            store 0
        again:
            load 0
            write_port 0
            jump again
            "#,
        )
        .unwrap();
        assert_eq!(program.constants(), &[Value::Text("hello".into())]);
        assert_eq!(program.code().len(), 5);
        assert_eq!(program.code()[4], Instruction::Jump(2));
    }

    #[test]
    fn duplicate_constants_are_interned() {
        let program = assemble(
            "t",
            r#"
            push_const 1.5
            push_const 1.5
            push_const 2.5
            halt
            "#,
        )
        .unwrap();
        assert_eq!(program.constants().len(), 2);
    }

    #[test]
    fn literal_forms() {
        let program = assemble(
            "t",
            r#"
            push_const true
            push_const false
            push_const void
            push_const -17
            push_const 3.5
            push_const "text"
            halt
            "#,
        )
        .unwrap();
        assert_eq!(
            program.constants(),
            &[
                Value::Bool(true),
                Value::Bool(false),
                Value::Void,
                Value::I64(-17),
                Value::F64(3.5),
                Value::Text("text".into()),
            ]
        );
    }

    #[test]
    fn error_reports_line_number() {
        let err = assemble("t", "nop\nbogus_op 3\n").unwrap_err();
        let message = err.to_string();
        assert!(message.contains("line 2"), "{message}");
        assert!(message.contains("bogus_op"), "{message}");
    }

    #[test]
    fn undefined_label_is_rejected() {
        assert!(assemble("t", "jump nowhere").is_err());
    }

    #[test]
    fn duplicate_label_is_rejected() {
        assert!(assemble("t", "a:\nnop\na:\nnop").is_err());
    }

    #[test]
    fn operand_arity_is_checked() {
        assert!(assemble("t", "push_int").is_err());
        assert!(assemble("t", "halt 3").is_err());
        assert!(assemble("t", "load 999").is_err());
        assert!(assemble("t", "push_const \"unterminated").is_err());
    }

    #[test]
    fn numeric_jump_targets_are_accepted() {
        let program = assemble("t", "nop\njump 0").unwrap();
        assert_eq!(program.code()[1], Instruction::Jump(0));
    }

    #[test]
    fn disassembly_mentions_every_instruction() {
        let program = assemble(
            "demo",
            r#"
            push_const "x"
            log
            halt
            "#,
        )
        .unwrap();
        let text = disassemble(&program);
        assert!(text.contains("program demo"));
        assert!(text.contains("push_const"));
        assert!(text.contains("halt"));
        assert!(text.contains("const #0"));
    }

    #[test]
    fn assembled_programs_survive_binary_round_trip() {
        let program = assemble(
            "t",
            r#"
        loop:
            port_pending 0
            push_int 0
            gt
            jump_if_false idle
            take_port 0
            write_port 1
        idle:
            yield
            jump loop
            "#,
        )
        .unwrap();
        let bytes = program.to_bytes();
        assert_eq!(Program::from_bytes(&bytes).unwrap(), program);
    }
}
