//! Engine selection: which execution plane a plug-in runs on.
//!
//! The PIRTE instantiates every plug-in through [`Engine::new`], picking a
//! plane per software component via [`ExecMode`].  `Compiled` is the
//! default production plane; `Interpreter` keeps the reference engine
//! available for debugging and as the baseline in benchmarks; `Shadow`
//! runs both planes in lock-step asserting observable equivalence on live
//! traffic (see [`crate::shadow`]).

use std::fmt;

use serde::{Deserialize, Serialize};

use dynar_foundation::error::Result;

use crate::budget::Budget;
use crate::compiled::{CompiledVm, FusionCounters};
use crate::interpreter::{PortHost, SlotReport, Vm, VmStatus};
use crate::program::Program;
use crate::shadow::ShadowVm;

/// Which execution plane a plug-in runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecMode {
    /// The reference interpreter (slow plane).
    Interpreter,
    /// The compiled fast plane — the production default.
    #[default]
    Compiled,
    /// Both planes in lock-step, panicking on any observable divergence.
    Shadow,
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ExecMode::Interpreter => "interpreter",
            ExecMode::Compiled => "compiled",
            ExecMode::Shadow => "shadow",
        };
        f.write_str(name)
    }
}

/// A plug-in virtual machine on one of the execution planes.
///
/// Every variant exposes the same observable machine semantics; see
/// [`crate::compiled`] for the equivalence guarantee.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Engine {
    /// The reference interpreter.
    Interpreter(Vm),
    /// The compiled fast plane.
    Compiled(CompiledVm),
    /// Lock-step shadow execution of both planes (boxed: it carries both
    /// machines plus the event tape, dwarfing the other variants).
    Shadow(Box<ShadowVm>),
}

impl Engine {
    /// Loads `program` onto the plane selected by `mode`.  For the compiled
    /// and shadow planes this is where install-time compilation happens.
    ///
    /// # Errors
    ///
    /// Returns the typed validation error for a malformed program.
    pub fn new(program: Program, budget: Budget, mode: ExecMode) -> Result<Self> {
        Ok(match mode {
            ExecMode::Interpreter => Engine::Interpreter(Vm::new(program, budget)),
            ExecMode::Compiled => Engine::Compiled(CompiledVm::compile(program, budget)?),
            ExecMode::Shadow => Engine::Shadow(Box::new(ShadowVm::new(program, budget)?)),
        })
    }

    /// The plane this engine runs on.
    pub fn mode(&self) -> ExecMode {
        match self {
            Engine::Interpreter(_) => ExecMode::Interpreter,
            Engine::Compiled(_) => ExecMode::Compiled,
            Engine::Shadow(_) => ExecMode::Shadow,
        }
    }

    /// Runs one best-effort execution slot against `host`.
    ///
    /// # Errors
    ///
    /// Returns the fault that stopped the program (the machine transitions
    /// to [`VmStatus::Faulted`] and stays there).
    pub fn run_slot(&mut self, host: &mut dyn PortHost) -> Result<SlotReport> {
        match self {
            Engine::Interpreter(vm) => vm.run_slot(host),
            Engine::Compiled(vm) => vm.run_slot(host),
            Engine::Shadow(vm) => vm.run_slot(host),
        }
    }

    /// Resets the machine to the start of its program.
    pub fn reset(&mut self) {
        match self {
            Engine::Interpreter(vm) => vm.reset(),
            Engine::Compiled(vm) => vm.reset(),
            Engine::Shadow(vm) => vm.reset(),
        }
    }

    /// The portable source program.
    pub fn program(&self) -> &Program {
        match self {
            Engine::Interpreter(vm) => vm.program(),
            Engine::Compiled(vm) => vm.program(),
            Engine::Shadow(vm) => vm.program(),
        }
    }

    /// The budget the machine runs under.
    pub fn budget(&self) -> Budget {
        match self {
            Engine::Interpreter(vm) => vm.budget(),
            Engine::Compiled(vm) => vm.budget(),
            Engine::Shadow(vm) => vm.budget(),
        }
    }

    /// Current machine status.
    pub fn status(&self) -> VmStatus {
        match self {
            Engine::Interpreter(vm) => vm.status(),
            Engine::Compiled(vm) => vm.status(),
            Engine::Shadow(vm) => vm.status(),
        }
    }

    /// Total instructions executed since the program was loaded.
    pub fn total_instructions(&self) -> u64 {
        match self {
            Engine::Interpreter(vm) => vm.total_instructions(),
            Engine::Compiled(vm) => vm.total_instructions(),
            Engine::Shadow(vm) => vm.total_instructions(),
        }
    }

    /// Number of execution slots granted so far.
    pub fn slots_run(&self) -> u64 {
        match self {
            Engine::Interpreter(vm) => vm.slots_run(),
            Engine::Compiled(vm) => vm.slots_run(),
            Engine::Shadow(vm) => vm.slots_run(),
        }
    }

    /// Superinstruction execution counters (zero on the interpreter plane,
    /// which has no fast path).
    pub fn fusion_counters(&self) -> FusionCounters {
        match self {
            Engine::Interpreter(_) => FusionCounters::default(),
            Engine::Compiled(vm) => vm.fusion_counters(),
            Engine::Shadow(vm) => vm.fusion_counters(),
        }
    }
}
