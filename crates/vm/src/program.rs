//! Plug-in programs and their portable binary format.
//!
//! A [`Program`] is what the trusted server stores in its `APP` database and
//! what travels inside installation packages: a constant pool of [`Value`]s
//! plus a code section.  The binary format is deliberately simple and
//! versioned so that a vehicle can reject packages built for a newer format.

use serde::{Deserialize, Serialize};

use dynar_foundation::codec::{decode_prefix, encode_into};
use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::value::Value;

use crate::isa::Instruction;

/// Magic bytes identifying a plug-in binary.
pub const MAGIC: &[u8; 4] = b"DPLG";
/// Current binary format version.
pub const FORMAT_VERSION: u8 = 1;

/// A complete plug-in program.
///
/// # Example
/// ```
/// use dynar_vm::isa::Instruction;
/// use dynar_vm::program::Program;
/// use dynar_foundation::value::Value;
///
/// # fn main() -> Result<(), dynar_foundation::error::DynarError> {
/// let program = Program::new("blinker")
///     .with_constant(Value::Text("on".into()))
///     .with_code(vec![Instruction::PushConst(0), Instruction::WritePort(0), Instruction::Halt]);
/// let bytes = program.to_bytes();
/// assert_eq!(Program::from_bytes(&bytes)?, program);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    name: String,
    constants: Vec<Value>,
    code: Vec<Instruction>,
}

impl Program {
    /// Creates an empty program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            constants: Vec::new(),
            code: Vec::new(),
        }
    }

    /// Adds one constant to the pool.
    #[must_use]
    pub fn with_constant(mut self, value: Value) -> Self {
        self.constants.push(value);
        self
    }

    /// Replaces the code section.
    #[must_use]
    pub fn with_code(mut self, code: Vec<Instruction>) -> Self {
        self.code = code;
        self
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The constant pool.
    pub fn constants(&self) -> &[Value] {
        &self.constants
    }

    /// The code section.
    pub fn code(&self) -> &[Instruction] {
        &self.code
    }

    /// Adds a constant, returning its pool index (reusing an identical
    /// existing entry when possible).
    pub fn intern_constant(&mut self, value: Value) -> u16 {
        if let Some(index) = self.constants.iter().position(|c| *c == value) {
            return index as u16;
        }
        self.constants.push(value);
        (self.constants.len() - 1) as u16
    }

    /// Appends one instruction.
    pub fn push_instruction(&mut self, instruction: Instruction) {
        self.code.push(instruction);
    }

    /// Verifies structural well-formedness: jump targets inside the code
    /// section and constant references inside the pool.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::InvalidConfiguration`] describing the first
    /// problem found.
    pub fn validate(&self) -> Result<()> {
        let len = self.code.len();
        for (pc, instruction) in self.code.iter().enumerate() {
            match instruction {
                Instruction::Jump(t) | Instruction::JumpIfFalse(t) | Instruction::JumpIfTrue(t)
                    if *t as usize >= len =>
                {
                    return Err(DynarError::invalid_config(format!(
                        "jump target {t} at pc {pc} outside program of {len} instructions"
                    )));
                }
                Instruction::PushConst(index) if *index as usize >= self.constants.len() => {
                    return Err(DynarError::invalid_config(format!(
                        "constant #{index} at pc {pc} outside pool of {}",
                        self.constants.len()
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Serializes the program into the portable binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(FORMAT_VERSION);
        out.extend_from_slice(&(self.name.len() as u16).to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&(self.constants.len() as u16).to_le_bytes());
        for constant in &self.constants {
            encode_into(constant, &mut out);
        }
        out.extend_from_slice(&(self.code.len() as u32).to_le_bytes());
        for instruction in &self.code {
            encode_instruction(instruction, &mut out);
        }
        out
    }

    /// Parses a program from its portable binary format.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for malformed input and
    /// [`DynarError::InvalidConfiguration`] when the parsed program fails
    /// [`Program::validate`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let truncated = || DynarError::ProtocolViolation("truncated plug-in binary".into());
        if bytes.get(..4) != Some(MAGIC.as_slice()) {
            return Err(DynarError::ProtocolViolation(
                "missing plug-in binary magic".into(),
            ));
        }
        let version = *bytes.get(4).ok_or_else(truncated)?;
        if version != FORMAT_VERSION {
            return Err(DynarError::ProtocolViolation(format!(
                "unsupported plug-in binary format version {version}"
            )));
        }
        let mut offset = 5;
        let name_len =
            u16::from_le_bytes(read_array::<2>(bytes, &mut offset).ok_or_else(truncated)?) as usize;
        let name_bytes = bytes.get(offset..offset + name_len).ok_or_else(truncated)?;
        let name = String::from_utf8(name_bytes.to_vec())
            .map_err(|_| DynarError::ProtocolViolation("program name is not UTF-8".into()))?;
        offset += name_len;

        let constant_count =
            u16::from_le_bytes(read_array::<2>(bytes, &mut offset).ok_or_else(truncated)?) as usize;
        let mut constants = Vec::with_capacity(constant_count);
        for _ in 0..constant_count {
            let (value, used) = decode_prefix(bytes.get(offset..).ok_or_else(truncated)?)?;
            constants.push(value);
            offset += used;
        }

        let code_len =
            u32::from_le_bytes(read_array::<4>(bytes, &mut offset).ok_or_else(truncated)?) as usize;
        let mut code = Vec::with_capacity(code_len.min(65_536));
        for _ in 0..code_len {
            let instruction = decode_instruction(bytes, &mut offset)?;
            code.push(instruction);
        }
        if offset != bytes.len() {
            return Err(DynarError::ProtocolViolation(format!(
                "{} trailing bytes after plug-in binary",
                bytes.len() - offset
            )));
        }
        let program = Program {
            name,
            constants,
            code,
        };
        program.validate()?;
        Ok(program)
    }
}

fn read_array<const N: usize>(bytes: &[u8], offset: &mut usize) -> Option<[u8; N]> {
    let slice = bytes.get(*offset..*offset + N)?;
    *offset += N;
    Some(slice.try_into().expect("slice length checked"))
}

fn encode_instruction(instruction: &Instruction, out: &mut Vec<u8>) {
    out.push(instruction.opcode());
    match instruction {
        Instruction::PushConst(v) => out.extend_from_slice(&v.to_le_bytes()),
        Instruction::PushInt(v) => out.extend_from_slice(&v.to_le_bytes()),
        Instruction::Load(v) | Instruction::Store(v) | Instruction::MakeList(v) => out.push(*v),
        Instruction::Jump(v) | Instruction::JumpIfFalse(v) | Instruction::JumpIfTrue(v) => {
            out.extend_from_slice(&v.to_le_bytes())
        }
        Instruction::ReadPort(v)
        | Instruction::TakePort(v)
        | Instruction::WritePort(v)
        | Instruction::PortPending(v) => out.extend_from_slice(&v.to_le_bytes()),
        _ => {}
    }
}

fn decode_instruction(bytes: &[u8], offset: &mut usize) -> Result<Instruction> {
    let truncated = || DynarError::ProtocolViolation("truncated instruction stream".into());
    let opcode = *bytes.get(*offset).ok_or_else(truncated)?;
    *offset += 1;
    let mut u16_operand = || -> Result<u16> {
        read_array::<2>(bytes, offset)
            .map(u16::from_le_bytes)
            .ok_or_else(truncated)
    };
    let instruction = match opcode {
        0x00 => Instruction::Nop,
        0x01 => Instruction::PushConst(u16_operand()?),
        0x02 => Instruction::PushInt(i64::from_le_bytes(
            read_array::<8>(bytes, offset).ok_or_else(truncated)?,
        )),
        0x03 => Instruction::Dup,
        0x04 => Instruction::Pop,
        0x05 => Instruction::Swap,
        0x06 => Instruction::Load(*bytes.get(post_inc(offset)).ok_or_else(truncated)?),
        0x07 => Instruction::Store(*bytes.get(post_inc(offset)).ok_or_else(truncated)?),
        0x10 => Instruction::Add,
        0x11 => Instruction::Sub,
        0x12 => Instruction::Mul,
        0x13 => Instruction::Div,
        0x14 => Instruction::Rem,
        0x15 => Instruction::Neg,
        0x20 => Instruction::Eq,
        0x21 => Instruction::Ne,
        0x22 => Instruction::Lt,
        0x23 => Instruction::Le,
        0x24 => Instruction::Gt,
        0x25 => Instruction::Ge,
        0x26 => Instruction::And,
        0x27 => Instruction::Or,
        0x28 => Instruction::Not,
        0x30 => Instruction::Jump(u16_operand()?),
        0x31 => Instruction::JumpIfFalse(u16_operand()?),
        0x32 => Instruction::JumpIfTrue(u16_operand()?),
        0x40 => Instruction::ReadPort(u32::from_le_bytes(
            read_array::<4>(bytes, offset).ok_or_else(truncated)?,
        )),
        0x41 => Instruction::TakePort(u32::from_le_bytes(
            read_array::<4>(bytes, offset).ok_or_else(truncated)?,
        )),
        0x42 => Instruction::WritePort(u32::from_le_bytes(
            read_array::<4>(bytes, offset).ok_or_else(truncated)?,
        )),
        0x43 => Instruction::PortPending(u32::from_le_bytes(
            read_array::<4>(bytes, offset).ok_or_else(truncated)?,
        )),
        0x50 => Instruction::MakeList(*bytes.get(post_inc(offset)).ok_or_else(truncated)?),
        0x51 => Instruction::ListGet,
        0x52 => Instruction::ListLen,
        0x60 => Instruction::Log,
        0x70 => Instruction::Yield,
        0x71 => Instruction::Halt,
        other => {
            return Err(DynarError::ProtocolViolation(format!(
                "unknown opcode {other:#04x}"
            )))
        }
    };
    Ok(instruction)
}

fn post_inc(offset: &mut usize) -> usize {
    let current = *offset;
    *offset += 1;
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program::new("sample")
            .with_constant(Value::Text("Wheels".into()))
            .with_constant(Value::F64(0.5))
            .with_code(vec![
                Instruction::PushConst(0),
                Instruction::Log,
                Instruction::PushConst(1),
                Instruction::PushInt(2),
                Instruction::Mul,
                Instruction::WritePort(3),
                Instruction::Jump(0),
            ])
    }

    #[test]
    fn binary_round_trip() {
        let program = sample();
        let bytes = program.to_bytes();
        assert_eq!(Program::from_bytes(&bytes).unwrap(), program);
    }

    #[test]
    fn every_instruction_round_trips() {
        let mut program = Program::new("all").with_constant(Value::Void);
        let all = vec![
            Instruction::Nop,
            Instruction::PushConst(0),
            Instruction::PushInt(-7),
            Instruction::Dup,
            Instruction::Pop,
            Instruction::Swap,
            Instruction::Load(3),
            Instruction::Store(4),
            Instruction::Add,
            Instruction::Sub,
            Instruction::Mul,
            Instruction::Div,
            Instruction::Rem,
            Instruction::Neg,
            Instruction::Eq,
            Instruction::Ne,
            Instruction::Lt,
            Instruction::Le,
            Instruction::Gt,
            Instruction::Ge,
            Instruction::And,
            Instruction::Or,
            Instruction::Not,
            Instruction::Jump(0),
            Instruction::JumpIfFalse(1),
            Instruction::JumpIfTrue(2),
            Instruction::ReadPort(9),
            Instruction::TakePort(10),
            Instruction::WritePort(11),
            Instruction::PortPending(12),
            Instruction::MakeList(2),
            Instruction::ListGet,
            Instruction::ListLen,
            Instruction::Log,
            Instruction::Yield,
            Instruction::Halt,
        ];
        for instruction in all {
            program.push_instruction(instruction);
        }
        let bytes = program.to_bytes();
        assert_eq!(Program::from_bytes(&bytes).unwrap(), program);
    }

    #[test]
    fn magic_and_version_are_checked() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(Program::from_bytes(&bytes).is_err());

        let mut bytes = sample().to_bytes();
        bytes[4] = 99;
        assert!(Program::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let bytes = sample().to_bytes();
        assert!(Program::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Program::from_bytes(&extended).is_err());
        assert!(Program::from_bytes(&[]).is_err());
    }

    #[test]
    fn validate_catches_bad_references() {
        let bad_jump = Program::new("p").with_code(vec![Instruction::Jump(9)]);
        assert!(bad_jump.validate().is_err());
        let bad_const = Program::new("p").with_code(vec![Instruction::PushConst(0)]);
        assert!(bad_const.validate().is_err());
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn intern_constant_reuses_entries() {
        let mut program = Program::new("p");
        let a = program.intern_constant(Value::Text("x".into()));
        let b = program.intern_constant(Value::Text("x".into()));
        let c = program.intern_constant(Value::Text("y".into()));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(program.constants().len(), 2);
    }

    #[test]
    fn from_bytes_rejects_invalid_program_structure() {
        let program = Program::new("p").with_code(vec![Instruction::Jump(5)]);
        let bytes = program.to_bytes();
        assert!(
            Program::from_bytes(&bytes).is_err(),
            "deserialization validates jump targets"
        );
    }
}
