//! Operand and arithmetic helpers shared by both execution planes.
//!
//! The reference interpreter ([`crate::interpreter::Vm`]) and the compiled
//! fast plane ([`crate::compiled::CompiledVm`]) must produce byte-identical
//! observable behaviour — including every fault message.  The only way to
//! keep that property maintainable is to have exactly one implementation of
//! the value-level semantics: arithmetic (with its promotion, division-by-
//! zero and overflow rules), comparisons, equality and negation all live
//! here and are called from both engines.
//!
//! Moving the helpers out of the interpreter also surfaced (and fixed) a
//! latent inconsistency: the old interpreter used `wrapping_*` integer
//! arithmetic and a bare `-v` negation, so `i64::MIN` negation panicked in
//! debug builds and silently wrapped in release builds.  Both planes now
//! fault with a typed `VmFault("integer overflow in <op>")` instead.

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::value::Value;

/// Control-flow outcome of executing one instruction.
pub(crate) enum Flow {
    /// Fall through to the next instruction.
    Continue,
    /// End the slot; resume at the next instruction next slot.
    Yield,
    /// End the program permanently.
    Halt,
}

/// The five binary arithmetic operations, shared by both planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ArithOp {
    /// `second + top`.
    Add,
    /// `second - top`.
    Sub,
    /// `second * top`.
    Mul,
    /// `second / top`.
    Div,
    /// `second % top`.
    Rem,
}

impl ArithOp {
    /// The assembler mnemonic, used in overflow fault messages.
    pub(crate) fn mnemonic(self) -> &'static str {
        match self {
            ArithOp::Add => "add",
            ArithOp::Sub => "sub",
            ArithOp::Mul => "mul",
            ArithOp::Div => "div",
            ArithOp::Rem => "rem",
        }
    }
}

/// The four numeric ordering comparisons, shared by both planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpOp {
    /// `second < top`.
    Lt,
    /// `second <= top`.
    Le,
    /// `second > top`.
    Gt,
    /// `second >= top`.
    Ge,
}

pub(crate) fn type_fault(expected: &'static str) -> impl Fn() -> DynarError {
    move || DynarError::VmFault(format!("expected a {expected} value on the stack"))
}

pub(crate) fn to_vm_fault(err: DynarError) -> DynarError {
    DynarError::VmFault(err.to_string())
}

fn overflow_fault(op: ArithOp) -> DynarError {
    DynarError::VmFault(format!("integer overflow in {}", op.mnemonic()))
}

fn division_by_zero() -> DynarError {
    DynarError::VmFault("division by zero".into())
}

/// Equality over values, with numeric types compared by value (so
/// `2 == 2.0`), everything else structurally.
pub(crate) fn values_equal(left: &Value, right: &Value) -> bool {
    match (left.as_f64(), right.as_f64()) {
        (Some(a), Some(b)) => a == b,
        _ => left == right,
    }
}

/// Checked integer arithmetic: division/remainder by zero and overflow
/// (including `i64::MIN / -1` and `i64::MIN % -1`) fault instead of
/// wrapping.  Used directly by the fused fast paths, and through
/// [`arithmetic`] by both single-step engines.
pub(crate) fn int_arithmetic(op: ArithOp, a: i64, b: i64) -> Result<i64> {
    let result = match op {
        ArithOp::Add => a.checked_add(b),
        ArithOp::Sub => a.checked_sub(b),
        ArithOp::Mul => a.checked_mul(b),
        ArithOp::Div => {
            if b == 0 {
                return Err(division_by_zero());
            }
            a.checked_div(b)
        }
        ArithOp::Rem => {
            if b == 0 {
                return Err(division_by_zero());
            }
            a.checked_rem(b)
        }
    };
    result.ok_or_else(|| overflow_fault(op))
}

/// Binary arithmetic with float promotion: if either operand is `F64` the
/// operation happens in floating point, otherwise in checked 64-bit integer
/// arithmetic (booleans widen to integers, like everywhere else `as_i64`
/// applies).
pub(crate) fn arithmetic(op: ArithOp, left: &Value, right: &Value) -> Result<Value> {
    let float = matches!(left, Value::F64(_)) || matches!(right, Value::F64(_));
    if float {
        let a = left.as_f64().ok_or_else(type_fault("number"))?;
        let b = right.as_f64().ok_or_else(type_fault("number"))?;
        let result = match op {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => {
                if b == 0.0 {
                    return Err(division_by_zero());
                }
                a / b
            }
            ArithOp::Rem => {
                if b == 0.0 {
                    return Err(division_by_zero());
                }
                a % b
            }
        };
        Ok(Value::F64(result))
    } else {
        let a = left.as_i64().ok_or_else(type_fault("number"))?;
        let b = right.as_i64().ok_or_else(type_fault("number"))?;
        Ok(Value::I64(int_arithmetic(op, a, b)?))
    }
}

/// Numeric ordering comparison as a bare boolean (both operands must be
/// numbers).
pub(crate) fn compare_bool(op: CmpOp, left: &Value, right: &Value) -> Result<bool> {
    let a = left.as_f64().ok_or_else(type_fault("number"))?;
    let b = right.as_f64().ok_or_else(type_fault("number"))?;
    Ok(match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    })
}

/// Numeric ordering comparison as a stack value.
pub(crate) fn compare(op: CmpOp, left: &Value, right: &Value) -> Result<Value> {
    Ok(Value::Bool(compare_bool(op, left, right)?))
}

/// Numeric negation with a checked integer path (`-i64::MIN` faults).
pub(crate) fn negate(value: Value) -> Result<Value> {
    match value {
        Value::I64(v) => v
            .checked_neg()
            .map(Value::I64)
            .ok_or_else(|| DynarError::VmFault("integer overflow in neg".into())),
        Value::F64(v) => Ok(Value::F64(-v)),
        other => Err(DynarError::VmFault(format!(
            "cannot negate a {} value",
            other.kind()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_overflow_faults_instead_of_wrapping() {
        assert!(int_arithmetic(ArithOp::Add, i64::MAX, 1).is_err());
        assert!(int_arithmetic(ArithOp::Sub, i64::MIN, 1).is_err());
        assert!(int_arithmetic(ArithOp::Mul, i64::MAX, 2).is_err());
        assert!(int_arithmetic(ArithOp::Div, i64::MIN, -1).is_err());
        assert!(int_arithmetic(ArithOp::Rem, i64::MIN, -1).is_err());
        assert_eq!(int_arithmetic(ArithOp::Add, 2, 3).unwrap(), 5);
    }

    #[test]
    fn negation_of_min_faults() {
        assert!(negate(Value::I64(i64::MIN)).is_err());
        assert_eq!(negate(Value::I64(7)).unwrap(), Value::I64(-7));
        assert_eq!(negate(Value::F64(2.5)).unwrap(), Value::F64(-2.5));
        assert!(negate(Value::Text("x".into())).is_err());
    }

    #[test]
    fn division_by_zero_faults_in_both_domains() {
        assert!(int_arithmetic(ArithOp::Div, 1, 0).is_err());
        assert!(int_arithmetic(ArithOp::Rem, 1, 0).is_err());
        assert!(arithmetic(ArithOp::Div, &Value::F64(1.0), &Value::F64(0.0)).is_err());
    }
}
