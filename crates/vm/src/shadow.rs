//! Shadow execution: the fast plane proven against the reference engine.
//!
//! A [`ShadowVm`] runs every slot twice — once on the compiled fast plane
//! against the real [`PortHost`] (so effects happen exactly once), recording
//! every host interaction, and once on the reference interpreter against a
//! replay of that recording.  After each slot it asserts that both engines
//! produced identical observables: the slot report, status, program
//! counter, stack, locals, incremental memory footprint and lifetime
//! instruction counts, plus the exact sequence of port reads/takes/writes
//! and log lines.  Any divergence panics with a diagnostic naming the
//! program and the mismatching field — the `routing_equivalence`-style
//! proof, applied to the execution plane and runnable in production via
//! [`crate::engine::ExecMode::Shadow`].

use serde::{Deserialize, Serialize};

use dynar_foundation::error::Result;
use dynar_foundation::value::Value;

use crate::budget::Budget;
use crate::compiled::{CompiledVm, FusionCounters};
use crate::interpreter::{PortHost, SlotReport, Vm, VmStatus};
use crate::program::Program;

/// One recorded host interaction (call arguments plus the host's answer).
#[derive(Debug, Clone)]
enum HostEvent {
    Read(u32, Result<Value>),
    Take(u32, Result<Value>),
    Write(u32, Value, Result<()>),
    Pending(u32, Result<usize>),
    Log(String),
}

/// Bit-exact value identity: like `PartialEq` but `F64` compares by bit
/// pattern, so `NaN` results do not read as a (spurious) divergence and
/// `-0.0` vs `0.0` *does*.
fn values_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
        (Value::List(x), Value::List(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| values_identical(a, b))
        }
        _ => a == b,
    }
}

fn slices_identical(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(a, b)| values_identical(a, b))
}

/// Forwards to the real host and records every interaction.
struct RecordingHost<'a> {
    inner: &'a mut dyn PortHost,
    events: &'a mut Vec<HostEvent>,
}

impl PortHost for RecordingHost<'_> {
    fn read_port(&mut self, slot: u32) -> Result<Value> {
        let result = self.inner.read_port(slot);
        self.events.push(HostEvent::Read(slot, result.clone()));
        result
    }
    fn take_port(&mut self, slot: u32) -> Result<Value> {
        let result = self.inner.take_port(slot);
        self.events.push(HostEvent::Take(slot, result.clone()));
        result
    }
    fn write_port(&mut self, slot: u32, value: Value) -> Result<()> {
        let result = self.inner.write_port(slot, value.clone());
        self.events
            .push(HostEvent::Write(slot, value, result.clone()));
        result
    }
    fn pending(&mut self, slot: u32) -> Result<usize> {
        let result = self.inner.pending(slot);
        self.events.push(HostEvent::Pending(slot, result.clone()));
        result
    }
    fn log(&mut self, message: &str) {
        self.inner.log(message);
        self.events.push(HostEvent::Log(message.to_owned()));
    }
}

/// Replays a recording to the reference engine, asserting it performs the
/// same calls with the same arguments in the same order.
struct ReplayHost<'a> {
    program: &'a str,
    events: &'a [HostEvent],
    cursor: usize,
}

impl ReplayHost<'_> {
    fn next(&mut self, call: &str) -> &HostEvent {
        let Some(event) = self.events.get(self.cursor) else {
            panic!(
                "shadow divergence in '{}': reference engine issued an extra \
                 host call {call} (fast plane made {} calls)",
                self.program,
                self.events.len()
            );
        };
        self.cursor += 1;
        event
    }

    fn diverged(&self, call: &str, event: &HostEvent) -> ! {
        panic!(
            "shadow divergence in '{}': reference engine host call #{} was \
             {call}, but the fast plane recorded {event:?}",
            self.program, self.cursor
        );
    }
}

impl PortHost for ReplayHost<'_> {
    fn read_port(&mut self, slot: u32) -> Result<Value> {
        match self.next("read_port") {
            HostEvent::Read(s, result) if *s == slot => result.clone(),
            other => {
                let other = other.clone();
                self.diverged(&format!("read_port({slot})"), &other)
            }
        }
    }
    fn take_port(&mut self, slot: u32) -> Result<Value> {
        match self.next("take_port") {
            HostEvent::Take(s, result) if *s == slot => result.clone(),
            other => {
                let other = other.clone();
                self.diverged(&format!("take_port({slot})"), &other)
            }
        }
    }
    fn write_port(&mut self, slot: u32, value: Value) -> Result<()> {
        match self.next("write_port") {
            HostEvent::Write(s, v, result) if *s == slot && values_identical(v, &value) => {
                result.clone()
            }
            other => {
                let other = other.clone();
                self.diverged(&format!("write_port({slot}, {value:?})"), &other)
            }
        }
    }
    fn pending(&mut self, slot: u32) -> Result<usize> {
        match self.next("pending") {
            HostEvent::Pending(s, result) if *s == slot => result.clone(),
            other => {
                let other = other.clone();
                self.diverged(&format!("pending({slot})"), &other)
            }
        }
    }
    fn log(&mut self, message: &str) {
        match self.next("log") {
            HostEvent::Log(m) if m == message => {}
            other => {
                let other = other.clone();
                self.diverged(&format!("log({message:?})"), &other)
            }
        }
    }
}

/// Both execution planes in lock-step, asserting observable equivalence
/// after every slot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShadowVm {
    fast: CompiledVm,
    reference: Vm,
    events: Vec<HostEvent>,
}

impl ShadowVm {
    /// Compiles `program` for the fast plane and loads the same program
    /// into the reference interpreter.
    ///
    /// # Errors
    ///
    /// Returns the typed validation error for a malformed program.
    pub fn new(program: Program, budget: Budget) -> Result<Self> {
        let fast = CompiledVm::compile(program.clone(), budget)?;
        Ok(ShadowVm {
            fast,
            reference: Vm::new(program, budget),
            events: Vec::new(),
        })
    }

    /// The portable source program.
    pub fn program(&self) -> &Program {
        self.fast.program()
    }

    /// The budget both machines run under.
    pub fn budget(&self) -> Budget {
        self.fast.budget()
    }

    /// Current machine status (identical on both planes by construction).
    pub fn status(&self) -> VmStatus {
        self.fast.status()
    }

    /// Total instructions executed since the program was loaded.
    pub fn total_instructions(&self) -> u64 {
        self.fast.total_instructions()
    }

    /// Number of execution slots granted so far.
    pub fn slots_run(&self) -> u64 {
        self.fast.slots_run()
    }

    /// Superinstruction execution counters from the fast plane.
    pub fn fusion_counters(&self) -> FusionCounters {
        self.fast.fusion_counters()
    }

    /// Resets both machines to the start of the program.
    pub fn reset(&mut self) {
        self.fast.reset();
        self.reference.reset();
    }

    /// Runs one slot on the fast plane against `host` (effects happen
    /// once), replays the recorded host traffic through the reference
    /// interpreter, and asserts both engines agree on every observable.
    ///
    /// # Errors
    ///
    /// Returns the fault that stopped the program (identical on both
    /// planes, or the slot panics with a divergence diagnostic).
    ///
    /// # Panics
    ///
    /// Panics with a detailed diagnostic on any observable divergence
    /// between the two planes — that is the point.
    pub fn run_slot(&mut self, host: &mut dyn PortHost) -> Result<SlotReport> {
        self.events.clear();
        let fast_result = {
            let mut recorder = RecordingHost {
                inner: host,
                events: &mut self.events,
            };
            self.fast.run_slot(&mut recorder)
        };
        let name = self.fast.program().name().to_owned();
        let reference_result = {
            let mut replay = ReplayHost {
                program: &name,
                events: &self.events,
                cursor: 0,
            };
            let result = self.reference.run_slot(&mut replay);
            assert_eq!(
                replay.cursor,
                self.events.len(),
                "shadow divergence in '{name}': fast plane made {} host calls, \
                 reference engine replayed only {}",
                self.events.len(),
                replay.cursor
            );
            result
        };
        self.assert_converged(&name, &fast_result, &reference_result);
        fast_result
    }

    fn assert_converged(
        &self,
        name: &str,
        fast: &Result<SlotReport>,
        reference: &Result<SlotReport>,
    ) {
        match (fast, reference) {
            (Ok(a), Ok(b)) => assert_eq!(
                a, b,
                "shadow divergence in '{name}': slot reports differ \
                 (fast {a:?}, reference {b:?})"
            ),
            (Err(a), Err(b)) => assert_eq!(
                a, b,
                "shadow divergence in '{name}': faults differ \
                 (fast {a:?}, reference {b:?})"
            ),
            (a, b) => panic!(
                "shadow divergence in '{name}': outcomes differ \
                 (fast {a:?}, reference {b:?})"
            ),
        }
        assert_eq!(
            self.fast.status(),
            self.reference.status(),
            "shadow divergence in '{name}': status differs"
        );
        assert_eq!(
            self.fast.pc(),
            self.reference.pc(),
            "shadow divergence in '{name}': program counter differs"
        );
        assert_eq!(
            self.fast.total_instructions(),
            self.reference.total_instructions(),
            "shadow divergence in '{name}': lifetime instruction counts differ"
        );
        assert_eq!(
            self.fast.slots_run(),
            self.reference.slots_run(),
            "shadow divergence in '{name}': slot counts differ"
        );
        assert_eq!(
            self.fast.used_bytes(),
            self.reference.used_bytes(),
            "shadow divergence in '{name}': memory accounting differs"
        );
        assert!(
            slices_identical(self.fast.stack(), self.reference.stack()),
            "shadow divergence in '{name}': stacks differ \
             (fast {:?}, reference {:?})",
            self.fast.stack(),
            self.reference.stack()
        );
        assert!(
            slices_identical(self.fast.locals(), self.reference.locals()),
            "shadow divergence in '{name}': locals differ \
             (fast {:?}, reference {:?})",
            self.fast.locals(),
            self.reference.locals()
        );
    }
}
