//! The compiled fast execution plane.
//!
//! The portable slow plane — [`crate::isa::Instruction`], the assembler and
//! the reference interpreter — stays the system of record.  At install time
//! the PIRTE pre-decodes a validated [`Program`] into a [`CompiledProgram`]:
//! a dense, flat op array with pre-checked jump targets, pre-validated
//! constant-pool references and inlined operand immediates, plus a
//! superinstruction overlay planted by a static peephole pass over the
//! dominant scenario sequences (`load+push_int+<arith>+store`,
//! `take_port+store`, `load+write_port`, `take_port+write_port`, and
//! compare+branch fusion).  [`CompiledVm`] executes that form with a tight
//! indexed-dispatch loop.
//!
//! # Equivalence guarantee
//!
//! The fast plane is **observably byte-identical** to the interpreter: same
//! instruction counts, same statuses, same port effects and logs, same fault
//! messages at the same program counters, same incremental memory
//! accounting.  Fused ops preserve this by construction: a superinstruction
//! only executes when its weight fits in the remaining slot budget and its
//! pure preconditions guarantee the whole window succeeds (or it replicates
//! the interpreter's exact partial effects for host-error and memory-fault
//! paths); otherwise it *bails* and the window executes one op at a time
//! through the same shared semantics in [`crate::exec`].  The
//! [`crate::shadow`] engine runs both planes in lock-step and asserts the
//! equivalence on live traffic.

use serde::{Deserialize, Serialize};

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::value::Value;

use crate::budget::Budget;
use crate::exec::{self, ArithOp, CmpOp, Flow};
use crate::interpreter::{PortHost, SlotReport, VmStatus};
use crate::isa::Instruction;
use crate::program::Program;

/// A pre-decoded instruction: operands inlined, jump targets widened and
/// pre-checked, ready for indexed dispatch.  One `Op` per source
/// [`Instruction`], so program counters are directly comparable across
/// planes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Op {
    Nop,
    PushConst(u16),
    PushInt(i64),
    Dup,
    Pop,
    Swap,
    Load(u8),
    Store(u8),
    Arith(ArithOp),
    Neg,
    Eq,
    Ne,
    Cmp(CmpOp),
    And,
    Or,
    Not,
    Jump(u32),
    JumpIfFalse(u32),
    JumpIfTrue(u32),
    ReadPort(u32),
    TakePort(u32),
    WritePort(u32),
    PortPending(u32),
    MakeList(u8),
    ListGet,
    ListLen,
    Log,
    Yield,
    Halt,
}

fn decode(instruction: &Instruction) -> Op {
    match instruction {
        Instruction::Nop => Op::Nop,
        Instruction::PushConst(i) => Op::PushConst(*i),
        Instruction::PushInt(v) => Op::PushInt(*v),
        Instruction::Dup => Op::Dup,
        Instruction::Pop => Op::Pop,
        Instruction::Swap => Op::Swap,
        Instruction::Load(i) => Op::Load(*i),
        Instruction::Store(i) => Op::Store(*i),
        Instruction::Add => Op::Arith(ArithOp::Add),
        Instruction::Sub => Op::Arith(ArithOp::Sub),
        Instruction::Mul => Op::Arith(ArithOp::Mul),
        Instruction::Div => Op::Arith(ArithOp::Div),
        Instruction::Rem => Op::Arith(ArithOp::Rem),
        Instruction::Neg => Op::Neg,
        Instruction::Eq => Op::Eq,
        Instruction::Ne => Op::Ne,
        Instruction::Lt => Op::Cmp(CmpOp::Lt),
        Instruction::Le => Op::Cmp(CmpOp::Le),
        Instruction::Gt => Op::Cmp(CmpOp::Gt),
        Instruction::Ge => Op::Cmp(CmpOp::Ge),
        Instruction::And => Op::And,
        Instruction::Or => Op::Or,
        Instruction::Not => Op::Not,
        Instruction::Jump(t) => Op::Jump(u32::from(*t)),
        Instruction::JumpIfFalse(t) => Op::JumpIfFalse(u32::from(*t)),
        Instruction::JumpIfTrue(t) => Op::JumpIfTrue(u32::from(*t)),
        Instruction::ReadPort(s) => Op::ReadPort(*s),
        Instruction::TakePort(s) => Op::TakePort(*s),
        Instruction::WritePort(s) => Op::WritePort(*s),
        Instruction::PortPending(s) => Op::PortPending(*s),
        Instruction::MakeList(n) => Op::MakeList(*n),
        Instruction::ListGet => Op::ListGet,
        Instruction::ListLen => Op::ListLen,
        Instruction::Log => Op::Log,
        Instruction::Yield => Op::Yield,
        Instruction::Halt => Op::Halt,
    }
}

/// The comparison carried by a fused compare+branch window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FuseCmp {
    Eq,
    Ne,
    Ord(CmpOp),
}

/// Evaluates a fused comparison, or `None` when the operands cannot be
/// compared on the fast path (the window then bails to single-step, which
/// raises the interpreter's exact type fault).
fn fuse_cmp_eval(cmp: FuseCmp, left: &Value, right: &Value) -> Option<bool> {
    match cmp {
        FuseCmp::Eq => Some(exec::values_equal(left, right)),
        FuseCmp::Ne => Some(!exec::values_equal(left, right)),
        FuseCmp::Ord(op) => exec::compare_bool(op, left, right).ok(),
    }
}

/// A superinstruction: a fused multi-op window starting at a fixed pc.
///
/// Each variant records everything needed to execute the whole window
/// without re-dispatching, plus enough to fall back per-op when a
/// precondition is not met.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Fused {
    /// `load src; push_int imm; <arith>; store dst` — the scenario
    /// accumulate idiom (4 ops).
    LoadIntArithStore {
        src: u8,
        imm: i64,
        op: ArithOp,
        dst: u8,
    },
    /// `push_int imm; <cmp>; jump_if_* target` — the scenario loop-guard
    /// idiom (3 ops).
    PushIntCmpBranch {
        imm: i64,
        cmp: FuseCmp,
        on_true: bool,
        target: u32,
    },
    /// `take_port port; store dst` — input latch idiom (2 ops).
    TakePortStore { port: u32, dst: u8 },
    /// `load src; write_port port` — output publish idiom (2 ops).
    LoadWritePort { src: u8, port: u32 },
    /// `take_port from; write_port to` — forwarder idiom (2 ops).
    TakePortWritePort { from: u32, to: u32 },
    /// `<cmp>; jump_if_* target` — general compare+branch fusion (2 ops).
    CmpBranch {
        cmp: FuseCmp,
        on_true: bool,
        target: u32,
    },
}

impl Fused {
    /// Number of source instructions the window covers — also the number of
    /// budget units it consumes, so preemption boundaries stay identical to
    /// the interpreter.
    fn weight(self) -> u64 {
        match self {
            Fused::LoadIntArithStore { .. } => 4,
            Fused::PushIntCmpBranch { .. } => 3,
            Fused::TakePortStore { .. }
            | Fused::LoadWritePort { .. }
            | Fused::TakePortWritePort { .. }
            | Fused::CmpBranch { .. } => 2,
        }
    }
}

/// Per-kind execution counters for the superinstructions, proving the
/// peephole pass actually fires on real workloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionCounters {
    /// `load+push_int+<arith>+store` windows executed (or planted).
    pub load_arith_store: u64,
    /// `push_int+<cmp>+branch` windows executed (or planted).
    pub push_int_cmp_branch: u64,
    /// `take_port+store` windows executed (or planted).
    pub take_port_store: u64,
    /// `load+write_port` windows executed (or planted).
    pub load_write_port: u64,
    /// `take_port+write_port` windows executed (or planted).
    pub take_port_write_port: u64,
    /// `<cmp>+branch` windows executed (or planted).
    pub cmp_branch: u64,
}

impl FusionCounters {
    /// Sum over all superinstruction kinds.
    pub fn total(&self) -> u64 {
        self.load_arith_store
            + self.push_int_cmp_branch
            + self.take_port_store
            + self.load_write_port
            + self.take_port_write_port
            + self.cmp_branch
    }

    /// Adds `other` into `self` (used to aggregate across plug-ins).
    pub fn merge(&mut self, other: &FusionCounters) {
        self.load_arith_store += other.load_arith_store;
        self.push_int_cmp_branch += other.push_int_cmp_branch;
        self.take_port_store += other.take_port_store;
        self.load_write_port += other.load_write_port;
        self.take_port_write_port += other.take_port_write_port;
        self.cmp_branch += other.cmp_branch;
    }
}

fn cmp_of(op: &Op) -> Option<FuseCmp> {
    match op {
        Op::Eq => Some(FuseCmp::Eq),
        Op::Ne => Some(FuseCmp::Ne),
        Op::Cmp(c) => Some(FuseCmp::Ord(*c)),
        _ => None,
    }
}

fn branch_of(op: &Op) -> Option<(bool, u32)> {
    match op {
        Op::JumpIfFalse(t) => Some((false, *t)),
        Op::JumpIfTrue(t) => Some((true, *t)),
        _ => None,
    }
}

/// Matches the longest superinstruction starting at `pc`, if any.
fn match_fused(ops: &[Op], pc: usize) -> Option<Fused> {
    let window = &ops[pc..];
    if let [Op::Load(src), Op::PushInt(imm), Op::Arith(op), Op::Store(dst), ..] = window {
        return Some(Fused::LoadIntArithStore {
            src: *src,
            imm: *imm,
            op: *op,
            dst: *dst,
        });
    }
    if let [Op::PushInt(imm), cmp, branch, ..] = window {
        if let (Some(cmp), Some((on_true, target))) = (cmp_of(cmp), branch_of(branch)) {
            return Some(Fused::PushIntCmpBranch {
                imm: *imm,
                cmp,
                on_true,
                target,
            });
        }
    }
    if let [Op::TakePort(port), Op::Store(dst), ..] = window {
        return Some(Fused::TakePortStore {
            port: *port,
            dst: *dst,
        });
    }
    if let [Op::Load(src), Op::WritePort(port), ..] = window {
        return Some(Fused::LoadWritePort {
            src: *src,
            port: *port,
        });
    }
    if let [Op::TakePort(from), Op::WritePort(to), ..] = window {
        return Some(Fused::TakePortWritePort {
            from: *from,
            to: *to,
        });
    }
    if let [cmp, branch, ..] = window {
        if let (Some(cmp), Some((on_true, target))) = (cmp_of(cmp), branch_of(branch)) {
            return Some(Fused::CmpBranch {
                cmp,
                on_true,
                target,
            });
        }
    }
    None
}

/// Greedy, longest-first, non-overlapping peephole plant.  The overlay is
/// keyed by the window's *start* pc; ops inside a window stay in `ops`
/// unchanged, so a jump landing mid-window simply executes single-step —
/// no jump remapping, no behavioural cliff.
fn plan_superinstructions(ops: &[Op]) -> (Vec<Option<Fused>>, FusionCounters) {
    let mut fused = vec![None; ops.len()];
    let mut sites = FusionCounters::default();
    let mut pc = 0;
    while pc < ops.len() {
        if let Some(f) = match_fused(ops, pc) {
            match f {
                Fused::LoadIntArithStore { .. } => sites.load_arith_store += 1,
                Fused::PushIntCmpBranch { .. } => sites.push_int_cmp_branch += 1,
                Fused::TakePortStore { .. } => sites.take_port_store += 1,
                Fused::LoadWritePort { .. } => sites.load_write_port += 1,
                Fused::TakePortWritePort { .. } => sites.take_port_write_port += 1,
                Fused::CmpBranch { .. } => sites.cmp_branch += 1,
            }
            let weight = f.weight() as usize;
            fused[pc] = Some(f);
            pc += weight;
        } else {
            pc += 1;
        }
    }
    (fused, sites)
}

/// A program pre-decoded for the fast plane: flat ops, a flat constant
/// pool, and the superinstruction overlay.  Produced once at install time
/// by [`CompiledProgram::compile`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledProgram {
    source: Program,
    constants: Vec<Value>,
    ops: Vec<Op>,
    fused: Vec<Option<Fused>>,
    sites: FusionCounters,
}

impl CompiledProgram {
    /// Pre-decodes `program` into the dense fast-plane form.
    ///
    /// # Errors
    ///
    /// Returns the typed validation error for a malformed program (jump
    /// target or constant reference out of range) — compilation never
    /// panics, whatever the input.
    pub fn compile(program: Program) -> Result<Self> {
        program.validate()?;
        let constants = program.constants().to_vec();
        let ops: Vec<Op> = program.code().iter().map(decode).collect();
        let (fused, sites) = plan_superinstructions(&ops);
        Ok(CompiledProgram {
            source: program,
            constants,
            ops,
            fused,
            sites,
        })
    }

    /// The portable source program this was compiled from.
    pub fn source(&self) -> &Program {
        &self.source
    }

    /// The program name.
    pub fn name(&self) -> &str {
        self.source.name()
    }

    /// Number of decoded ops (equals the source instruction count).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Static counters: how many superinstruction windows the peephole pass
    /// planted, per kind.
    pub fn fusion_sites(&self) -> FusionCounters {
        self.sites
    }
}

/// A plug-in virtual machine executing the compiled fast plane.
///
/// Mirrors [`crate::interpreter::Vm`] observable-for-observable; see the
/// module docs for the equivalence guarantee.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledVm {
    program: CompiledProgram,
    budget: Budget,
    pc: usize,
    stack: Vec<Value>,
    locals: Vec<Value>,
    status: VmStatus,
    total_instructions: u64,
    slots_run: u64,
    used_bytes: usize,
    counters: FusionCounters,
}

impl CompiledVm {
    /// Loads an already-compiled program into a fresh machine.
    pub fn new(program: CompiledProgram, budget: Budget) -> Self {
        CompiledVm {
            program,
            locals: vec![Value::Void; budget.local_count()],
            budget,
            pc: 0,
            stack: Vec::new(),
            status: VmStatus::Runnable,
            total_instructions: 0,
            slots_run: 0,
            used_bytes: 0,
            counters: FusionCounters::default(),
        }
    }

    /// Compiles `program` and loads it — convenience for tests and benches.
    ///
    /// # Errors
    ///
    /// Returns the typed validation error for a malformed program.
    pub fn compile(program: Program, budget: Budget) -> Result<Self> {
        Ok(CompiledVm::new(CompiledProgram::compile(program)?, budget))
    }

    /// The portable source program.
    pub fn program(&self) -> &Program {
        self.program.source()
    }

    /// The compiled form being executed.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.program
    }

    /// The budget the machine runs under.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Current machine status.
    pub fn status(&self) -> VmStatus {
        self.status
    }

    /// Total instructions executed since the program was loaded (fused
    /// windows count one per covered source instruction).
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Number of execution slots granted so far.
    pub fn slots_run(&self) -> u64 {
        self.slots_run
    }

    /// The current program counter (next instruction to execute).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// The current operand stack, bottom first.
    pub fn stack(&self) -> &[Value] {
        &self.stack
    }

    /// The current local variable slots.
    pub fn locals(&self) -> &[Value] {
        &self.locals
    }

    /// The current incremental memory footprint in bytes.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Dynamic counters: how many superinstruction windows actually
    /// executed fused, per kind.
    pub fn fusion_counters(&self) -> FusionCounters {
        self.counters
    }

    /// Resets the machine to the start of its program, clearing stack and
    /// locals.  Used when a plug-in is restarted after an update.
    pub fn reset(&mut self) {
        self.pc = 0;
        self.stack.clear();
        self.locals = vec![Value::Void; self.budget.local_count()];
        self.status = VmStatus::Runnable;
        self.used_bytes = 0;
    }

    /// Runs one best-effort execution slot against `host`.
    ///
    /// Semantics are identical to [`crate::interpreter::Vm::run_slot`],
    /// including preemption boundaries and fault accounting.
    ///
    /// # Errors
    ///
    /// Returns the fault that stopped the program (the machine transitions
    /// to [`VmStatus::Faulted`] and stays there).
    pub fn run_slot(&mut self, host: &mut dyn PortHost) -> Result<SlotReport> {
        if matches!(self.status, VmStatus::Halted | VmStatus::Faulted) {
            return Ok(SlotReport {
                instructions: 0,
                status: self.status,
            });
        }
        self.slots_run += 1;
        self.status = VmStatus::Runnable;
        let limit = self.budget.instructions_per_slot();
        let mut executed = 0u64;

        while executed < limit {
            let pc = self.pc;
            if pc >= self.program.ops.len() {
                // Implicit halt off the end, exactly like the interpreter.
                self.status = VmStatus::Halted;
                break;
            }
            // Fast path: a fused window fires only when its whole weight
            // fits in the remaining budget, so preemption can never land
            // mid-window.
            if let Some(f) = self.program.fused[pc] {
                if limit - executed >= f.weight() {
                    match self.run_fused(f, &mut executed, host) {
                        Ok(true) => continue,
                        Ok(false) => {} // bail: fall through to single-step
                        Err(err) => {
                            self.status = VmStatus::Faulted;
                            return Err(err);
                        }
                    }
                }
            }
            let op = self.program.ops[pc];
            executed += 1;
            self.total_instructions += 1;
            self.pc = pc + 1;
            match self.step(op, host) {
                Ok(Flow::Continue) => {}
                Ok(Flow::Yield) => {
                    self.status = VmStatus::Yielded;
                    break;
                }
                Ok(Flow::Halt) => {
                    self.status = VmStatus::Halted;
                    break;
                }
                Err(err) => {
                    self.status = VmStatus::Faulted;
                    return Err(err);
                }
            }
        }
        if executed == limit && self.status == VmStatus::Runnable {
            self.status = VmStatus::Preempted;
        }
        Ok(SlotReport {
            instructions: executed,
            status: self.status,
        })
    }

    /// Executes a fused window.  Returns `Ok(true)` when the window
    /// committed, `Ok(false)` to bail to single-step (no state touched,
    /// nothing counted), and `Err` for a fault — with `executed`,
    /// `total_instructions` and `pc` already advanced to exactly where the
    /// interpreter would have faulted inside the window.
    fn run_fused(&mut self, f: Fused, executed: &mut u64, host: &mut dyn PortHost) -> Result<bool> {
        let start = self.pc;
        match f {
            Fused::LoadIntArithStore { src, imm, op, dst } => {
                let (src, dst) = (src as usize, dst as usize);
                let Some(Value::I64(a)) = self.locals.get(src) else {
                    return Ok(false);
                };
                let a = *a;
                if dst >= self.locals.len()
                    || self.stack.len() + 2 > self.budget.max_stack()
                    || self.used_bytes + 16 > self.budget.max_memory_bytes()
                {
                    return Ok(false);
                }
                let Ok(result) = exec::int_arithmetic(op, a, imm) else {
                    // Arithmetic fault: single-step raises it with the
                    // interpreter's exact message and accounting.
                    return Ok(false);
                };
                let old = self.locals[dst].payload_size();
                self.locals[dst] = Value::I64(result);
                self.used_bytes = self.used_bytes.saturating_sub(old) + 8;
                self.counters.load_arith_store += 1;
                *executed += 4;
                self.total_instructions += 4;
                self.pc = start + 4;
            }
            Fused::PushIntCmpBranch {
                imm,
                cmp,
                on_true,
                target,
            } => {
                let depth = self.stack.len();
                if depth < 1
                    || depth >= self.budget.max_stack()
                    || self.used_bytes + 8 > self.budget.max_memory_bytes()
                {
                    return Ok(false);
                }
                let right = Value::I64(imm);
                let Some(taken) = fuse_cmp_eval(cmp, &self.stack[depth - 1], &right) else {
                    return Ok(false);
                };
                let left = self.stack.pop().expect("depth checked above");
                self.used_bytes = self.used_bytes.saturating_sub(left.payload_size());
                self.counters.push_int_cmp_branch += 1;
                *executed += 3;
                self.total_instructions += 3;
                self.pc = if taken == on_true {
                    target as usize
                } else {
                    start + 3
                };
            }
            Fused::TakePortStore { port, dst } => {
                let dst = dst as usize;
                if dst >= self.locals.len() || self.stack.len() >= self.budget.max_stack() {
                    return Ok(false);
                }
                self.counters.take_port_store += 1;
                // Sub-step 0: take_port (host fault surfaces here).
                *executed += 1;
                self.total_instructions += 1;
                self.pc = start + 1;
                let value = host.take_port(port)?;
                let size = value.payload_size();
                if self.used_bytes + size > self.budget.max_memory_bytes() {
                    // The interpreter pushes first and faults in the memory
                    // check: replicate the partial effect exactly.
                    self.used_bytes += size;
                    self.stack.push(value);
                    return Err(self.memory_fault());
                }
                // Sub-step 1: store.
                *executed += 1;
                self.total_instructions += 1;
                self.pc = start + 2;
                let old = self.locals[dst].payload_size();
                self.locals[dst] = value;
                self.used_bytes = self.used_bytes.saturating_sub(old) + size;
            }
            Fused::LoadWritePort { src, port } => {
                let Some(value) = self.locals.get(src as usize) else {
                    return Ok(false);
                };
                let size = value.payload_size();
                if self.stack.len() >= self.budget.max_stack()
                    || self.used_bytes + size > self.budget.max_memory_bytes()
                {
                    return Ok(false);
                }
                let value = value.clone();
                self.counters.load_write_port += 1;
                // Both sub-steps count before the host call: a write fault
                // surfaces after load+write_port executed, with the machine
                // state net-unchanged — exactly the interpreter's
                // push-then-pop-then-fault.
                *executed += 2;
                self.total_instructions += 2;
                self.pc = start + 2;
                host.write_port(port, value)?;
            }
            Fused::TakePortWritePort { from, to } => {
                if self.stack.len() >= self.budget.max_stack() {
                    return Ok(false);
                }
                self.counters.take_port_write_port += 1;
                *executed += 1;
                self.total_instructions += 1;
                self.pc = start + 1;
                let value = host.take_port(from)?;
                let size = value.payload_size();
                if self.used_bytes + size > self.budget.max_memory_bytes() {
                    self.used_bytes += size;
                    self.stack.push(value);
                    return Err(self.memory_fault());
                }
                *executed += 1;
                self.total_instructions += 1;
                self.pc = start + 2;
                host.write_port(to, value)?;
            }
            Fused::CmpBranch {
                cmp,
                on_true,
                target,
            } => {
                let depth = self.stack.len();
                if depth < 2 {
                    return Ok(false);
                }
                let (left, right) = (&self.stack[depth - 2], &self.stack[depth - 1]);
                let (left_size, right_size) = (left.payload_size(), right.payload_size());
                // The interpreter's intermediate Bool push peaks at
                // used - left - right + 1; bail (to the exact single-step
                // fault) when that would exceed the budget.
                if self.used_bytes + 1 > self.budget.max_memory_bytes() + left_size + right_size {
                    return Ok(false);
                }
                let Some(taken) = fuse_cmp_eval(cmp, left, right) else {
                    return Ok(false);
                };
                self.stack.truncate(depth - 2);
                self.used_bytes = self.used_bytes.saturating_sub(left_size + right_size);
                self.counters.cmp_branch += 1;
                *executed += 2;
                self.total_instructions += 2;
                self.pc = if taken == on_true {
                    target as usize
                } else {
                    start + 2
                };
            }
        }
        self.debug_assert_accounting();
        Ok(true)
    }

    /// Debug-build invariant: a committed fused window left the incremental
    /// memory accounting exact and inside the budget (its preconditions
    /// guarantee this; release builds skip the rescan).
    fn debug_assert_accounting(&self) {
        debug_assert_eq!(
            self.used_bytes,
            self.stack
                .iter()
                .chain(self.locals.iter())
                .map(Value::payload_size)
                .sum::<usize>(),
            "incremental memory accounting drifted in a fused window"
        );
        debug_assert!(
            self.used_bytes <= self.budget.max_memory_bytes(),
            "fused window committed past the memory budget"
        );
    }

    /// Executes one decoded op — a direct port of the interpreter's
    /// `execute`, dispatching on the dense form and sharing every semantic
    /// helper through [`crate::exec`].
    fn step(&mut self, op: Op, host: &mut dyn PortHost) -> Result<Flow> {
        match op {
            Op::Nop => {}
            Op::PushConst(index) => {
                let value = self
                    .program
                    .constants
                    .get(index as usize)
                    .cloned()
                    .ok_or_else(|| {
                        DynarError::VmFault(format!("constant #{index} out of range"))
                    })?;
                self.push(value)?;
            }
            Op::PushInt(v) => self.push(Value::I64(v))?,
            Op::Dup => {
                let top = self.peek()?.clone();
                self.push(top)?;
            }
            Op::Pop => {
                self.pop()?;
            }
            Op::Swap => {
                let a = self.pop()?;
                let b = self.pop()?;
                self.push(a)?;
                self.push(b)?;
            }
            Op::Load(index) => {
                let value =
                    self.locals.get(index as usize).cloned().ok_or_else(|| {
                        DynarError::VmFault(format!("local {index} out of range"))
                    })?;
                self.push(value)?;
            }
            Op::Store(index) => {
                let value = self.pop()?;
                let slot = self
                    .locals
                    .get_mut(index as usize)
                    .ok_or_else(|| DynarError::VmFault(format!("local {index} out of range")))?;
                let delta_out = slot.payload_size();
                let delta_in = value.payload_size();
                *slot = value;
                self.used_bytes = self.used_bytes.saturating_sub(delta_out) + delta_in;
                self.check_memory()?;
            }
            Op::Arith(op) => {
                let right = self.pop()?;
                let left = self.pop()?;
                self.push(exec::arithmetic(op, &left, &right)?)?;
            }
            Op::Neg => {
                let value = self.pop()?;
                self.push(exec::negate(value)?)?;
            }
            Op::Eq | Op::Ne => {
                let right = self.pop()?;
                let left = self.pop()?;
                let equal = exec::values_equal(&left, &right);
                self.push(Value::Bool(if matches!(op, Op::Eq) {
                    equal
                } else {
                    !equal
                }))?;
            }
            Op::Cmp(cmp) => {
                let right = self.pop()?;
                let left = self.pop()?;
                self.push(exec::compare(cmp, &left, &right)?)?;
            }
            Op::And | Op::Or => {
                let right = self.pop()?.as_bool().ok_or_else(exec::type_fault("bool"))?;
                let left = self.pop()?.as_bool().ok_or_else(exec::type_fault("bool"))?;
                let result = if matches!(op, Op::And) {
                    left && right
                } else {
                    left || right
                };
                self.push(Value::Bool(result))?;
            }
            Op::Not => {
                let value = self.pop()?.as_bool().ok_or_else(exec::type_fault("bool"))?;
                self.push(Value::Bool(!value))?;
            }
            // Jump targets were pre-checked by `Program::validate` at
            // compile time, so no range check is needed here.
            Op::Jump(target) => self.pc = target as usize,
            Op::JumpIfFalse(target) => {
                let condition = self.pop()?.as_bool().ok_or_else(exec::type_fault("bool"))?;
                if !condition {
                    self.pc = target as usize;
                }
            }
            Op::JumpIfTrue(target) => {
                let condition = self.pop()?.as_bool().ok_or_else(exec::type_fault("bool"))?;
                if condition {
                    self.pc = target as usize;
                }
            }
            Op::ReadPort(slot) => {
                let value = host.read_port(slot)?;
                self.push(value)?;
            }
            Op::TakePort(slot) => {
                let value = host.take_port(slot)?;
                self.push(value)?;
            }
            Op::WritePort(slot) => {
                let value = self.pop()?;
                host.write_port(slot, value)?;
            }
            Op::PortPending(slot) => {
                let pending = host.pending(slot)?;
                self.push(Value::I64(pending as i64))?;
            }
            Op::MakeList(count) => {
                let count = count as usize;
                if self.stack.len() < count {
                    return Err(DynarError::VmFault("stack underflow in make_list".into()));
                }
                let items = self.stack.split_off(self.stack.len() - count);
                let moved: usize = items.iter().map(Value::payload_size).sum();
                self.used_bytes = self.used_bytes.saturating_sub(moved);
                self.push(Value::List(items))?;
            }
            Op::ListGet => {
                let index = self.pop()?.expect_i64().map_err(exec::to_vm_fault)?;
                let list = self.pop()?;
                let items = list.as_list().ok_or_else(exec::type_fault("list"))?;
                let item =
                    items
                        .get(usize::try_from(index).map_err(|_| {
                            DynarError::VmFault(format!("negative list index {index}"))
                        })?)
                        .cloned()
                        .ok_or_else(|| {
                            DynarError::VmFault(format!(
                                "list index {index} out of range for {} elements",
                                items.len()
                            ))
                        })?;
                self.push(item)?;
            }
            Op::ListLen => {
                let list = self.pop()?;
                let items = list.as_list().ok_or_else(exec::type_fault("list"))?;
                self.push(Value::I64(items.len() as i64))?;
            }
            Op::Log => {
                let value = self.pop()?;
                host.log(&value.to_string());
            }
            Op::Yield => return Ok(Flow::Yield),
            Op::Halt => return Ok(Flow::Halt),
        }
        Ok(Flow::Continue)
    }

    fn memory_fault(&self) -> DynarError {
        DynarError::BudgetExhausted {
            plugin: self.program.name().to_owned(),
            what: "memory",
        }
    }

    fn push(&mut self, value: Value) -> Result<()> {
        if self.stack.len() >= self.budget.max_stack() {
            return Err(DynarError::BudgetExhausted {
                plugin: self.program.name().to_owned(),
                what: "stack",
            });
        }
        self.used_bytes += value.payload_size();
        self.stack.push(value);
        self.check_memory()
    }

    fn pop(&mut self) -> Result<Value> {
        let value = self
            .stack
            .pop()
            .ok_or_else(|| DynarError::VmFault("stack underflow".into()))?;
        self.used_bytes = self.used_bytes.saturating_sub(value.payload_size());
        Ok(value)
    }

    fn peek(&self) -> Result<&Value> {
        self.stack
            .last()
            .ok_or_else(|| DynarError::VmFault("stack underflow".into()))
    }

    fn check_memory(&self) -> Result<()> {
        debug_assert_eq!(
            self.used_bytes,
            self.stack
                .iter()
                .chain(self.locals.iter())
                .map(Value::payload_size)
                .sum::<usize>(),
            "incremental memory accounting drifted"
        );
        if self.used_bytes > self.budget.max_memory_bytes() {
            return Err(DynarError::BudgetExhausted {
                plugin: self.program.name().to_owned(),
                what: "memory",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::assemble;
    use crate::shadow::ShadowVm;
    use crate::Vm;

    /// A host with a fixed number of slots, each holding queued values.
    struct FakeHost {
        slots: Vec<Vec<Value>>,
        written: Vec<(u32, Value)>,
        logs: Vec<String>,
    }

    impl FakeHost {
        fn new(slot_count: usize) -> Self {
            FakeHost {
                slots: vec![Vec::new(); slot_count],
                written: Vec::new(),
                logs: Vec::new(),
            }
        }

        fn slot(&mut self, slot: u32) -> Result<&mut Vec<Value>> {
            self.slots
                .get_mut(slot as usize)
                .ok_or_else(|| DynarError::not_found("port slot", slot))
        }
    }

    impl PortHost for FakeHost {
        fn read_port(&mut self, slot: u32) -> Result<Value> {
            Ok(self.slot(slot)?.first().cloned().unwrap_or_default())
        }
        fn take_port(&mut self, slot: u32) -> Result<Value> {
            let queue = self.slot(slot)?;
            Ok(if queue.is_empty() {
                Value::Void
            } else {
                queue.remove(0)
            })
        }
        fn write_port(&mut self, slot: u32, value: Value) -> Result<()> {
            self.slot(slot)?;
            self.written.push((slot, value));
            Ok(())
        }
        fn pending(&mut self, slot: u32) -> Result<usize> {
            Ok(self.slot(slot)?.len())
        }
        fn log(&mut self, message: &str) {
            self.logs.push(message.to_owned());
        }
    }

    /// Runs `source` to completion (or fault) on both engines with
    /// identical budgets and host traffic, asserting byte-identical
    /// observables, and returns the shared per-slot outcomes.
    fn run_both(
        source: &str,
        budget: Budget,
        seed_traffic: &[Value],
        slots: usize,
    ) -> (Vec<Result<SlotReport>>, FakeHost) {
        let program = assemble("parity", source).unwrap();
        let mut interp = Vm::new(program.clone(), budget);
        let mut fast = CompiledVm::compile(program, budget).unwrap();
        let mut interp_host = FakeHost::new(3);
        let mut fast_host = FakeHost::new(3);
        interp_host.slots[0] = seed_traffic.to_vec();
        fast_host.slots[0] = seed_traffic.to_vec();
        let mut outcomes = Vec::new();
        for _ in 0..slots {
            let a = interp.run_slot(&mut interp_host);
            let b = fast.run_slot(&mut fast_host);
            assert_eq!(a, b, "slot outcomes diverged");
            outcomes.push(b);
        }
        assert_eq!(interp.status(), fast.status());
        assert_eq!(interp.pc(), fast.pc());
        assert_eq!(interp.stack(), fast.stack());
        assert_eq!(interp.locals(), fast.locals());
        assert_eq!(interp.used_bytes(), fast.used_bytes());
        assert_eq!(interp.total_instructions(), fast.total_instructions());
        assert_eq!(interp_host.written, fast_host.written);
        assert_eq!(interp_host.logs, fast_host.logs);
        (outcomes, fast_host)
    }

    fn fault_message(source: &str) -> String {
        let (outcomes, _) = run_both(source, Budget::default(), &[], 1);
        match &outcomes[0] {
            Err(DynarError::VmFault(message)) => message.clone(),
            other => panic!("expected a VmFault on both engines, got {other:?}"),
        }
    }

    #[test]
    fn division_by_zero_faults_identically() {
        assert_eq!(
            fault_message("push_int 1\npush_int 0\ndiv\nhalt"),
            "division by zero"
        );
        assert_eq!(
            fault_message("push_int 1\npush_int 0\nrem\nhalt"),
            "division by zero"
        );
        assert_eq!(
            fault_message("push_const 1.0\npush_const 0.0\ndiv\nhalt"),
            "division by zero"
        );
    }

    #[test]
    fn integer_overflow_faults_identically() {
        let max = i64::MAX;
        let min = i64::MIN;
        assert_eq!(
            fault_message(&format!("push_int {max}\npush_int 1\nadd\nhalt")),
            "integer overflow in add"
        );
        assert_eq!(
            fault_message(&format!("push_int {min}\npush_int 1\nsub\nhalt")),
            "integer overflow in sub"
        );
        assert_eq!(
            fault_message(&format!("push_int {max}\npush_int 2\nmul\nhalt")),
            "integer overflow in mul"
        );
        assert_eq!(
            fault_message(&format!("push_int {min}\npush_int -1\ndiv\nhalt")),
            "integer overflow in div"
        );
        assert_eq!(
            fault_message(&format!("push_int {min}\npush_int -1\nrem\nhalt")),
            "integer overflow in rem"
        );
        assert_eq!(
            fault_message(&format!("push_int {min}\nneg\nhalt")),
            "integer overflow in neg"
        );
    }

    #[test]
    fn type_mismatch_faults_identically() {
        assert_eq!(
            fault_message("push_const \"a\"\npush_int 1\nadd\nhalt"),
            "expected a number value on the stack"
        );
        assert_eq!(
            fault_message("push_const \"a\"\npush_int 1\nlt\nhalt"),
            "expected a number value on the stack"
        );
        assert_eq!(
            fault_message("push_int 1\nnot\nhalt"),
            "expected a bool value on the stack"
        );
        assert_eq!(
            fault_message("push_const \"a\"\nneg\nhalt"),
            "cannot negate a text value"
        );
    }

    #[test]
    fn peephole_plants_all_superinstruction_kinds() {
        let program = assemble(
            "plant",
            r#"
            load 0
            push_int 1
            add
            store 0          ; load+push_int+arith+store
            take_port 0
            store 1          ; take_port+store
            load 1
            write_port 1     ; load+write_port
            take_port 0
            write_port 1     ; take_port+write_port
            load 0
            push_int 10
            lt
            jump_if_true skip ; push_int+cmp+branch
        skip:
            load 0
            load 1
            eq
            jump_if_false skip ; cmp+branch
            halt
            "#,
        )
        .unwrap();
        let compiled = CompiledProgram::compile(program).unwrap();
        let sites = compiled.fusion_sites();
        assert_eq!(sites.load_arith_store, 1);
        assert_eq!(sites.take_port_store, 1);
        assert_eq!(sites.load_write_port, 1);
        assert_eq!(sites.take_port_write_port, 1);
        assert_eq!(sites.push_int_cmp_branch, 1);
        assert_eq!(sites.cmp_branch, 1);
        assert_eq!(sites.total(), 6);
    }

    #[test]
    fn fused_windows_fire_and_stay_equivalent() {
        // The scenario accumulate loop: every iteration is one fused
        // LoadIntArithStore window plus a jump.
        let source = r#"
            push_int 0
            store 0
        loop:
            load 0
            push_int 1
            add
            store 0
            jump loop
        "#;
        let (outcomes, _) = run_both(source, Budget::new(1002), &[], 3);
        for outcome in &outcomes {
            assert_eq!(outcome.as_ref().unwrap().status, VmStatus::Preempted);
        }
        let program = assemble("fire", source).unwrap();
        let mut vm = CompiledVm::compile(program, Budget::new(1002)).unwrap();
        let mut host = FakeHost::new(1);
        vm.run_slot(&mut host).unwrap();
        // 2 prologue ops + 200 iterations of (fused window + jump).
        assert_eq!(vm.fusion_counters().load_arith_store, 200);
        assert_eq!(vm.locals()[0], Value::I64(200));
    }

    #[test]
    fn fused_window_respects_preemption_boundary() {
        // Budget of 7 per slot over a 5-op loop (4 fused + jump): most
        // slots run out of budget with a partial window left, so the fast
        // plane must fall back to single-step and preempt mid-window
        // exactly like the interpreter.
        let source = r#"
            push_int 0
            store 0
        loop:
            load 0
            push_int 1
            add
            store 0
            jump loop
        "#;
        let (outcomes, _) = run_both(source, Budget::new(7), &[], 5);
        for outcome in outcomes {
            let report = outcome.unwrap();
            assert_eq!(report.status, VmStatus::Preempted);
            assert_eq!(report.instructions, 7);
        }
    }

    #[test]
    fn fused_take_port_store_handles_memory_fault_identically() {
        let budget = Budget::default().with_max_memory_bytes(256);
        let program = assemble("mem", "take_port 0\nstore 0\nhalt").unwrap();
        let mut interp = Vm::new(program.clone(), budget);
        let mut fast = CompiledVm::compile(program, budget).unwrap();
        let payload = Value::Bytes(vec![0; 4096]);
        let mut interp_host = FakeHost::new(1);
        let mut fast_host = FakeHost::new(1);
        interp_host.slots[0].push(payload.clone());
        fast_host.slots[0].push(payload);
        let a = interp.run_slot(&mut interp_host);
        let b = fast.run_slot(&mut fast_host);
        assert_eq!(a, b);
        assert!(matches!(
            b,
            Err(DynarError::BudgetExhausted { what: "memory", .. })
        ));
        assert_eq!(interp.pc(), fast.pc());
        assert_eq!(interp.stack(), fast.stack());
        assert_eq!(interp.used_bytes(), fast.used_bytes());
        assert_eq!(interp.total_instructions(), fast.total_instructions());
    }

    #[test]
    fn fused_host_fault_counts_like_the_interpreter() {
        // Port 9 does not exist: the fused take_port+write_port window
        // must surface the host fault at the take_port sub-step.
        let (outcomes, _) = run_both("take_port 2\nwrite_port 9\nhalt", Budget::default(), &[], 1);
        assert!(outcomes[0].is_err());
    }

    #[test]
    fn fused_cmp_branch_bails_on_type_mismatch() {
        // `lt` on a text operand faults with the single-step message even
        // though the window is planted as a fused compare+branch.
        let (outcomes, _) = run_both(
            "push_const \"a\"\npush_int 1\nlt\njump_if_true done\ndone:\nhalt",
            Budget::default(),
            &[],
            1,
        );
        match &outcomes[0] {
            Err(DynarError::VmFault(message)) => {
                assert_eq!(message, "expected a number value on the stack");
            }
            other => panic!("expected a type fault, got {other:?}"),
        }
    }

    #[test]
    fn compilation_rejects_invalid_programs_with_typed_errors() {
        let program = Program::new("bad").with_code(vec![Instruction::Jump(99)]);
        assert!(CompiledProgram::compile(program).is_err());
        let program = Program::new("bad2").with_code(vec![Instruction::PushConst(7)]);
        assert!(CompiledProgram::compile(program).is_err());
    }

    #[test]
    fn shadow_mode_smoke_on_scenario_doubler() {
        let program = assemble(
            "doubler",
            r#"
            loop:
                port_pending 0
                push_int 0
                gt
                jump_if_false idle
                take_port 0
                push_int 2
                mul
                write_port 1
                jump loop
            idle:
                yield
                jump loop
            "#,
        )
        .unwrap();
        let mut shadow = ShadowVm::new(program, Budget::default()).unwrap();
        let mut host = FakeHost::new(2);
        for tick in 0..8 {
            if tick % 2 == 0 {
                host.slots[0].push(Value::I64(tick));
            }
            shadow.run_slot(&mut host).unwrap();
        }
        let written: Vec<i64> = host
            .written
            .iter()
            .map(|(_, v)| v.as_i64().unwrap())
            .collect();
        assert_eq!(written, vec![0, 4, 8, 12]);
        assert!(shadow.fusion_counters().push_int_cmp_branch > 0);
    }
}
