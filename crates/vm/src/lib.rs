//! The plug-in virtual machine.
//!
//! In the paper, each plug-in SW-C embeds a Java virtual machine with its own
//! memory, computational and communication resources, so that downloaded
//! plug-in binaries are portable across ECUs and execute under a best-effort
//! scheme that cannot starve the built-in functionality (§3.1.1).  This crate
//! provides the equivalent sandbox for the reproduction: a small stack-based
//! bytecode machine whose only window to the outside world is a host-call
//! interface to its plug-in ports.
//!
//! * [`isa`] — the instruction set;
//! * [`program`] — plug-in programs (constant pool + code) and the portable
//!   binary format they are shipped in;
//! * [`assembler`] — a tiny text assembler/disassembler so example plug-ins
//!   can be written readably;
//! * [`budget`] — per-slot instruction and memory budgets (the best-effort
//!   scheme);
//! * [`interpreter`] — the reference [`interpreter::Vm`] (the slow plane)
//!   and the [`interpreter::PortHost`] trait the PIRTE implements;
//! * [`compiled`] — the fast plane: install-time pre-decode into a dense
//!   [`compiled::CompiledProgram`] with a superinstruction overlay,
//!   executed by [`compiled::CompiledVm`];
//! * [`shadow`] — lock-step shadow execution proving the two planes
//!   observably identical on live traffic;
//! * [`engine`] — [`engine::Engine`]/[`engine::ExecMode`], the per-plug-in
//!   plane selection the PIRTE instantiates through.
//!
//! # Example
//!
//! ```
//! use dynar_vm::assembler::assemble;
//! use dynar_vm::budget::Budget;
//! use dynar_vm::interpreter::{PortHost, Vm, VmStatus};
//! use dynar_foundation::value::Value;
//!
//! /// A host exposing two ports as plain slots.
//! struct TestHost { ports: Vec<Value> }
//! impl PortHost for TestHost {
//!     fn read_port(&mut self, slot: u32) -> dynar_foundation::error::Result<Value> {
//!         Ok(self.ports.get(slot as usize).cloned().unwrap_or_default())
//!     }
//!     fn take_port(&mut self, slot: u32) -> dynar_foundation::error::Result<Value> {
//!         self.read_port(slot)
//!     }
//!     fn write_port(&mut self, slot: u32, value: Value) -> dynar_foundation::error::Result<()> {
//!         if let Some(p) = self.ports.get_mut(slot as usize) { *p = value; }
//!         Ok(())
//!     }
//!     fn pending(&mut self, slot: u32) -> dynar_foundation::error::Result<usize> {
//!         Ok(usize::from(!self.ports[slot as usize].is_void()))
//!     }
//!     fn log(&mut self, _message: &str) {}
//! }
//!
//! # fn main() -> Result<(), dynar_foundation::error::DynarError> {
//! // Double whatever arrives on port 0 and write it to port 1.
//! let program = assemble(
//!     "double",
//!     r#"
//!     read_port 0
//!     push_int 2
//!     mul
//!     write_port 1
//!     halt
//!     "#,
//! )?;
//! let mut vm = Vm::new(program, Budget::default());
//! let mut host = TestHost { ports: vec![Value::I64(21), Value::Void] };
//! let report = vm.run_slot(&mut host)?;
//! assert_eq!(report.status, VmStatus::Halted);
//! assert_eq!(host.ports[1], Value::I64(42));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assembler;
pub mod budget;
pub mod compiled;
pub mod engine;
mod exec;
pub mod interpreter;
pub mod isa;
pub mod program;
pub mod shadow;

pub use assembler::{assemble, disassemble};
pub use budget::Budget;
pub use compiled::{CompiledProgram, CompiledVm, FusionCounters};
pub use engine::{Engine, ExecMode};
pub use interpreter::{PortHost, SlotReport, Vm, VmStatus};
pub use isa::Instruction;
pub use program::Program;
pub use shadow::ShadowVm;
