//! The instruction set of the plug-in virtual machine.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One instruction of the plug-in virtual machine.
///
/// The machine is stack-based: most instructions pop their operands from the
/// value stack and push their result.  Ports are addressed by *slot* numbers,
/// which the Port Initialization Context maps to SW-C-scope unique plug-in
/// port ids at installation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// Does nothing.
    Nop,
    /// Pushes constant-pool entry `index`.
    PushConst(u16),
    /// Pushes an immediate integer.
    PushInt(i64),
    /// Duplicates the top of stack.
    Dup,
    /// Discards the top of stack.
    Pop,
    /// Swaps the two topmost stack values.
    Swap,
    /// Pushes local variable `index`.
    Load(u8),
    /// Pops into local variable `index`.
    Store(u8),
    /// Pops two values and pushes their sum.
    Add,
    /// Pops two values and pushes their difference (`second - top`).
    Sub,
    /// Pops two values and pushes their product.
    Mul,
    /// Pops two values and pushes their quotient (`second / top`).
    Div,
    /// Pops two values and pushes the remainder (`second % top`).
    Rem,
    /// Negates the numeric top of stack.
    Neg,
    /// Pops two values and pushes whether they are equal.
    Eq,
    /// Pops two values and pushes whether they differ.
    Ne,
    /// Pops two values and pushes `second < top`.
    Lt,
    /// Pops two values and pushes `second <= top`.
    Le,
    /// Pops two values and pushes `second > top`.
    Gt,
    /// Pops two values and pushes `second >= top`.
    Ge,
    /// Logical conjunction of the two topmost booleans.
    And,
    /// Logical disjunction of the two topmost booleans.
    Or,
    /// Logical negation of the topmost boolean.
    Not,
    /// Unconditional jump to code offset `target`.
    Jump(u16),
    /// Pops a boolean; jumps to `target` when it is false.
    JumpIfFalse(u16),
    /// Pops a boolean; jumps to `target` when it is true.
    JumpIfTrue(u16),
    /// Pushes the latest value of port slot `slot` without consuming it.
    ReadPort(u32),
    /// Consumes and pushes the next value of port slot `slot`
    /// (pushes `Void` when nothing is queued).
    TakePort(u32),
    /// Pops a value and writes it to port slot `slot`.
    WritePort(u32),
    /// Pushes the number of values waiting on port slot `slot`.
    PortPending(u32),
    /// Pops `count` values and pushes them as a list (top of stack becomes
    /// the last element).
    MakeList(u8),
    /// Pops an index and a list, pushes the element at that index.
    ListGet,
    /// Pops a list and pushes its length.
    ListLen,
    /// Pops a value and sends its display form to the host log.
    Log,
    /// Ends the current execution slot; execution resumes at the next
    /// instruction in the next slot.
    Yield,
    /// Ends the program permanently.
    Halt,
}

impl Instruction {
    /// The assembler mnemonic of the instruction.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::Nop => "nop",
            Instruction::PushConst(_) => "push_const",
            Instruction::PushInt(_) => "push_int",
            Instruction::Dup => "dup",
            Instruction::Pop => "pop",
            Instruction::Swap => "swap",
            Instruction::Load(_) => "load",
            Instruction::Store(_) => "store",
            Instruction::Add => "add",
            Instruction::Sub => "sub",
            Instruction::Mul => "mul",
            Instruction::Div => "div",
            Instruction::Rem => "rem",
            Instruction::Neg => "neg",
            Instruction::Eq => "eq",
            Instruction::Ne => "ne",
            Instruction::Lt => "lt",
            Instruction::Le => "le",
            Instruction::Gt => "gt",
            Instruction::Ge => "ge",
            Instruction::And => "and",
            Instruction::Or => "or",
            Instruction::Not => "not",
            Instruction::Jump(_) => "jump",
            Instruction::JumpIfFalse(_) => "jump_if_false",
            Instruction::JumpIfTrue(_) => "jump_if_true",
            Instruction::ReadPort(_) => "read_port",
            Instruction::TakePort(_) => "take_port",
            Instruction::WritePort(_) => "write_port",
            Instruction::PortPending(_) => "port_pending",
            Instruction::MakeList(_) => "make_list",
            Instruction::ListGet => "list_get",
            Instruction::ListLen => "list_len",
            Instruction::Log => "log",
            Instruction::Yield => "yield",
            Instruction::Halt => "halt",
        }
    }

    /// The numeric opcode used in the portable binary format.
    pub fn opcode(&self) -> u8 {
        match self {
            Instruction::Nop => 0x00,
            Instruction::PushConst(_) => 0x01,
            Instruction::PushInt(_) => 0x02,
            Instruction::Dup => 0x03,
            Instruction::Pop => 0x04,
            Instruction::Swap => 0x05,
            Instruction::Load(_) => 0x06,
            Instruction::Store(_) => 0x07,
            Instruction::Add => 0x10,
            Instruction::Sub => 0x11,
            Instruction::Mul => 0x12,
            Instruction::Div => 0x13,
            Instruction::Rem => 0x14,
            Instruction::Neg => 0x15,
            Instruction::Eq => 0x20,
            Instruction::Ne => 0x21,
            Instruction::Lt => 0x22,
            Instruction::Le => 0x23,
            Instruction::Gt => 0x24,
            Instruction::Ge => 0x25,
            Instruction::And => 0x26,
            Instruction::Or => 0x27,
            Instruction::Not => 0x28,
            Instruction::Jump(_) => 0x30,
            Instruction::JumpIfFalse(_) => 0x31,
            Instruction::JumpIfTrue(_) => 0x32,
            Instruction::ReadPort(_) => 0x40,
            Instruction::TakePort(_) => 0x41,
            Instruction::WritePort(_) => 0x42,
            Instruction::PortPending(_) => 0x43,
            Instruction::MakeList(_) => 0x50,
            Instruction::ListGet => 0x51,
            Instruction::ListLen => 0x52,
            Instruction::Log => 0x60,
            Instruction::Yield => 0x70,
            Instruction::Halt => 0x71,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::PushConst(i) => write!(f, "push_const #{i}"),
            Instruction::PushInt(v) => write!(f, "push_int {v}"),
            Instruction::Load(i) => write!(f, "load {i}"),
            Instruction::Store(i) => write!(f, "store {i}"),
            Instruction::Jump(t) => write!(f, "jump {t}"),
            Instruction::JumpIfFalse(t) => write!(f, "jump_if_false {t}"),
            Instruction::JumpIfTrue(t) => write!(f, "jump_if_true {t}"),
            Instruction::ReadPort(s) => write!(f, "read_port {s}"),
            Instruction::TakePort(s) => write!(f, "take_port {s}"),
            Instruction::WritePort(s) => write!(f, "write_port {s}"),
            Instruction::PortPending(s) => write!(f, "port_pending {s}"),
            Instruction::MakeList(n) => write!(f, "make_list {n}"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcodes_are_unique() {
        let all = [
            Instruction::Nop,
            Instruction::PushConst(0),
            Instruction::PushInt(0),
            Instruction::Dup,
            Instruction::Pop,
            Instruction::Swap,
            Instruction::Load(0),
            Instruction::Store(0),
            Instruction::Add,
            Instruction::Sub,
            Instruction::Mul,
            Instruction::Div,
            Instruction::Rem,
            Instruction::Neg,
            Instruction::Eq,
            Instruction::Ne,
            Instruction::Lt,
            Instruction::Le,
            Instruction::Gt,
            Instruction::Ge,
            Instruction::And,
            Instruction::Or,
            Instruction::Not,
            Instruction::Jump(0),
            Instruction::JumpIfFalse(0),
            Instruction::JumpIfTrue(0),
            Instruction::ReadPort(0),
            Instruction::TakePort(0),
            Instruction::WritePort(0),
            Instruction::PortPending(0),
            Instruction::MakeList(0),
            Instruction::ListGet,
            Instruction::ListLen,
            Instruction::Log,
            Instruction::Yield,
            Instruction::Halt,
        ];
        let mut seen = std::collections::HashSet::new();
        for instr in &all {
            assert!(seen.insert(instr.opcode()), "duplicate opcode for {instr}");
            assert!(!instr.mnemonic().is_empty());
        }
        assert_eq!(seen.len(), all.len());
    }

    #[test]
    fn display_includes_operands() {
        assert_eq!(Instruction::WritePort(3).to_string(), "write_port 3");
        assert_eq!(Instruction::PushInt(-4).to_string(), "push_int -4");
        assert_eq!(Instruction::Halt.to_string(), "halt");
    }
}
