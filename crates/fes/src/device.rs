//! External devices participating in the federation.

use dynar_foundation::codec;
use dynar_foundation::error::Result;
use dynar_foundation::value::Value;

use crate::transport::{EndpointName, Payload, Transport};

/// The smart phone of the paper's demonstrator: it sends `Wheels` and `Speed`
/// commands to the vehicle's ECM and collects whatever the vehicle reports
/// back.
///
/// Messages on the wire are `[message id, payload]` pairs encoded with the
/// shared value codec — the same format the ECM's External Connection
/// Context routes on.  The phone is transport-agnostic: it talks to any
/// [`Transport`] backend, in-memory hub or real sockets alike.
#[derive(Debug, Clone)]
pub struct SmartPhone {
    endpoint: String,
    vehicle_endpoint: String,
    received: Vec<(String, Value)>,
    inbox: Vec<(EndpointName, Payload)>,
}

impl SmartPhone {
    /// Creates a phone bound to its own transport endpoint and the endpoint
    /// of the vehicle it controls.
    pub fn new(endpoint: impl Into<String>, vehicle_endpoint: impl Into<String>) -> Self {
        SmartPhone {
            endpoint: endpoint.into(),
            vehicle_endpoint: vehicle_endpoint.into(),
            received: Vec::new(),
            inbox: Vec::new(),
        }
    }

    /// The phone's transport endpoint name.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Registers the phone's endpoint on the transport.
    pub fn attach(&self, transport: &mut dyn Transport) {
        transport.register(&self.endpoint);
    }

    /// Sends a steering command (`Wheels` message) to the vehicle.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn steer(&self, transport: &mut dyn Transport, angle_degrees: f64) -> Result<()> {
        self.send(transport, "Wheels", Value::F64(angle_degrees))
    }

    /// Sends a speed command (`Speed` message) to the vehicle.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn set_speed(&self, transport: &mut dyn Transport, speed: f64) -> Result<()> {
        self.send(transport, "Speed", Value::F64(speed))
    }

    /// Sends an arbitrary external message to the vehicle.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn send(
        &self,
        transport: &mut dyn Transport,
        message_id: &str,
        payload: Value,
    ) -> Result<()> {
        let message = Value::List(vec![Value::Text(message_id.to_owned()), payload]);
        transport.send(
            &self.endpoint,
            &self.vehicle_endpoint,
            codec::encode_value(&message).into(),
        )
    }

    /// Drains everything the vehicle sent back to the phone, decoding the
    /// `[message id, payload]` envelope (malformed messages are dropped).
    pub fn poll(&mut self, transport: &mut dyn Transport) -> Vec<(String, Value)> {
        transport.drain_into(&self.endpoint, &mut self.inbox);
        let mut fresh = Vec::new();
        for (_, payload) in self.inbox.drain(..) {
            if let Ok(Value::List(parts)) = codec::decode_value(&payload) {
                if let [Value::Text(id), value] = parts.as_slice() {
                    fresh.push((id.clone(), value.clone()));
                }
            }
        }
        self.received.extend(fresh.clone());
        fresh
    }

    /// Every message received so far.
    pub fn received(&self) -> &[(String, Value)] {
        &self.received
    }
}

/// Decodes an external device message into its `(message id, payload)` pair.
///
/// # Errors
///
/// Returns a protocol violation for malformed messages.
pub fn decode_device_message(payload: &[u8]) -> Result<(String, Value)> {
    use dynar_foundation::error::DynarError;
    let value = codec::decode_value(payload)?;
    let parts = value
        .as_list()
        .ok_or_else(|| DynarError::ProtocolViolation("device message is not a list".into()))?;
    match parts {
        [Value::Text(id), payload] => Ok((id.clone(), payload.clone())),
        _ => Err(DynarError::ProtocolViolation(
            "device message must be [id, payload]".into(),
        )),
    }
}

/// Encodes a `(message id, payload)` pair into the device wire format.
pub fn encode_device_message(message_id: &str, payload: &Value) -> Vec<u8> {
    codec::encode_value(&Value::List(vec![
        Value::Text(message_id.to_owned()),
        payload.clone(),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{TransportConfig, TransportHub};
    use dynar_foundation::time::Tick;

    #[test]
    fn phone_sends_wheels_and_speed_commands() {
        let mut hub = TransportHub::new(TransportConfig::default());
        hub.register("vehicle");
        let phone = SmartPhone::new("phone", "vehicle");
        phone.attach(&mut hub);
        phone.steer(&mut hub, 15.0).unwrap();
        phone.set_speed(&mut hub, 3.5).unwrap();
        hub.step(Tick::new(1));
        let messages: Vec<(String, Value)> = hub
            .drain("vehicle")
            .into_iter()
            .map(|(_, p)| decode_device_message(&p).unwrap())
            .collect();
        assert_eq!(
            messages,
            vec![
                ("Wheels".to_string(), Value::F64(15.0)),
                ("Speed".to_string(), Value::F64(3.5)),
            ]
        );
    }

    #[test]
    fn phone_decodes_replies() {
        let mut hub = TransportHub::new(TransportConfig::default());
        hub.register("vehicle");
        let mut phone = SmartPhone::new("phone", "vehicle");
        phone.attach(&mut hub);
        hub.send(
            "vehicle",
            "phone",
            encode_device_message("Speed", &Value::F64(2.0)),
        )
        .unwrap();
        // Malformed traffic is ignored.
        hub.send("vehicle", "phone", vec![0xFF, 0x00]).unwrap();
        hub.step(Tick::new(1));
        let fresh = phone.poll(&mut hub);
        assert_eq!(fresh, vec![("Speed".to_string(), Value::F64(2.0))]);
        assert_eq!(phone.received().len(), 1);
    }

    #[test]
    fn device_message_round_trip_and_errors() {
        let bytes = encode_device_message("Wheels", &Value::I64(-10));
        assert_eq!(
            decode_device_message(&bytes).unwrap(),
            ("Wheels".to_string(), Value::I64(-10))
        );
        assert!(decode_device_message(&[1, 2, 3]).is_err());
        assert!(decode_device_message(&codec::encode_value(&Value::I64(1))).is_err());
    }
}
