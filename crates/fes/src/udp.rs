//! A real-wire [`Transport`] backend: UDP datagrams over loopback sockets.
//!
//! The paper's prototype connects the ECM, the trusted server and the smart
//! phone through OS sockets; [`UdpTransport`] is that deployment shape.  Each
//! registered endpoint binds its own non-blocking UDP socket on
//! `127.0.0.1:0` and the backend keeps a name → address directory, so the
//! federation protocol — install waves, updates, reconciliation, dedup,
//! retransmission — runs over a genuine OS network path with real syscalls,
//! real kernel buffering and real wall-clock timing.
//!
//! # Wire format
//!
//! One datagram carries exactly one checksummed frame in the
//! [`dynar_foundation::journal`] layout (`[len u32 LE][fnv1a u32 LE][body]`),
//! whose body is `[from_len u16 LE][from bytes][payload]`.  The checksum
//! rejects corrupted or foreign datagrams instead of feeding them to the
//! protocol layer.
//!
//! # Induced faults
//!
//! UDP on loopback is reliable and ordered in practice, which would leave
//! the reliability plane untested.  The backend therefore *induces* faults
//! at the sender, deterministically from a seed:
//!
//! * `loss_probability` — the datagram is never transmitted and counts as
//!   `lost`.
//! * `reorder_probability` — the datagram is held back and only transmitted
//!   on the next [`Transport::step`], after later sends already hit the
//!   wire: genuine reordering of real datagrams, not a simulated shuffle.
//!
//! The deterministic per-link fault capability
//! ([`Transport::fault_injection`]) is intentionally **not** implemented:
//! this backend's faults are configured at construction, the way a real
//! network's impairments are properties of the path, not of the test.
//!
//! # Conservation
//!
//! `sent == delivered + lost + dropped + in_flight` holds exactly because
//! both ends of every link live in this process: a transmitted datagram
//! stays `in_flight` until a step reads it back out of the destination
//! socket.  An unregistered endpoint leaves a **tombstone** that keeps
//! draining its socket, counting stale arrivals as `dropped` (with
//! dropped-destination feedback), so quiescence — `in_flight == 0` after a
//! settle loop — remains assertable at the stats level.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::journal::{append_frame, FrameReader};
use dynar_foundation::payload::Payload;
use dynar_foundation::time::Tick;

use crate::transport::{
    EndpointName, FaultInjection, Transport, TransportStats, DROPPED_FEEDBACK_CAP,
};

/// Largest datagram the backend will transmit (UDP's practical payload
/// ceiling on loopback, minus framing headroom).
pub const MAX_DATAGRAM_LEN: usize = 60_000;

/// Configuration of the UDP loopback backend.
#[derive(Debug, Clone, PartialEq)]
pub struct UdpConfig {
    /// Seed of the induced-fault decisions.
    pub seed: u64,
    /// Probability in `[0, 1]` that a sent datagram is never transmitted
    /// (counted as `lost`).
    pub loss_probability: f64,
    /// Probability in `[0, 1]` that a sent datagram is held back until the
    /// next step, so later datagrams overtake it on the wire.
    pub reorder_probability: f64,
}

impl Default for UdpConfig {
    fn default() -> Self {
        UdpConfig {
            seed: 0xF0F0,
            loss_probability: 0.0,
            reorder_probability: 0.0,
        }
    }
}

/// One endpoint's socket: live (registered) or a tombstone still draining
/// stale traffic after unregistration.
#[derive(Debug)]
struct UdpEndpoint {
    name: EndpointName,
    socket: UdpSocket,
    addr: SocketAddr,
    mailbox: VecDeque<(EndpointName, Payload)>,
    live: bool,
}

/// A datagram held back by the reorder model, transmitted on the next step.
#[derive(Debug)]
struct HeldDatagram {
    from: SocketAddr,
    to: SocketAddr,
    bytes: Vec<u8>,
}

/// The UDP loopback [`Transport`] backend.  See the [module
/// documentation](self) for the wire format and fault model.
#[derive(Debug)]
pub struct UdpTransport {
    config: UdpConfig,
    endpoints: Vec<UdpEndpoint>,
    /// name -> index into `endpoints`, live endpoints only.
    by_name: HashMap<String, usize>,
    /// Interned sender names, so steady-state delivery shares one `Arc<str>`
    /// per sender instead of allocating a name per message.
    sender_names: HashMap<String, EndpointName>,
    held: Vec<HeldDatagram>,
    dropped_destinations: Vec<EndpointName>,
    stats: TransportStats,
    /// Datagrams that failed checksum/framing validation on receive (foreign
    /// or corrupted traffic; never produced by this backend's own sends).
    malformed: u64,
    rng: StdRng,
    recv_buf: Vec<u8>,
    now: Tick,
}

/// Encodes one wire datagram: a checksummed frame whose body carries the
/// sender name and the payload.
fn encode_datagram(from: &str, payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(2 + from.len() + payload.len());
    body.extend_from_slice(&(from.len() as u16).to_le_bytes());
    body.extend_from_slice(from.as_bytes());
    body.extend_from_slice(payload);
    let mut datagram = Vec::with_capacity(body.len() + 8);
    append_frame(&mut datagram, &body);
    datagram
}

/// Decodes a wire datagram into `(sender name, payload bytes)`, rejecting
/// anything that is not exactly one intact frame.
fn decode_datagram(datagram: &[u8]) -> Option<(&str, &[u8])> {
    let mut reader = FrameReader::new(datagram);
    let body = reader.next_frame().ok()??;
    if reader.next_frame() != Ok(None) {
        return None;
    }
    let (len, rest) = body.split_first_chunk::<2>()?;
    let from_len = usize::from(u16::from_le_bytes(*len));
    if rest.len() < from_len {
        return None;
    }
    let (from, payload) = rest.split_at(from_len);
    Some((std::str::from_utf8(from).ok()?, payload))
}

impl UdpTransport {
    /// Creates the backend.  No sockets are bound until endpoints register.
    pub fn new(config: UdpConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        UdpTransport {
            config,
            endpoints: Vec::new(),
            by_name: HashMap::new(),
            sender_names: HashMap::new(),
            held: Vec::new(),
            dropped_destinations: Vec::new(),
            stats: TransportStats::default(),
            malformed: 0,
            rng,
            recv_buf: vec![0u8; 65_536],
            now: Tick::ZERO,
        }
    }

    /// The loopback socket address of a registered endpoint (what a foreign
    /// process would send to).
    pub fn local_addr(&self, name: &str) -> Option<SocketAddr> {
        self.by_name.get(name).map(|&i| self.endpoints[i].addr)
    }

    /// Datagrams rejected by framing/checksum validation so far (foreign or
    /// corrupted traffic — never this backend's own sends).
    pub fn malformed_count(&self) -> u64 {
        self.malformed
    }

    /// Interns a sender name into the shared `Arc<str>` form.
    fn intern_sender(sender_names: &mut HashMap<String, EndpointName>, from: &str) -> EndpointName {
        if let Some(name) = sender_names.get(from) {
            return Arc::clone(name);
        }
        let name: EndpointName = Arc::from(from);
        sender_names.insert(from.to_owned(), Arc::clone(&name));
        name
    }

    /// Transmits one datagram, downgrading an OS send failure to a loss (the
    /// message was accounted `in_flight`; a kernel refusal is wire loss).
    fn transmit(stats: &mut TransportStats, socket: &UdpSocket, to: SocketAddr, bytes: &[u8]) {
        if socket.send_to(bytes, to).is_err() {
            stats.in_flight -= 1;
            stats.lost += 1;
        }
    }

    /// Drains one endpoint's socket into its mailbox (live) or the dropped
    /// ledger (tombstone).
    fn pump_endpoint(
        endpoint: &mut UdpEndpoint,
        recv_buf: &mut [u8],
        sender_names: &mut HashMap<String, EndpointName>,
        dropped_destinations: &mut Vec<EndpointName>,
        stats: &mut TransportStats,
        malformed: &mut u64,
    ) {
        loop {
            let received = match endpoint.socket.recv_from(recv_buf) {
                Ok((received, _)) => received,
                Err(_) => return,
            };
            let Some((from, payload)) = decode_datagram(&recv_buf[..received]) else {
                *malformed += 1;
                continue;
            };
            stats.in_flight -= 1;
            if endpoint.live {
                let sender = Self::intern_sender(sender_names, from);
                endpoint
                    .mailbox
                    .push_back((sender, Payload::copy_from(payload)));
                stats.delivered += 1;
            } else {
                stats.dropped += 1;
                if dropped_destinations.len() < DROPPED_FEEDBACK_CAP {
                    dropped_destinations.push(Arc::clone(&endpoint.name));
                }
            }
        }
    }
}

impl Transport for UdpTransport {
    fn register(&mut self, name: &str) {
        if self.by_name.contains_key(name) {
            return;
        }
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind loopback UDP socket");
        socket
            .set_nonblocking(true)
            .expect("non-blocking UDP socket");
        let addr = socket.local_addr().expect("bound socket has an address");
        self.by_name.insert(name.to_owned(), self.endpoints.len());
        self.endpoints.push(UdpEndpoint {
            name: Arc::from(name),
            socket,
            addr,
            mailbox: VecDeque::new(),
            live: true,
        });
    }

    fn unregister(&mut self, name: &str) -> bool {
        let Some(index) = self.by_name.remove(name) else {
            return false;
        };
        // Tombstone: the socket keeps draining, so datagrams already on the
        // wire towards the departed endpoint are counted as dropped (with
        // feedback) instead of leaking out of the conservation ledger.  The
        // undrained mailbox is discarded, like the hub's.
        let endpoint = &mut self.endpoints[index];
        endpoint.live = false;
        endpoint.mailbox.clear();
        true
    }

    fn is_registered(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    fn send(&mut self, from: &str, to: &str, payload: Payload) -> Result<()> {
        let Some(&from_index) = self.by_name.get(from) else {
            return Err(DynarError::TransportClosed(from.to_owned()));
        };
        let Some(&to_index) = self.by_name.get(to) else {
            return Err(DynarError::TransportClosed(to.to_owned()));
        };
        self.stats.sent += 1;
        if self.config.loss_probability > 0.0 && self.rng.gen_bool(self.config.loss_probability) {
            self.stats.lost += 1;
            return Ok(());
        }
        let datagram = encode_datagram(from, &payload);
        if datagram.len() > MAX_DATAGRAM_LEN {
            self.stats.lost += 1;
            return Err(DynarError::ProtocolViolation(format!(
                "datagram of {} bytes exceeds the UDP transport's {MAX_DATAGRAM_LEN}-byte limit",
                datagram.len()
            )));
        }
        self.stats.in_flight += 1;
        let from_addr = self.endpoints[from_index].addr;
        let to_addr = self.endpoints[to_index].addr;
        if self.config.reorder_probability > 0.0
            && self.rng.gen_bool(self.config.reorder_probability)
        {
            self.held.push(HeldDatagram {
                from: from_addr,
                to: to_addr,
                bytes: datagram,
            });
        } else {
            Self::transmit(
                &mut self.stats,
                &self.endpoints[from_index].socket,
                to_addr,
                &datagram,
            );
        }
        Ok(())
    }

    fn step(&mut self, now: Tick) {
        self.now = now;
        // Release held datagrams first: everything sent since they were held
        // already hit the wire, so this is genuine reordering.  A held
        // datagram whose sender socket vanished (endpoint churn) is sent
        // from any live socket — the sender name travels in the frame.
        for held in self.held.drain(..) {
            let socket = self
                .endpoints
                .iter()
                .find(|e| e.addr == held.from)
                .or_else(|| self.endpoints.first())
                .map(|e| &e.socket);
            match socket {
                Some(socket) => Self::transmit(&mut self.stats, socket, held.to, &held.bytes),
                None => {
                    self.stats.in_flight -= 1;
                    self.stats.lost += 1;
                }
            }
        }
        for endpoint in &mut self.endpoints {
            Self::pump_endpoint(
                endpoint,
                &mut self.recv_buf,
                &mut self.sender_names,
                &mut self.dropped_destinations,
                &mut self.stats,
                &mut self.malformed,
            );
        }
    }

    fn drain_into(&mut self, endpoint: &str, into: &mut Vec<(EndpointName, Payload)>) {
        if let Some(&index) = self.by_name.get(endpoint) {
            into.extend(self.endpoints[index].mailbox.drain(..));
        }
    }

    fn pending_for(&self, endpoint: &str) -> usize {
        self.by_name
            .get(endpoint)
            .map(|&i| self.endpoints[i].mailbox.len())
            .unwrap_or(0)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn take_dropped_destinations(&mut self) -> Vec<EndpointName> {
        std::mem::take(&mut self.dropped_destinations)
    }
}

// `fault_injection` keeps its `None` default: induced faults are part of the
// path configuration (`UdpConfig`), not a runtime capability.
const _: Option<&dyn FaultInjection> = None;

#[cfg(test)]
mod tests {
    use super::*;

    fn settle(transport: &mut UdpTransport, mut tick: u64) -> u64 {
        for _ in 0..200 {
            tick += 1;
            transport.step(Tick::new(tick));
            if transport.stats().in_flight == 0 {
                return tick;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("UDP transport did not settle: {:?}", transport.stats());
    }

    #[test]
    fn datagram_codec_round_trips_and_rejects_garbage() {
        let bytes = encode_datagram("vehicle-7", b"hello");
        assert_eq!(decode_datagram(&bytes), Some(("vehicle-7", &b"hello"[..])));
        assert_eq!(decode_datagram(&bytes[..bytes.len() - 1]), None, "torn");
        let mut corrupted = bytes.clone();
        *corrupted.last_mut().unwrap() ^= 0x01;
        assert_eq!(decode_datagram(&corrupted), None, "checksum");
        assert_eq!(decode_datagram(&[]), None);
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&bytes);
        assert_eq!(decode_datagram(&doubled), None, "one frame per datagram");
    }

    #[test]
    fn messages_flow_over_real_sockets() {
        let mut transport = UdpTransport::new(UdpConfig::default());
        transport.register("a");
        transport.register("b");
        assert_ne!(
            transport.local_addr("a"),
            transport.local_addr("b"),
            "endpoints own distinct sockets"
        );
        transport
            .send("a", "b", Payload::from(vec![1u8, 2, 3]))
            .unwrap();
        settle(&mut transport, 0);
        let delivered = transport.drain("b");
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].0.as_ref(), "a");
        assert_eq!(delivered[0].1, vec![1u8, 2, 3]);
        assert!(transport.stats().is_conserved());
        assert_eq!(transport.malformed_count(), 0);
    }

    #[test]
    fn induced_loss_is_deterministic_and_conserved() {
        let run = |seed| {
            let mut transport = UdpTransport::new(UdpConfig {
                seed,
                loss_probability: 0.5,
                ..UdpConfig::default()
            });
            transport.register("a");
            transport.register("b");
            for i in 0..100u8 {
                transport.send("a", "b", Payload::from(vec![i])).unwrap();
            }
            settle(&mut transport, 0);
            let stats = transport.stats();
            assert!(stats.is_conserved());
            assert_eq!(stats.delivered + stats.lost, 100);
            stats.lost
        };
        assert_eq!(run(3), run(3), "seeded loss reproduces");
        assert!(run(3) > 0);
    }

    #[test]
    fn held_datagrams_really_reorder_the_wire() {
        let mut transport = UdpTransport::new(UdpConfig {
            seed: 11,
            reorder_probability: 0.4,
            ..UdpConfig::default()
        });
        transport.register("a");
        transport.register("b");
        for i in 0..50u8 {
            transport.send("a", "b", Payload::from(vec![i])).unwrap();
        }
        settle(&mut transport, 0);
        let order: Vec<u8> = transport.drain("b").iter().map(|(_, p)| p[0]).collect();
        assert_eq!(order.len(), 50, "reordering never loses");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50u8).collect::<Vec<_>>());
        assert_ne!(order, sorted, "some datagram was overtaken");
        assert!(transport.stats().is_conserved());
    }

    #[test]
    fn unregistered_destination_tombstones_count_drops_with_feedback() {
        let mut transport = UdpTransport::new(UdpConfig::default());
        transport.register("a");
        transport.register("b");
        transport.send("a", "b", Payload::from(vec![1u8])).unwrap();
        transport.send("a", "b", Payload::from(vec![2u8])).unwrap();
        assert!(transport.unregister("b"));
        assert!(!transport.unregister("b"));
        settle(&mut transport, 0);
        let stats = transport.stats();
        assert_eq!(stats.dropped, 2);
        assert_eq!(stats.delivered, 0);
        assert!(stats.is_conserved());
        let feedback = transport.take_dropped_destinations();
        assert_eq!(feedback.len(), 2);
        assert!(feedback.iter().all(|name| name.as_ref() == "b"));
        assert!(transport.send("a", "b", Payload::from(vec![3u8])).is_err());
    }

    #[test]
    fn reregistration_gets_a_fresh_socket_not_stale_traffic() {
        let mut transport = UdpTransport::new(UdpConfig::default());
        transport.register("a");
        transport.register("b");
        let old_addr = transport.local_addr("b").unwrap();
        transport.send("a", "b", Payload::from(vec![1u8])).unwrap();
        transport.unregister("b");
        transport.register("b");
        assert_ne!(transport.local_addr("b").unwrap(), old_addr);
        let tick = settle(&mut transport, 0);
        assert_eq!(transport.pending_for("b"), 0, "stale traffic dropped");
        transport.send("a", "b", Payload::from(vec![2u8])).unwrap();
        settle(&mut transport, tick);
        let delivered = transport.drain("b");
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].1, vec![2u8]);
        assert!(transport.stats().is_conserved());
    }

    #[test]
    fn foreign_datagrams_are_rejected_not_delivered() {
        let mut transport = UdpTransport::new(UdpConfig::default());
        transport.register("b");
        let addr = transport.local_addr("b").unwrap();
        let stray = UdpSocket::bind("127.0.0.1:0").unwrap();
        stray.send_to(b"not a frame", addr).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        transport.step(Tick::new(1));
        assert_eq!(transport.pending_for("b"), 0);
        assert_eq!(transport.malformed_count(), 1);
        assert!(transport.stats().is_conserved());
    }
}
