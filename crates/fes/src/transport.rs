//! The simulated external transport connecting vehicles, the trusted server
//! and federation participants.
//!
//! The paper's prototype uses TCP sockets between the ECM, the trusted server
//! and the smart phone.  The transport hub keeps the same message semantics —
//! addressed, ordered, possibly delayed or lost datagrams — without real
//! sockets, so simulations stay deterministic.
//!
//! # Fault injection
//!
//! On top of the global [`TransportConfig`] loss model the hub supports
//! per-link faults ([`LinkFault`]): asymmetric loss (a different probability
//! per direction), latency jitter, and temporary partitions that heal at a
//! configured tick.  All fault decisions are made **at delivery time** inside
//! [`TransportHub::step`], never at send time, so every accepted message
//! enters the in-flight set and faults compose deterministically with
//! partitions under one seed.
//!
//! # Stats conservation
//!
//! Every accepted message is accounted for exactly once:
//!
//! ```text
//! sent == delivered + lost + dropped + in_flight
//! ```
//!
//! holds at every tick ([`TransportStats::is_conserved`]); once the hub is
//! quiescent (`in_flight == 0`) this is the `sent == delivered + lost +
//! dropped` identity the chaos scenarios assert.

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::time::Tick;

/// Configuration of the simulated external network.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportConfig {
    /// Delivery latency in ticks.
    pub latency_ticks: u64,
    /// Probability in `[0, 1]` that a message is lost.
    pub loss_probability: f64,
    /// Seed for the loss model.
    pub seed: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            latency_ticks: 1,
            loss_probability: 0.0,
            seed: 0xF0F0,
        }
    }
}

/// Counters describing external traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Messages accepted for delivery.
    pub sent: u64,
    /// Messages delivered to their destination mailbox.
    pub delivered: u64,
    /// Messages removed by the loss model or a partition.
    pub lost: u64,
    /// Messages that came due towards an unregistered mailbox.
    pub dropped: u64,
    /// Messages accepted but not yet due.
    pub in_flight: u64,
}

impl TransportStats {
    /// The conservation invariant: every accepted message is delivered, lost,
    /// dropped or still in flight — nothing disappears silently.
    pub fn is_conserved(&self) -> bool {
        self.sent == self.delivered + self.lost + self.dropped + self.in_flight
    }
}

/// Fault model of one directed link (`from` → `to`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkFault {
    /// Loss probability override for this direction; `None` falls back to the
    /// global [`TransportConfig::loss_probability`].  Setting different
    /// values per direction models asymmetric loss.
    pub loss_probability: Option<f64>,
    /// Extra random latency in `[0, jitter_ticks]` added per message.
    /// Per-link FIFO order is preserved regardless (TCP semantics: a later
    /// message never overtakes an earlier one on the same link).
    pub jitter_ticks: u64,
    /// While set, every message coming due on this link is counted as lost.
    /// The partition heals automatically once `step` reaches this tick.
    pub partition_until: Option<Tick>,
}

impl LinkFault {
    /// A fault that only overrides the loss probability.
    pub fn lossy(probability: f64) -> Self {
        LinkFault {
            loss_probability: Some(probability),
            ..LinkFault::default()
        }
    }

    /// A fault that only adds latency jitter.
    pub fn jittery(jitter_ticks: u64) -> Self {
        LinkFault {
            jitter_ticks,
            ..LinkFault::default()
        }
    }

    /// Returns `true` if the link is partitioned at `now`.
    pub fn is_partitioned(&self, now: Tick) -> bool {
        self.partition_until.is_some_and(|until| now < until)
    }
}

#[derive(Debug, Clone)]
struct InFlight {
    from: String,
    to: String,
    payload: Vec<u8>,
    deliver_at: Tick,
}

/// A hub of named endpoints exchanging addressed byte messages.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct TransportHub {
    config: TransportConfig,
    mailboxes: HashMap<String, VecDeque<(String, Vec<u8>)>>,
    in_flight: Vec<InFlight>,
    faults: HashMap<(String, String), LinkFault>,
    /// Latest scheduled delivery per directed link, clamping jittered
    /// latencies so per-link FIFO order always holds.
    last_scheduled: HashMap<(String, String), Tick>,
    stats: TransportStats,
    rng: StdRng,
    now: Tick,
}

impl TransportHub {
    /// Creates a hub with the given configuration.
    pub fn new(config: TransportConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        TransportHub {
            config,
            mailboxes: HashMap::new(),
            in_flight: Vec::new(),
            faults: HashMap::new(),
            last_scheduled: HashMap::new(),
            stats: TransportStats::default(),
            rng,
            now: Tick::ZERO,
        }
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Registers an endpoint (idempotent).
    pub fn register(&mut self, name: impl Into<String>) {
        self.mailboxes.entry(name.into()).or_default();
    }

    /// Returns `true` if the endpoint is registered.
    pub fn is_registered(&self, name: &str) -> bool {
        self.mailboxes.contains_key(name)
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Installs (or replaces) the fault model of the directed link
    /// `from → to`.
    pub fn set_link_fault(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        fault: LinkFault,
    ) {
        self.faults.insert((from.into(), to.into()), fault);
    }

    /// Removes the fault model of the directed link `from → to`.
    pub fn clear_link_fault(&mut self, from: &str, to: &str) {
        self.faults.remove(&(from.to_owned(), to.to_owned()));
    }

    /// The fault currently installed on `from → to`, if any.
    pub fn link_fault(&self, from: &str, to: &str) -> Option<&LinkFault> {
        self.faults.get(&(from.to_owned(), to.to_owned()))
    }

    /// Partitions both directions between `a` and `b` until `heal_at`:
    /// messages coming due while the partition holds are counted as lost.
    /// Other fault parameters already installed on the links are kept.
    pub fn partition(&mut self, a: &str, b: &str, heal_at: Tick) {
        for (from, to) in [(a, b), (b, a)] {
            self.faults
                .entry((from.to_owned(), to.to_owned()))
                .or_default()
                .partition_until = Some(heal_at);
        }
    }

    /// Heals a partition between `a` and `b` immediately (both directions).
    pub fn heal(&mut self, a: &str, b: &str) {
        for (from, to) in [(a, b), (b, a)] {
            if let Some(fault) = self.faults.get_mut(&(from.to_owned(), to.to_owned())) {
                fault.partition_until = None;
            }
        }
    }

    /// Returns `true` if `from → to` is partitioned at the hub's current time.
    pub fn is_partitioned(&self, from: &str, to: &str) -> bool {
        self.faults
            .get(&(from.to_owned(), to.to_owned()))
            .is_some_and(|f| f.is_partitioned(self.now))
    }

    // ------------------------------------------------------------------
    // Traffic
    // ------------------------------------------------------------------

    /// Sends a message from one endpoint to another.
    ///
    /// The message always enters the in-flight set; loss and partitions are
    /// applied when it comes due in [`TransportHub::step`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::TransportClosed`] if either endpoint is unknown.
    pub fn send(&mut self, from: &str, to: &str, payload: Vec<u8>) -> Result<()> {
        if !self.mailboxes.contains_key(from) {
            return Err(DynarError::TransportClosed(from.to_owned()));
        }
        if !self.mailboxes.contains_key(to) {
            return Err(DynarError::TransportClosed(to.to_owned()));
        }
        self.stats.sent += 1;
        self.stats.in_flight += 1;

        let link = (from.to_owned(), to.to_owned());
        let jitter = if self.faults.is_empty() {
            0
        } else {
            match self.faults.get(&link).map(|f| f.jitter_ticks) {
                Some(jitter) if jitter > 0 => self.rng.gen_range_u64(0, jitter + 1),
                _ => 0,
            }
        };
        let mut deliver_at = self.now.advance(self.config.latency_ticks + jitter);
        if let Some(&last) = self.last_scheduled.get(&link) {
            deliver_at = deliver_at.max(last);
        }
        self.last_scheduled.insert(link, deliver_at);
        self.in_flight.push(InFlight {
            from: from.to_owned(),
            to: to.to_owned(),
            payload,
            deliver_at,
        });
        Ok(())
    }

    /// Advances the hub to `now`, resolving every message whose latency has
    /// elapsed: messages on a partitioned link or picked by the loss model
    /// are counted as lost, messages towards an unregistered mailbox as
    /// dropped, everything else is delivered.
    pub fn step(&mut self, now: Tick) {
        self.now = now;
        let (due, pending): (Vec<_>, Vec<_>) =
            self.in_flight.drain(..).partition(|m| m.deliver_at <= now);
        self.in_flight = pending;
        let no_faults = self.faults.is_empty();
        for message in due {
            self.stats.in_flight -= 1;
            // The fault lookup needs owned keys; skip it (and its two String
            // allocations per message) on the common fault-free hub.
            let fault = if no_faults {
                None
            } else {
                self.faults.get(&(message.from.clone(), message.to.clone()))
            };
            if fault.is_some_and(|f| f.is_partitioned(now)) {
                self.stats.lost += 1;
                continue;
            }
            let loss = fault
                .and_then(|f| f.loss_probability)
                .unwrap_or(self.config.loss_probability);
            if loss > 0.0 && self.rng.gen_bool(loss.clamp(0.0, 1.0)) {
                self.stats.lost += 1;
                continue;
            }
            match self.mailboxes.get_mut(&message.to) {
                Some(mailbox) => {
                    mailbox.push_back((message.from, message.payload));
                    self.stats.delivered += 1;
                }
                None => self.stats.dropped += 1,
            }
        }
    }

    /// Drains every message delivered to `endpoint`, as `(sender, payload)`
    /// pairs in delivery order.
    pub fn receive(&mut self, endpoint: &str) -> Vec<(String, Vec<u8>)> {
        self.mailboxes
            .get_mut(endpoint)
            .map(|mb| mb.drain(..).collect())
            .unwrap_or_default()
    }

    /// Number of messages waiting for `endpoint`.
    pub fn pending_for(&self, endpoint: &str) -> usize {
        self.mailboxes.get(endpoint).map(VecDeque::len).unwrap_or(0)
    }

    /// Number of accepted messages that have not come due yet.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> TransportHub {
        let mut hub = TransportHub::new(TransportConfig::default());
        hub.register("a");
        hub.register("b");
        hub
    }

    #[test]
    fn messages_flow_between_registered_endpoints() {
        let mut hub = hub();
        hub.send("a", "b", vec![1, 2]).unwrap();
        hub.step(Tick::new(1));
        assert_eq!(hub.receive("b"), vec![("a".to_string(), vec![1, 2])]);
        assert!(hub.receive("b").is_empty());
        assert_eq!(hub.stats().delivered, 1);
        assert!(hub.stats().is_conserved());
    }

    #[test]
    fn unknown_endpoints_are_rejected() {
        let mut hub = hub();
        assert!(hub.send("a", "ghost", vec![]).is_err());
        assert!(hub.send("ghost", "a", vec![]).is_err());
        assert!(!hub.is_registered("ghost"));
    }

    #[test]
    fn latency_delays_delivery() {
        let mut hub = TransportHub::new(TransportConfig {
            latency_ticks: 5,
            ..TransportConfig::default()
        });
        hub.register("a");
        hub.register("b");
        hub.send("a", "b", vec![9]).unwrap();
        hub.step(Tick::new(4));
        assert_eq!(hub.pending_for("b"), 0);
        assert_eq!(hub.in_flight_count(), 1);
        hub.step(Tick::new(5));
        assert_eq!(hub.pending_for("b"), 1);
        assert_eq!(hub.in_flight_count(), 0);
    }

    #[test]
    fn loss_model_is_reproducible_and_applied_at_delivery_time() {
        let run = |seed| {
            let mut hub = TransportHub::new(TransportConfig {
                loss_probability: 0.5,
                seed,
                ..TransportConfig::default()
            });
            hub.register("a");
            hub.register("b");
            for i in 0..100u8 {
                hub.send("a", "b", vec![i]).unwrap();
            }
            // Loss is decided at delivery time: everything accepted is in
            // flight until the step resolves it.
            assert_eq!(hub.stats().lost, 0);
            assert_eq!(hub.stats().in_flight, 100);
            hub.step(Tick::new(1));
            assert!(hub.stats().is_conserved());
            assert_eq!(hub.stats().in_flight, 0);
            hub.stats().lost
        };
        assert_eq!(run(3), run(3));
        assert!(run(3) > 0);
    }

    #[test]
    fn ordering_is_preserved_per_destination() {
        let mut hub = hub();
        for i in 0..5u8 {
            hub.send("a", "b", vec![i]).unwrap();
        }
        hub.step(Tick::new(1));
        let payloads: Vec<u8> = hub.receive("b").into_iter().map(|(_, p)| p[0]).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn jitter_never_reorders_a_link() {
        let mut hub = TransportHub::new(TransportConfig {
            latency_ticks: 1,
            ..TransportConfig::default()
        });
        hub.register("a");
        hub.register("b");
        hub.set_link_fault("a", "b", LinkFault::jittery(7));
        for i in 0..40u8 {
            hub.send("a", "b", vec![i]).unwrap();
        }
        let mut received = Vec::new();
        for t in 1..=16u64 {
            hub.step(Tick::new(t));
            received.extend(hub.receive("b").into_iter().map(|(_, p)| p[0]));
        }
        assert_eq!(received.len(), 40, "jitter only delays, never loses");
        assert!(
            received.windows(2).all(|w| w[0] < w[1]),
            "per-link FIFO must survive jitter: {received:?}"
        );
        assert!(hub.stats().is_conserved());
    }

    #[test]
    fn unregistered_destinations_count_as_dropped() {
        // A mailbox that disappears between send and step: simulate by
        // sending to an endpoint registered on a different hub view.  The
        // hub cannot unregister today, so exercise the accounting through
        // the internal path: send to "b", then steal its mailbox.
        let mut hub = hub();
        hub.send("a", "b", vec![1]).unwrap();
        hub.mailboxes.remove("b");
        hub.step(Tick::new(1));
        let stats = hub.stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.delivered, 0);
        assert!(stats.is_conserved());
    }

    #[test]
    fn partition_loses_due_messages_until_it_heals() {
        let mut hub = hub();
        hub.partition("a", "b", Tick::new(10));
        hub.send("a", "b", vec![1]).unwrap();
        hub.send("b", "a", vec![2]).unwrap();
        hub.step(Tick::new(1));
        assert_eq!(hub.stats().lost, 2, "both directions are cut");
        assert!(hub.is_partitioned("a", "b"));

        // After the heal tick traffic flows again (same fault entries).
        hub.send("a", "b", vec![3]).unwrap();
        hub.step(Tick::new(10));
        assert!(!hub.is_partitioned("a", "b"));
        assert_eq!(hub.receive("b"), vec![("a".to_string(), vec![3])]);
        assert!(hub.stats().is_conserved());
    }

    #[test]
    fn heal_clears_a_partition_early() {
        let mut hub = hub();
        hub.partition("a", "b", Tick::new(100));
        hub.heal("a", "b");
        hub.send("a", "b", vec![1]).unwrap();
        hub.step(Tick::new(1));
        assert_eq!(hub.stats().delivered, 1);
    }

    #[test]
    fn asymmetric_loss_hits_only_the_configured_direction() {
        let mut hub = hub();
        hub.set_link_fault("a", "b", LinkFault::lossy(1.0));
        for _ in 0..10 {
            hub.send("a", "b", vec![1]).unwrap();
            hub.send("b", "a", vec![2]).unwrap();
        }
        hub.step(Tick::new(1));
        let stats = hub.stats();
        assert_eq!(stats.lost, 10, "a→b drops everything");
        assert_eq!(stats.delivered, 10, "b→a is untouched");
        assert!(stats.is_conserved());
    }

    #[test]
    fn clear_link_fault_restores_the_global_model() {
        let mut hub = hub();
        hub.set_link_fault("a", "b", LinkFault::lossy(1.0));
        assert!(hub.link_fault("a", "b").is_some());
        hub.clear_link_fault("a", "b");
        hub.send("a", "b", vec![1]).unwrap();
        hub.step(Tick::new(1));
        assert_eq!(hub.stats().delivered, 1);
    }

    #[test]
    fn conservation_holds_under_mixed_faults() {
        let mut hub = TransportHub::new(TransportConfig {
            latency_ticks: 2,
            loss_probability: 0.3,
            seed: 42,
        });
        hub.register("a");
        hub.register("b");
        hub.register("c");
        hub.set_link_fault("a", "c", LinkFault::jittery(3));
        hub.partition("b", "c", Tick::new(6));
        for t in 1..=20u64 {
            hub.send("a", "b", vec![t as u8]).unwrap();
            hub.send("a", "c", vec![t as u8]).unwrap();
            hub.send("b", "c", vec![t as u8]).unwrap();
            hub.step(Tick::new(t));
            assert!(hub.stats().is_conserved(), "tick {t}: {:?}", hub.stats());
            hub.receive("b");
            hub.receive("c");
        }
        hub.step(Tick::new(40));
        let stats = hub.stats();
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.sent, stats.delivered + stats.lost + stats.dropped);
    }
}
