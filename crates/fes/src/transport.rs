//! The simulated external transport connecting vehicles, the trusted server
//! and federation participants.
//!
//! The paper's prototype uses TCP sockets between the ECM, the trusted server
//! and the smart phone.  The transport hub keeps the same message semantics —
//! addressed, ordered, possibly delayed or lost datagrams — without real
//! sockets, so simulations stay deterministic.

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::time::Tick;

/// Configuration of the simulated external network.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportConfig {
    /// Delivery latency in ticks.
    pub latency_ticks: u64,
    /// Probability in `[0, 1]` that a message is lost.
    pub loss_probability: f64,
    /// Seed for the loss model.
    pub seed: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            latency_ticks: 1,
            loss_probability: 0.0,
            seed: 0xF0F0,
        }
    }
}

/// Counters describing external traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Messages accepted for delivery.
    pub sent: u64,
    /// Messages delivered to their destination mailbox.
    pub delivered: u64,
    /// Messages dropped by the loss model.
    pub lost: u64,
}

#[derive(Debug, Clone)]
struct InFlight {
    from: String,
    to: String,
    payload: Vec<u8>,
    deliver_at: Tick,
}

/// A hub of named endpoints exchanging addressed byte messages.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct TransportHub {
    config: TransportConfig,
    mailboxes: HashMap<String, VecDeque<(String, Vec<u8>)>>,
    in_flight: Vec<InFlight>,
    stats: TransportStats,
    rng: StdRng,
    now: Tick,
}

impl TransportHub {
    /// Creates a hub with the given configuration.
    pub fn new(config: TransportConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        TransportHub {
            config,
            mailboxes: HashMap::new(),
            in_flight: Vec::new(),
            stats: TransportStats::default(),
            rng,
            now: Tick::ZERO,
        }
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Registers an endpoint (idempotent).
    pub fn register(&mut self, name: impl Into<String>) {
        self.mailboxes.entry(name.into()).or_default();
    }

    /// Returns `true` if the endpoint is registered.
    pub fn is_registered(&self, name: &str) -> bool {
        self.mailboxes.contains_key(name)
    }

    /// Sends a message from one endpoint to another.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::TransportClosed`] if either endpoint is unknown.
    pub fn send(&mut self, from: &str, to: &str, payload: Vec<u8>) -> Result<()> {
        if !self.mailboxes.contains_key(from) {
            return Err(DynarError::TransportClosed(from.to_owned()));
        }
        if !self.mailboxes.contains_key(to) {
            return Err(DynarError::TransportClosed(to.to_owned()));
        }
        self.stats.sent += 1;
        if self.config.loss_probability > 0.0
            && self
                .rng
                .gen_bool(self.config.loss_probability.clamp(0.0, 1.0))
        {
            self.stats.lost += 1;
            return Ok(());
        }
        self.in_flight.push(InFlight {
            from: from.to_owned(),
            to: to.to_owned(),
            payload,
            deliver_at: self.now.advance(self.config.latency_ticks),
        });
        Ok(())
    }

    /// Advances the hub to `now`, delivering every message whose latency has
    /// elapsed.
    pub fn step(&mut self, now: Tick) {
        self.now = now;
        let (due, pending): (Vec<_>, Vec<_>) =
            self.in_flight.drain(..).partition(|m| m.deliver_at <= now);
        self.in_flight = pending;
        for message in due {
            if let Some(mailbox) = self.mailboxes.get_mut(&message.to) {
                mailbox.push_back((message.from, message.payload));
                self.stats.delivered += 1;
            }
        }
    }

    /// Drains every message delivered to `endpoint`, as `(sender, payload)`
    /// pairs in delivery order.
    pub fn receive(&mut self, endpoint: &str) -> Vec<(String, Vec<u8>)> {
        self.mailboxes
            .get_mut(endpoint)
            .map(|mb| mb.drain(..).collect())
            .unwrap_or_default()
    }

    /// Number of messages waiting for `endpoint`.
    pub fn pending_for(&self, endpoint: &str) -> usize {
        self.mailboxes.get(endpoint).map(VecDeque::len).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> TransportHub {
        let mut hub = TransportHub::new(TransportConfig::default());
        hub.register("a");
        hub.register("b");
        hub
    }

    #[test]
    fn messages_flow_between_registered_endpoints() {
        let mut hub = hub();
        hub.send("a", "b", vec![1, 2]).unwrap();
        hub.step(Tick::new(1));
        assert_eq!(hub.receive("b"), vec![("a".to_string(), vec![1, 2])]);
        assert!(hub.receive("b").is_empty());
        assert_eq!(hub.stats().delivered, 1);
    }

    #[test]
    fn unknown_endpoints_are_rejected() {
        let mut hub = hub();
        assert!(hub.send("a", "ghost", vec![]).is_err());
        assert!(hub.send("ghost", "a", vec![]).is_err());
        assert!(!hub.is_registered("ghost"));
    }

    #[test]
    fn latency_delays_delivery() {
        let mut hub = TransportHub::new(TransportConfig {
            latency_ticks: 5,
            ..TransportConfig::default()
        });
        hub.register("a");
        hub.register("b");
        hub.send("a", "b", vec![9]).unwrap();
        hub.step(Tick::new(4));
        assert_eq!(hub.pending_for("b"), 0);
        hub.step(Tick::new(5));
        assert_eq!(hub.pending_for("b"), 1);
    }

    #[test]
    fn loss_model_is_reproducible() {
        let run = |seed| {
            let mut hub = TransportHub::new(TransportConfig {
                loss_probability: 0.5,
                seed,
                ..TransportConfig::default()
            });
            hub.register("a");
            hub.register("b");
            for i in 0..100u8 {
                hub.send("a", "b", vec![i]).unwrap();
            }
            hub.stats().lost
        };
        assert_eq!(run(3), run(3));
        assert!(run(3) > 0);
    }

    #[test]
    fn ordering_is_preserved_per_destination() {
        let mut hub = hub();
        for i in 0..5u8 {
            hub.send("a", "b", vec![i]).unwrap();
        }
        hub.step(Tick::new(1));
        let payloads: Vec<u8> = hub.receive("b").into_iter().map(|(_, p)| p[0]).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
    }
}
