//! The simulated external transport connecting vehicles, the trusted server
//! and federation participants.
//!
//! The paper's prototype uses TCP sockets between the ECM, the trusted server
//! and the smart phone.  The transport hub keeps the same message semantics —
//! addressed, ordered, possibly delayed or lost datagrams — without real
//! sockets, so simulations stay deterministic.
//!
//! # The two planes
//!
//! Like the signal-routing planes of the RTE and the PIRTE, the hub separates
//! a **slow registration plane** from the **fast delivery plane**:
//!
//! * Registration, unregistration and fault installation are keyed by
//!   endpoint *names* (`&str`) — the API the trusted server, ECMs and
//!   devices use.  Each registered endpoint is interned onto a dense
//!   [`Slot`].
//! * Every per-message operation works on slots: mailboxes are a flat
//!   `Vec` indexed by endpoint slot, the fault table is keyed by
//!   `(Slot, Slot)` link pairs, and payloads are shared [`Payload`]
//!   buffers.  A steady-state `send`/`step`/[`TransportHub::drain_into`]
//!   round allocates nothing.
//!
//! # Fault injection
//!
//! On top of the global [`TransportConfig`] loss model the hub supports
//! per-link faults ([`LinkFault`]): asymmetric loss (a different probability
//! per direction), latency jitter, and temporary partitions that heal at a
//! configured tick.  All fault decisions are made **at delivery time** inside
//! [`TransportHub::step`], never at send time, so every accepted message
//! enters the in-flight set and faults compose deterministically with
//! partitions under one seed.
//!
//! # Stats conservation
//!
//! Every accepted message is accounted for exactly once:
//!
//! ```text
//! sent == delivered + lost + dropped + in_flight
//! ```
//!
//! holds at every tick ([`TransportStats::is_conserved`]); once the hub is
//! quiescent (`in_flight == 0`) this is the `sent == delivered + lost +
//! dropped` identity the chaos scenarios assert.  Unregistering an endpoint
//! voids the messages still in flight towards it: they are counted as
//! `dropped` when they come due, and a later re-registration (which may reuse
//! the freed slot) never receives them.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::intern::Slot;
pub use dynar_foundation::payload::Payload;
use dynar_foundation::time::Tick;

/// The shared endpoint name attached to delivered messages (an `Arc<str>`
/// clone of the name captured at send time — no allocation per message).
pub type EndpointName = Arc<str>;

/// A shared, lockable handle to any [`Transport`] backend — what the trusted
/// server, every ECM gateway and external devices clone.  The deterministic
/// [`TransportHub`] and the socket-backed [`crate::udp::UdpTransport`] both
/// coerce into it.
pub type SharedTransport = Arc<parking_lot::Mutex<dyn Transport>>;

/// Wraps a backend into the [`SharedTransport`] handle federation components
/// clone (the unsized coercion happens here, once).
pub fn shared_transport(backend: impl Transport + 'static) -> SharedTransport {
    Arc::new(parking_lot::Mutex::new(backend))
}

/// The transport abstraction between federation participants: named
/// endpoints exchanging addressed, ordered byte messages.
///
/// Backends differ in *how* messages move — the deterministic in-memory
/// [`TransportHub`] resolves them inside [`Transport::step`] under one seed,
/// the [`crate::udp::UdpTransport`] pushes real datagrams through loopback
/// sockets — but every backend upholds the same contract, pinned by the
/// shared conformance suite (`tests/transport_conformance.rs`):
///
/// * **Registration** is idempotent; sending from or to an unknown endpoint
///   is a typed [`DynarError::TransportClosed`] error.
/// * **Per-link FIFO**: a later message never overtakes an earlier one on
///   the same `from → to` link (absent induced reordering faults).
/// * **Conservation**: `sent == delivered + lost + dropped + in_flight`
///   at every observation point ([`TransportStats::is_conserved`]).
/// * **Unregister feedback**: traffic towards a departed endpoint counts as
///   `dropped` and surfaces the destination name through
///   [`Transport::take_dropped_destinations`], never reaches a later tenant
///   of the endpoint name.
///
/// Fault injection (per-link loss, jitter, partitions) is an *optional
/// capability*: backends that can fault deterministically expose it through
/// [`Transport::fault_injection`]; wire backends model their induced faults
/// at construction time instead.
pub trait Transport: std::fmt::Debug + Send {
    /// Registers an endpoint (idempotent).
    fn register(&mut self, name: &str);

    /// Unregisters an endpoint, voiding traffic still in flight towards it
    /// (counted as `dropped` when it arrives).  Returns `true` if the
    /// endpoint was registered.
    fn unregister(&mut self, name: &str) -> bool;

    /// Returns `true` if the endpoint is registered.
    fn is_registered(&self, name: &str) -> bool;

    /// Sends a message from one endpoint to another.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::TransportClosed`] if either endpoint is unknown.
    fn send(&mut self, from: &str, to: &str, payload: Payload) -> Result<()>;

    /// Advances the backend to `now`, moving due messages into destination
    /// mailboxes (and, for wire backends, pumping the underlying sockets).
    fn step(&mut self, now: Tick);

    /// Drains every message delivered to `endpoint` into `into`, as
    /// `(sender, payload)` pairs in delivery order, without allocating.
    /// An empty mailbox leaves `into` untouched.
    fn drain_into(&mut self, endpoint: &str, into: &mut Vec<(EndpointName, Payload)>);

    /// Number of messages waiting for `endpoint`.
    fn pending_for(&self, endpoint: &str) -> usize;

    /// Traffic statistics accumulated so far.
    fn stats(&self) -> TransportStats;

    /// Drains the names of destinations whose in-flight messages were
    /// dropped because the endpoint unregistered (one entry per dropped
    /// message).  Senders use this to park traffic instead of retrying into
    /// a void.
    fn take_dropped_destinations(&mut self) -> Vec<EndpointName>;

    /// The deterministic fault-injection capability, if this backend has
    /// one.  The default is `None`: callers must treat fault injection as
    /// optional and skip (not fail) when it is absent.
    fn fault_injection(&mut self) -> Option<&mut dyn FaultInjection> {
        None
    }

    /// Drains every message delivered to `endpoint` into a fresh vector —
    /// the allocating convenience over [`Transport::drain_into`] for tests
    /// and one-shot consumers.  Steady-state consumers (the fleet scheduler,
    /// the ECM gateway) use `drain_into` with a reused buffer instead.
    fn drain(&mut self, endpoint: &str) -> Vec<(EndpointName, Payload)> {
        let mut drained = Vec::new();
        self.drain_into(endpoint, &mut drained);
        drained
    }
}

/// Deterministic per-link fault injection: the optional [`Transport`]
/// capability the chaos scenarios drive.  All parameters are keyed by
/// endpoint *names* and may be installed before the endpoints register.
pub trait FaultInjection {
    /// Installs (or replaces) the fault model of the directed link
    /// `from → to`.
    fn set_link_fault(&mut self, from: &str, to: &str, fault: LinkFault);

    /// Removes the fault model of the directed link `from → to`.
    fn clear_link_fault(&mut self, from: &str, to: &str);

    /// The fault currently installed on `from → to`, if any.
    fn link_fault(&self, from: &str, to: &str) -> Option<&LinkFault>;

    /// Partitions both directions between `a` and `b` until `heal_at`.
    fn partition(&mut self, a: &str, b: &str, heal_at: Tick);

    /// Heals a partition between `a` and `b` immediately (both directions).
    fn heal(&mut self, a: &str, b: &str);

    /// Returns `true` if `from → to` is partitioned at the backend's
    /// current time.
    fn is_partitioned(&self, from: &str, to: &str) -> bool;
}

/// Upper bound on undrained dropped-destination feedback entries (see
/// [`TransportHub::take_dropped_destinations`]): hubs whose owner never
/// drains the feedback must not accumulate one name per dropped message for
/// the life of the simulation.
pub(crate) const DROPPED_FEEDBACK_CAP: usize = 1024;

/// Configuration of the simulated external network.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportConfig {
    /// Delivery latency in ticks.
    pub latency_ticks: u64,
    /// Probability in `[0, 1]` that a message is lost.
    pub loss_probability: f64,
    /// Seed for the loss model.
    pub seed: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            latency_ticks: 1,
            loss_probability: 0.0,
            seed: 0xF0F0,
        }
    }
}

/// Counters describing external traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Messages accepted for delivery.
    pub sent: u64,
    /// Messages delivered to their destination mailbox.
    pub delivered: u64,
    /// Messages removed by the loss model or a partition.
    pub lost: u64,
    /// Messages that came due towards an unregistered mailbox.
    pub dropped: u64,
    /// Messages accepted but not yet due.
    pub in_flight: u64,
}

impl TransportStats {
    /// The conservation invariant: every accepted message is delivered, lost,
    /// dropped or still in flight — nothing disappears silently.
    pub fn is_conserved(&self) -> bool {
        self.sent == self.delivered + self.lost + self.dropped + self.in_flight
    }
}

/// Fault model of one directed link (`from` → `to`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkFault {
    /// Loss probability override for this direction; `None` falls back to the
    /// global [`TransportConfig::loss_probability`].  Setting different
    /// values per direction models asymmetric loss.
    pub loss_probability: Option<f64>,
    /// Extra random latency in `[0, jitter_ticks]` added per message.
    /// Per-link FIFO order is preserved regardless (TCP semantics: a later
    /// message never overtakes an earlier one on the same link).
    pub jitter_ticks: u64,
    /// While set, every message coming due on this link is counted as lost.
    /// The partition heals automatically once `step` reaches this tick.
    pub partition_until: Option<Tick>,
}

impl LinkFault {
    /// A fault that only overrides the loss probability.
    pub fn lossy(probability: f64) -> Self {
        LinkFault {
            loss_probability: Some(probability),
            ..LinkFault::default()
        }
    }

    /// A fault that only adds latency jitter.
    pub fn jittery(jitter_ticks: u64) -> Self {
        LinkFault {
            jitter_ticks,
            ..LinkFault::default()
        }
    }

    /// Returns `true` if the link is partitioned at `now`.
    pub fn is_partitioned(&self, now: Tick) -> bool {
        self.partition_until.is_some_and(|until| now < until)
    }
}

#[derive(Debug, Clone)]
struct InFlight {
    /// The sender's name, captured at send time (survives unregistration).
    from_name: EndpointName,
    /// The destination's name, captured at send time: still available for
    /// dropped-destination feedback after the endpoint unregistered.
    to_name: EndpointName,
    from: Slot,
    to: Slot,
    /// Destination-slot generation at send time: if the endpoint unregisters
    /// (and the slot is possibly reused), the generations no longer match and
    /// the message is counted as dropped instead of delivered to a stranger.
    to_generation: u32,
    /// Sender-slot generation at send time: keeps the per-link random stream
    /// of a departed sender's stale traffic apart from the stream of
    /// whichever endpoint reuses the slot.
    from_generation: u32,
    payload: Payload,
    deliver_at: Tick,
}

/// The slow-plane endpoint registry: names interned onto dense slots, with a
/// per-slot generation so in-flight traffic cannot leak across
/// unregister/re-register cycles.
#[derive(Debug, Default)]
struct EndpointRegistry {
    by_name: HashMap<EndpointName, Slot>,
    /// slot -> name (`None` for freed slots).
    names: Vec<Option<EndpointName>>,
    /// slot -> generation, bumped on unregister.
    generations: Vec<u32>,
    free: Vec<Slot>,
}

impl EndpointRegistry {
    fn get(&self, name: &str) -> Option<Slot> {
        self.by_name.get(name).copied()
    }

    fn name_of(&self, slot: Slot) -> Option<&EndpointName> {
        self.names.get(slot.index()).and_then(Option::as_ref)
    }

    fn generation(&self, slot: Slot) -> u32 {
        self.generations[slot.index()]
    }

    fn register(&mut self, name: &str) -> (Slot, bool) {
        if let Some(slot) = self.get(name) {
            return (slot, false);
        }
        let name: EndpointName = Arc::from(name);
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = Slot::from_raw(u32::try_from(self.names.len()).expect("slot overflow"));
                self.names.push(None);
                self.generations.push(0);
                slot
            }
        };
        self.names[slot.index()] = Some(Arc::clone(&name));
        self.by_name.insert(name, slot);
        (slot, true)
    }

    fn unregister(&mut self, name: &str) -> Option<Slot> {
        let slot = self.by_name.remove(name)?;
        self.names[slot.index()] = None;
        self.generations[slot.index()] += 1;
        self.free.push(slot);
        Some(slot)
    }

    /// Width of the dense tables (live + freed slots).
    fn capacity(&self) -> usize {
        self.names.len()
    }
}

/// A hub of named endpoints exchanging addressed byte messages.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct TransportHub {
    config: TransportConfig,
    endpoints: EndpointRegistry,
    /// endpoint slot -> mailbox (`None` for unregistered slots).
    mailboxes: Vec<Option<VecDeque<(EndpointName, Payload)>>>,
    in_flight: Vec<InFlight>,
    /// Scratch buffer `step` compacts `in_flight` through, so the fast plane
    /// never reallocates the queue.
    in_flight_scratch: Vec<InFlight>,
    /// Earliest `deliver_at` of any in-flight message: lets a quiescent
    /// `step` return in O(1).
    next_due: Option<Tick>,
    /// Slow plane: faults keyed by endpoint names (installable before the
    /// endpoints register).
    faults: HashMap<(String, String), LinkFault>,
    /// Fast plane: faults of currently registered link pairs, compiled from
    /// `faults` on every registration or fault change.
    compiled_faults: HashMap<(Slot, Slot), LinkFault>,
    /// Latest scheduled delivery per directed link, clamping jittered
    /// latencies so per-link FIFO order always holds.  Only consulted while
    /// faults are installed — without jitter, constant latency keeps
    /// per-link schedules monotone by construction.
    last_scheduled: HashMap<(Slot, Slot), Tick>,
    /// Destinations whose in-flight messages came due after the endpoint
    /// unregistered (drained by [`TransportHub::take_dropped_destinations`]):
    /// the senders' side of the federation uses this to park traffic instead
    /// of retrying into a void.
    dropped_destinations: Vec<EndpointName>,
    stats: TransportStats,
    /// One independent random stream per `(from, to)` link, created lazily
    /// at the link's first draw and seeded from the hub seed plus the two
    /// endpoint *names*.  Keying the streams by link (rather than one global
    /// stream) makes every link's loss/jitter history a function of that
    /// link's own traffic alone: partitioning a fleet across several hubs —
    /// or reordering unrelated links' events — leaves each link's draws
    /// bit-identical.  The key carries the slot generations (see [`LinkKey`])
    /// so slot reuse never lets a new tenant resume a dead tenant's stream.
    link_rngs: HashMap<LinkKey, StdRng>,
    now: Tick,
}

/// Derives the deterministic per-link seed: FNV-1a (64 bit) over the hub
/// seed and both endpoint names.  Name-based (not slot-based), so the stream
/// survives slot-number differences between hub layouts.
fn link_seed(seed: u64, from: &str, to: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for byte in seed
        .to_le_bytes()
        .iter()
        .chain(from.as_bytes())
        .chain(&[0xFF])
        .chain(to.as_bytes())
    {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// One directed link as the random-stream map sees it: both endpoint slots
/// *with their generations*.  The generations matter: a message still in
/// flight when its endpoint unregisters draws its loss roll at delivery —
/// after the purge — which lazily re-creates the stream.  Keyed by bare
/// slots, that resurrected entry would be inherited by whoever reuses the
/// slot next, resuming a dead tenant's stream mid-way (and making the draw
/// history depend on slot-assignment order, which differs between hub
/// layouts).  With the generation in the key, stale traffic draws from its
/// own stream and a reused slot's new tenant always seeds fresh.
type LinkKey = (Slot, u32, Slot, u32);

/// Looks up (or lazily seeds) the random stream of one link.  A free
/// function over the map field so callers can hold other `&mut self`
/// borrows at the draw site.
fn link_rng<'a>(
    link_rngs: &'a mut HashMap<LinkKey, StdRng>,
    seed: u64,
    link: LinkKey,
    from: &str,
    to: &str,
) -> &'a mut StdRng {
    link_rngs
        .entry(link)
        .or_insert_with(|| StdRng::seed_from_u64(link_seed(seed, from, to)))
}

impl TransportHub {
    /// Creates a hub with the given configuration.
    pub fn new(config: TransportConfig) -> Self {
        TransportHub {
            config,
            endpoints: EndpointRegistry::default(),
            mailboxes: Vec::new(),
            in_flight: Vec::new(),
            in_flight_scratch: Vec::new(),
            next_due: None,
            faults: HashMap::new(),
            compiled_faults: HashMap::new(),
            last_scheduled: HashMap::new(),
            dropped_destinations: Vec::new(),
            stats: TransportStats::default(),
            link_rngs: HashMap::new(),
            now: Tick::ZERO,
        }
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Registers an endpoint (idempotent), assigning it a dense slot.
    pub fn register(&mut self, name: impl AsRef<str>) {
        let (slot, fresh) = self.endpoints.register(name.as_ref());
        if slot.index() >= self.mailboxes.len() {
            self.mailboxes.resize_with(slot.index() + 1, || None);
        }
        if fresh {
            self.mailboxes[slot.index()] = Some(VecDeque::new());
            self.recompile_faults();
        }
    }

    /// Unregisters an endpoint, voiding the messages still in flight towards
    /// it (they count as `dropped` when they come due) and discarding
    /// whatever sat undrained in its mailbox.  Returns `true` if the
    /// endpoint was registered.
    ///
    /// The freed slot may be reused by a later registration; the per-slot
    /// generation guarantees the new tenant never sees the old tenant's
    /// traffic.
    pub fn unregister(&mut self, name: &str) -> bool {
        let Some(slot) = self.endpoints.unregister(name) else {
            return false;
        };
        self.mailboxes[slot.index()] = None;
        // The slot may be reused by a later registration: purge the per-link
        // FIFO clamps keyed by it, or the next tenant's traffic would be
        // clamped against the departed endpoint's delivery schedule.
        self.last_scheduled
            .retain(|(from, to), _| *from != slot && *to != slot);
        // The random streams are generation-keyed, so a reused slot's new
        // tenant can never resume the departed endpoint's streams — this
        // purge is garbage collection only.  (Stale in-flight traffic that
        // draws a loss roll after the purge re-seeds its stream from the
        // captured names, identically on any hub layout.)
        self.link_rngs
            .retain(|(from, _, to, _), _| *from != slot && *to != slot);
        self.recompile_faults();
        true
    }

    /// Returns `true` if the endpoint is registered.
    pub fn is_registered(&self, name: &str) -> bool {
        self.endpoints.get(name).is_some()
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Recompiles the slot-keyed fault table from the name-keyed slow plane.
    /// Called on registration changes and fault changes only.
    fn recompile_faults(&mut self) {
        self.compiled_faults.clear();
        for ((from, to), fault) in &self.faults {
            if let (Some(f), Some(t)) = (self.endpoints.get(from), self.endpoints.get(to)) {
                self.compiled_faults.insert((f, t), fault.clone());
            }
        }
    }

    /// Installs (or replaces) the fault model of the directed link
    /// `from → to`.  The endpoints do not need to be registered yet; the
    /// fault applies once they are.
    pub fn set_link_fault(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        fault: LinkFault,
    ) {
        self.faults.insert((from.into(), to.into()), fault);
        self.recompile_faults();
    }

    /// Removes the fault model of the directed link `from → to`.
    pub fn clear_link_fault(&mut self, from: &str, to: &str) {
        self.faults.remove(&(from.to_owned(), to.to_owned()));
        self.recompile_faults();
    }

    /// The fault currently installed on `from → to`, if any.
    pub fn link_fault(&self, from: &str, to: &str) -> Option<&LinkFault> {
        self.faults.get(&(from.to_owned(), to.to_owned()))
    }

    /// Partitions both directions between `a` and `b` until `heal_at`:
    /// messages coming due while the partition holds are counted as lost.
    /// Other fault parameters already installed on the links are kept.
    pub fn partition(&mut self, a: &str, b: &str, heal_at: Tick) {
        for (from, to) in [(a, b), (b, a)] {
            self.faults
                .entry((from.to_owned(), to.to_owned()))
                .or_default()
                .partition_until = Some(heal_at);
        }
        self.recompile_faults();
    }

    /// Heals a partition between `a` and `b` immediately (both directions).
    pub fn heal(&mut self, a: &str, b: &str) {
        for (from, to) in [(a, b), (b, a)] {
            if let Some(fault) = self.faults.get_mut(&(from.to_owned(), to.to_owned())) {
                fault.partition_until = None;
            }
        }
        self.recompile_faults();
    }

    /// Returns `true` if `from → to` is partitioned at the hub's current time.
    pub fn is_partitioned(&self, from: &str, to: &str) -> bool {
        self.faults
            .get(&(from.to_owned(), to.to_owned()))
            .is_some_and(|f| f.is_partitioned(self.now))
    }

    // ------------------------------------------------------------------
    // Traffic
    // ------------------------------------------------------------------

    /// Sends a message from one endpoint to another.
    ///
    /// The message always enters the in-flight set; loss and partitions are
    /// applied when it comes due in [`TransportHub::step`].  Pass a
    /// [`Payload`] directly to share an already-encoded buffer (the
    /// retransmission path does), or a `Vec<u8>` to wrap fresh bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::TransportClosed`] if either endpoint is unknown.
    pub fn send(&mut self, from: &str, to: &str, payload: impl Into<Payload>) -> Result<()> {
        let Some(from_slot) = self.endpoints.get(from) else {
            return Err(DynarError::TransportClosed(from.to_owned()));
        };
        let Some(to_slot) = self.endpoints.get(to) else {
            return Err(DynarError::TransportClosed(to.to_owned()));
        };
        self.stats.sent += 1;
        self.stats.in_flight += 1;

        let link = (from_slot, to_slot);
        let from_generation = self.endpoints.generation(from_slot);
        let to_generation = self.endpoints.generation(to_slot);
        let no_faults = self.compiled_faults.is_empty();
        let jitter = if no_faults {
            0
        } else {
            match self.compiled_faults.get(&link).map(|f| f.jitter_ticks) {
                Some(jitter) if jitter > 0 => link_rng(
                    &mut self.link_rngs,
                    self.config.seed,
                    (from_slot, from_generation, to_slot, to_generation),
                    from,
                    to,
                )
                .gen_range_u64(0, jitter + 1),
                _ => 0,
            }
        };
        let mut deliver_at = self.now.advance(self.config.latency_ticks + jitter);
        // FIFO clamp: needed once jitter can reorder a link — and kept alive
        // after the last fault clears, while jittered messages scheduled
        // into the future may still be in flight (the map only ever gains
        // entries while faults are installed, so the never-faulted fast path
        // skips it entirely).
        if !no_faults || !self.last_scheduled.is_empty() {
            match self.last_scheduled.entry(link) {
                std::collections::hash_map::Entry::Occupied(mut entry) => {
                    deliver_at = deliver_at.max(*entry.get());
                    entry.insert(deliver_at);
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    // Only track fresh links while faults are installed; a
                    // fault-free link's schedule is monotone by construction.
                    if !no_faults {
                        entry.insert(deliver_at);
                    }
                }
            }
        }
        self.next_due = Some(match self.next_due {
            Some(due) => due.min(deliver_at),
            None => deliver_at,
        });
        let from_name = Arc::clone(self.endpoints.name_of(from_slot).expect("slot is live"));
        let to_name = Arc::clone(self.endpoints.name_of(to_slot).expect("slot is live"));
        self.in_flight.push(InFlight {
            from_name,
            to_name,
            from: from_slot,
            to: to_slot,
            to_generation,
            from_generation,
            payload: payload.into(),
            deliver_at,
        });
        Ok(())
    }

    /// Advances the hub to `now`, resolving every message whose latency has
    /// elapsed: messages on a partitioned link or picked by the loss model
    /// are counted as lost, messages towards an unregistered mailbox as
    /// dropped, everything else is delivered.
    ///
    /// A quiescent step — nothing due — is O(1) and allocation-free; a busy
    /// step compacts the in-flight queue in place through a reused scratch
    /// buffer instead of reallocating it.
    pub fn step(&mut self, now: Tick) {
        self.now = now;
        if self.in_flight.is_empty() {
            // Quiescent: retire fault entries that can never act again — a
            // healed or expired partition with no loss/jitter override is a
            // structural no-op (heal() clears the field; expiry is decided
            // against the monotone clock).  Without this, one partition
            // would keep `compiled_faults` non-empty forever and the
            // clamp-free send fast path would never return.
            if !self.faults.is_empty() {
                let before = self.faults.len();
                self.faults.retain(|_, fault| {
                    fault.loss_probability.is_some()
                        || fault.jitter_ticks > 0
                        || fault.partition_until.is_some_and(|until| until > now)
                });
                if self.faults.len() != before {
                    self.recompile_faults();
                }
            }
            // Any surviving FIFO-clamp entries are provably inert (every
            // recorded delivery time has passed), so drop them too.
            if self.compiled_faults.is_empty() && !self.last_scheduled.is_empty() {
                self.last_scheduled.clear();
            }
            return;
        }
        if self.next_due.is_some_and(|due| due > now) {
            return;
        }
        let mut scratch = std::mem::take(&mut self.in_flight_scratch);
        debug_assert!(scratch.is_empty());
        std::mem::swap(&mut self.in_flight, &mut scratch);
        let mut next_due: Option<Tick> = None;
        let no_faults = self.compiled_faults.is_empty();
        for message in scratch.drain(..) {
            if message.deliver_at > now {
                next_due = Some(match next_due {
                    Some(due) => due.min(message.deliver_at),
                    None => message.deliver_at,
                });
                self.in_flight.push(message);
                continue;
            }
            self.stats.in_flight -= 1;
            let fault = if no_faults {
                None
            } else {
                self.compiled_faults.get(&(message.from, message.to))
            };
            if fault.is_some_and(|f| f.is_partitioned(now)) {
                self.stats.lost += 1;
                continue;
            }
            let loss = fault
                .and_then(|f| f.loss_probability)
                .unwrap_or(self.config.loss_probability);
            if loss > 0.0
                && link_rng(
                    &mut self.link_rngs,
                    self.config.seed,
                    (
                        message.from,
                        message.from_generation,
                        message.to,
                        message.to_generation,
                    ),
                    &message.from_name,
                    &message.to_name,
                )
                .gen_bool(loss.clamp(0.0, 1.0))
            {
                self.stats.lost += 1;
                continue;
            }
            let live = self.endpoints.generation(message.to) == message.to_generation;
            match self.mailboxes[message.to.index()].as_mut().filter(|_| live) {
                Some(mailbox) => {
                    mailbox.push_back((message.from_name, message.payload));
                    self.stats.delivered += 1;
                }
                None => {
                    self.stats.dropped += 1;
                    // Bounded: a hub whose owner never drains the feedback
                    // (single-vehicle worlds, device tests) must not leak one
                    // name per dropped message forever.  Past the cap the
                    // ledger still counts; only the redundant names go.
                    if self.dropped_destinations.len() < DROPPED_FEEDBACK_CAP {
                        self.dropped_destinations.push(message.to_name);
                    }
                }
            }
        }
        self.next_due = next_due;
        self.in_flight_scratch = scratch;
    }

    /// Drains every message delivered to `endpoint` into `into`, as
    /// `(sender, payload)` pairs in delivery order, without allocating:
    /// callers reuse their buffer across ticks.  An empty mailbox leaves
    /// `into` untouched.
    pub fn drain_into(&mut self, endpoint: &str, into: &mut Vec<(EndpointName, Payload)>) {
        let Some(slot) = self.endpoints.get(endpoint) else {
            return;
        };
        if let Some(mailbox) = self.mailboxes[slot.index()].as_mut() {
            into.extend(mailbox.drain(..));
        }
    }

    /// Number of messages waiting for `endpoint`.
    pub fn pending_for(&self, endpoint: &str) -> usize {
        self.endpoints
            .get(endpoint)
            .and_then(|slot| self.mailboxes[slot.index()].as_ref())
            .map(VecDeque::len)
            .unwrap_or(0)
    }

    /// Number of accepted messages that have not come due yet.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Drains the names of destinations whose in-flight messages were dropped
    /// because the endpoint unregistered (one entry per dropped message,
    /// delivery order).  Silently counting `dropped` is enough for the
    /// ledger, but not for the sender: the trusted server uses this feedback
    /// to park traffic towards a departed vehicle instead of burning its
    /// retry budget against a void.  Returns an empty vector — without
    /// allocating — when nothing was dropped.
    pub fn take_dropped_destinations(&mut self) -> Vec<EndpointName> {
        std::mem::take(&mut self.dropped_destinations)
    }

    /// Width of the dense endpoint tables (live + freed slots): bounded by
    /// the high-water mark of simultaneously registered endpoints, not by
    /// register/unregister churn.
    pub fn endpoint_slot_capacity(&self) -> usize {
        self.endpoints.capacity()
    }
}

impl Transport for TransportHub {
    fn register(&mut self, name: &str) {
        TransportHub::register(self, name);
    }

    fn unregister(&mut self, name: &str) -> bool {
        TransportHub::unregister(self, name)
    }

    fn is_registered(&self, name: &str) -> bool {
        TransportHub::is_registered(self, name)
    }

    fn send(&mut self, from: &str, to: &str, payload: Payload) -> Result<()> {
        TransportHub::send(self, from, to, payload)
    }

    fn step(&mut self, now: Tick) {
        TransportHub::step(self, now);
    }

    fn drain_into(&mut self, endpoint: &str, into: &mut Vec<(EndpointName, Payload)>) {
        TransportHub::drain_into(self, endpoint, into);
    }

    fn pending_for(&self, endpoint: &str) -> usize {
        TransportHub::pending_for(self, endpoint)
    }

    fn stats(&self) -> TransportStats {
        TransportHub::stats(self)
    }

    fn take_dropped_destinations(&mut self) -> Vec<EndpointName> {
        TransportHub::take_dropped_destinations(self)
    }

    /// The hub *is* the deterministic fault-injection backend.
    fn fault_injection(&mut self) -> Option<&mut dyn FaultInjection> {
        Some(self)
    }
}

impl FaultInjection for TransportHub {
    fn set_link_fault(&mut self, from: &str, to: &str, fault: LinkFault) {
        TransportHub::set_link_fault(self, from, to, fault);
    }

    fn clear_link_fault(&mut self, from: &str, to: &str) {
        TransportHub::clear_link_fault(self, from, to);
    }

    fn link_fault(&self, from: &str, to: &str) -> Option<&LinkFault> {
        TransportHub::link_fault(self, from, to)
    }

    fn partition(&mut self, a: &str, b: &str, heal_at: Tick) {
        TransportHub::partition(self, a, b, heal_at);
    }

    fn heal(&mut self, a: &str, b: &str) {
        TransportHub::heal(self, a, b);
    }

    fn is_partitioned(&self, from: &str, to: &str) -> bool {
        TransportHub::is_partitioned(self, from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> TransportHub {
        let mut hub = TransportHub::new(TransportConfig::default());
        hub.register("a");
        hub.register("b");
        hub
    }

    fn received(hub: &mut TransportHub, endpoint: &str) -> Vec<(String, Vec<u8>)> {
        hub.drain(endpoint)
            .into_iter()
            .map(|(from, payload)| (from.as_ref().to_owned(), payload.as_slice().to_vec()))
            .collect()
    }

    #[test]
    fn messages_flow_between_registered_endpoints() {
        let mut hub = hub();
        hub.send("a", "b", vec![1, 2]).unwrap();
        hub.step(Tick::new(1));
        assert_eq!(received(&mut hub, "b"), vec![("a".to_string(), vec![1, 2])]);
        assert!(hub.drain("b").is_empty());
        assert_eq!(hub.stats().delivered, 1);
        assert!(hub.stats().is_conserved());
    }

    #[test]
    fn unknown_endpoints_are_rejected() {
        let mut hub = hub();
        assert!(hub.send("a", "ghost", vec![]).is_err());
        assert!(hub.send("ghost", "a", vec![]).is_err());
        assert!(!hub.is_registered("ghost"));
    }

    #[test]
    fn latency_delays_delivery() {
        let mut hub = TransportHub::new(TransportConfig {
            latency_ticks: 5,
            ..TransportConfig::default()
        });
        hub.register("a");
        hub.register("b");
        hub.send("a", "b", vec![9]).unwrap();
        hub.step(Tick::new(4));
        assert_eq!(hub.pending_for("b"), 0);
        assert_eq!(hub.in_flight_count(), 1);
        hub.step(Tick::new(5));
        assert_eq!(hub.pending_for("b"), 1);
        assert_eq!(hub.in_flight_count(), 0);
    }

    #[test]
    fn loss_model_is_reproducible_and_applied_at_delivery_time() {
        let run = |seed| {
            let mut hub = TransportHub::new(TransportConfig {
                loss_probability: 0.5,
                seed,
                ..TransportConfig::default()
            });
            hub.register("a");
            hub.register("b");
            for i in 0..100u8 {
                hub.send("a", "b", vec![i]).unwrap();
            }
            // Loss is decided at delivery time: everything accepted is in
            // flight until the step resolves it.
            assert_eq!(hub.stats().lost, 0);
            assert_eq!(hub.stats().in_flight, 100);
            hub.step(Tick::new(1));
            assert!(hub.stats().is_conserved());
            assert_eq!(hub.stats().in_flight, 0);
            hub.stats().lost
        };
        assert_eq!(run(3), run(3));
        assert!(run(3) > 0);
    }

    #[test]
    fn ordering_is_preserved_per_destination() {
        let mut hub = hub();
        for i in 0..5u8 {
            hub.send("a", "b", vec![i]).unwrap();
        }
        hub.step(Tick::new(1));
        let payloads: Vec<u8> = hub.drain("b").into_iter().map(|(_, p)| p[0]).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn jitter_never_reorders_a_link() {
        let mut hub = TransportHub::new(TransportConfig {
            latency_ticks: 1,
            ..TransportConfig::default()
        });
        hub.register("a");
        hub.register("b");
        hub.set_link_fault("a", "b", LinkFault::jittery(7));
        for i in 0..40u8 {
            hub.send("a", "b", vec![i]).unwrap();
        }
        let mut received = Vec::new();
        for t in 1..=16u64 {
            hub.step(Tick::new(t));
            received.extend(hub.drain("b").into_iter().map(|(_, p)| p[0]));
        }
        assert_eq!(received.len(), 40, "jitter only delays, never loses");
        assert!(
            received.windows(2).all(|w| w[0] < w[1]),
            "per-link FIFO must survive jitter: {received:?}"
        );
        assert!(hub.stats().is_conserved());
    }

    #[test]
    fn unregistered_destinations_count_as_dropped() {
        let mut hub = hub();
        hub.send("a", "b", vec![1]).unwrap();
        assert!(hub.unregister("b"));
        hub.step(Tick::new(1));
        let stats = hub.stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.delivered, 0);
        assert!(stats.is_conserved());
        assert!(!hub.unregister("b"), "already unregistered");
    }

    /// Unregister-while-outstanding is *surfaced*, not just counted: the
    /// dropped messages' destination names are reported back so the sender
    /// can park instead of retrying into a void.
    #[test]
    fn dropped_destinations_are_reported_to_the_sender_side() {
        let mut hub = hub();
        assert!(hub.take_dropped_destinations().is_empty());

        hub.send("a", "b", vec![1]).unwrap();
        hub.send("a", "b", vec![2]).unwrap();
        hub.unregister("b");
        hub.step(Tick::new(1));
        let dropped = hub.take_dropped_destinations();
        assert_eq!(dropped.len(), 2, "one entry per dropped message");
        assert!(dropped.iter().all(|name| name.as_ref() == "b"));
        assert!(
            hub.take_dropped_destinations().is_empty(),
            "feedback is drained exactly once"
        );

        // Delivered traffic produces no feedback.
        hub.register("b");
        hub.send("a", "b", vec![3]).unwrap();
        hub.step(Tick::new(2));
        assert!(hub.take_dropped_destinations().is_empty());
        assert!(hub.stats().is_conserved());
    }

    #[test]
    fn unregister_voids_in_flight_traffic_for_the_slot_successor() {
        let mut hub = hub();
        hub.send("a", "b", vec![0xB]).unwrap();

        // "b" leaves; "c" registers and (with slot reuse) may take b's slot.
        hub.unregister("b");
        hub.register("c");
        hub.send("a", "c", vec![0xC]).unwrap();
        hub.step(Tick::new(1));

        // The in-flight message for the departed "b" never reaches "c".
        assert_eq!(
            received(&mut hub, "c"),
            vec![("a".to_string(), vec![0xC])],
            "only c's own traffic arrives"
        );
        let stats = hub.stats();
        assert_eq!(stats.dropped, 1, "b's message is dropped, not misrouted");
        assert!(stats.is_conserved());
    }

    #[test]
    fn reregistered_endpoint_gets_a_fresh_mailbox_not_stale_messages() {
        let mut hub = hub();
        hub.send("a", "b", vec![1]).unwrap();
        hub.step(Tick::new(1));
        assert_eq!(hub.pending_for("b"), 1, "delivered but not yet drained");

        // Unregister with an undrained mailbox, then re-register: the new
        // incarnation must not see the old tenant's messages…
        hub.unregister("b");
        hub.register("b");
        assert_eq!(hub.pending_for("b"), 0);
        assert!(hub.drain("b").is_empty());

        // …but fresh traffic flows normally again.
        hub.send("a", "b", vec![2]).unwrap();
        hub.step(Tick::new(2));
        assert_eq!(received(&mut hub, "b"), vec![("a".to_string(), vec![2])]);
        assert!(hub.stats().is_conserved());
    }

    #[test]
    fn register_unregister_churn_keeps_slot_tables_bounded() {
        let mut hub = hub();
        for round in 0..100u32 {
            let name = format!("ecm-{round}");
            hub.register(&name);
            hub.send("a", &name, vec![round as u8]).unwrap();
            hub.step(Tick::new(u64::from(round) + 1));
            assert_eq!(hub.pending_for(&name), 1);
            hub.unregister(&name);
        }
        assert!(
            hub.endpoint_slot_capacity() <= 3,
            "churn reuses freed slots: capacity {}",
            hub.endpoint_slot_capacity()
        );
        assert!(hub.stats().is_conserved());
    }

    #[test]
    fn partition_loses_due_messages_until_it_heals() {
        let mut hub = hub();
        hub.partition("a", "b", Tick::new(10));
        hub.send("a", "b", vec![1]).unwrap();
        hub.send("b", "a", vec![2]).unwrap();
        hub.step(Tick::new(1));
        assert_eq!(hub.stats().lost, 2, "both directions are cut");
        assert!(hub.is_partitioned("a", "b"));

        // After the heal tick traffic flows again (same fault entries).
        hub.send("a", "b", vec![3]).unwrap();
        hub.step(Tick::new(10));
        assert!(!hub.is_partitioned("a", "b"));
        assert_eq!(received(&mut hub, "b"), vec![("a".to_string(), vec![3])]);
        assert!(hub.stats().is_conserved());
    }

    #[test]
    fn heal_clears_a_partition_early() {
        let mut hub = hub();
        hub.partition("a", "b", Tick::new(100));
        hub.heal("a", "b");
        hub.send("a", "b", vec![1]).unwrap();
        hub.step(Tick::new(1));
        assert_eq!(hub.stats().delivered, 1);
    }

    #[test]
    fn asymmetric_loss_hits_only_the_configured_direction() {
        let mut hub = hub();
        hub.set_link_fault("a", "b", LinkFault::lossy(1.0));
        for _ in 0..10 {
            hub.send("a", "b", vec![1]).unwrap();
            hub.send("b", "a", vec![2]).unwrap();
        }
        hub.step(Tick::new(1));
        let stats = hub.stats();
        assert_eq!(stats.lost, 10, "a→b drops everything");
        assert_eq!(stats.delivered, 10, "b→a is untouched");
        assert!(stats.is_conserved());
    }

    #[test]
    fn fifo_clamp_survives_clearing_the_jitter_fault() {
        let mut hub = TransportHub::new(TransportConfig {
            latency_ticks: 1,
            ..TransportConfig::default()
        });
        hub.register("a");
        hub.register("b");
        hub.set_link_fault("a", "b", LinkFault::jittery(20));
        // Jittered sends may be scheduled well into the future...
        for i in 0..10u8 {
            hub.send("a", "b", vec![i]).unwrap();
        }
        // ...then the fault is cleared while they are still in flight.  The
        // messages sent now (base latency only) must not overtake them.
        hub.clear_link_fault("a", "b");
        for i in 10..20u8 {
            hub.send("a", "b", vec![i]).unwrap();
        }
        let mut received = Vec::new();
        for t in 1..=32u64 {
            hub.step(Tick::new(t));
            received.extend(hub.drain("b").into_iter().map(|(_, p)| p[0]));
        }
        assert_eq!(received.len(), 20);
        assert!(
            received.windows(2).all(|w| w[0] < w[1]),
            "per-link FIFO must survive fault clearing: {received:?}"
        );
    }

    #[test]
    fn slot_reuse_does_not_inherit_the_predecessors_fifo_clamp() {
        let mut hub = TransportHub::new(TransportConfig {
            latency_ticks: 1,
            ..TransportConfig::default()
        });
        hub.register("a");
        hub.register("b");
        // Keep some fault installed so the clamp path stays active, and
        // schedule a far-future delivery on a -> b.
        hub.set_link_fault("a", "b", LinkFault::jittery(50));
        for _ in 0..32 {
            hub.send("a", "b", vec![1]).unwrap();
        }
        // b departs; c reuses the freed slot.  c's first message must be
        // delivered at base latency, not clamped to b's schedule.
        hub.unregister("b");
        hub.register("c");
        hub.send("a", "c", vec![9]).unwrap();
        hub.step(Tick::new(1));
        assert_eq!(
            hub.pending_for("c"),
            1,
            "c's traffic is not delayed by the departed endpoint's clamp"
        );
        assert!(hub.stats().is_conserved());
    }

    #[test]
    fn faults_installed_before_registration_apply_after_it() {
        let mut hub = TransportHub::new(TransportConfig::default());
        hub.set_link_fault("x", "y", LinkFault::lossy(1.0));
        hub.register("x");
        hub.register("y");
        hub.send("x", "y", vec![1]).unwrap();
        hub.step(Tick::new(1));
        assert_eq!(hub.stats().lost, 1, "pre-installed fault is live");
    }

    #[test]
    fn clear_link_fault_restores_the_global_model() {
        let mut hub = hub();
        hub.set_link_fault("a", "b", LinkFault::lossy(1.0));
        assert!(hub.link_fault("a", "b").is_some());
        hub.clear_link_fault("a", "b");
        hub.send("a", "b", vec![1]).unwrap();
        hub.step(Tick::new(1));
        assert_eq!(hub.stats().delivered, 1);
    }

    #[test]
    fn drain_into_reuses_the_caller_buffer() {
        let mut hub = hub();
        let mut buffer = Vec::new();
        hub.drain_into("b", &mut buffer);
        assert!(buffer.is_empty(), "empty mailbox leaves the buffer alone");

        hub.send("a", "b", vec![7]).unwrap();
        hub.step(Tick::new(1));
        hub.drain_into("b", &mut buffer);
        assert_eq!(buffer.len(), 1);
        assert_eq!(buffer[0].0.as_ref(), "a");
        assert_eq!(buffer[0].1, vec![7u8]);

        buffer.clear();
        hub.drain_into("ghost", &mut buffer);
        assert!(buffer.is_empty());
    }

    #[test]
    fn payloads_are_shared_not_copied() {
        let mut hub = hub();
        let payload = Payload::from(vec![1, 2, 3]);
        hub.send("a", "b", payload.clone()).unwrap();
        hub.step(Tick::new(1));
        let delivered = hub.drain("b");
        assert_eq!(delivered[0].1, payload);
        assert_eq!(
            delivered[0].1.as_slice().as_ptr(),
            payload.as_slice().as_ptr(),
            "delivery hands back the same buffer"
        );
    }

    #[test]
    fn conservation_holds_under_mixed_faults() {
        let mut hub = TransportHub::new(TransportConfig {
            latency_ticks: 2,
            loss_probability: 0.3,
            seed: 42,
        });
        hub.register("a");
        hub.register("b");
        hub.register("c");
        hub.set_link_fault("a", "c", LinkFault::jittery(3));
        hub.partition("b", "c", Tick::new(6));
        for t in 1..=20u64 {
            hub.send("a", "b", vec![t as u8]).unwrap();
            hub.send("a", "c", vec![t as u8]).unwrap();
            hub.send("b", "c", vec![t as u8]).unwrap();
            hub.step(Tick::new(t));
            assert!(hub.stats().is_conserved(), "tick {t}: {:?}", hub.stats());
            hub.drain("b");
            hub.drain("c");
        }
        hub.step(Tick::new(40));
        let stats = hub.stats();
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.sent, stats.delivered + stats.lost + stats.dropped);
    }
}
