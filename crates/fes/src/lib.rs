//! Federated embedded systems support: transports and external devices.
//!
//! A federated embedded system (FES) is a set of embedded systems in
//! different products that cooperate through external communication
//! (paper §1, [9]).  In the paper's demonstrator a smart phone remotely
//! controls a model car; the phone talks to the vehicle's external
//! communication manager over TCP.  This crate provides the communication
//! layer behind the [`transport::Transport`] trait, with two backends: the
//! deterministic in-memory [`transport::TransportHub`] (named endpoints,
//! configurable latency and loss — the default test backend) and the real
//! loopback-socket [`udp::UdpTransport`], plus device models such as the
//! [`device::SmartPhone`] used by the Figure 3 scenario.
//!
//! # Example
//!
//! ```
//! use dynar_fes::transport::{Transport, TransportConfig, TransportHub};
//! use dynar_foundation::time::Tick;
//!
//! # fn main() -> Result<(), dynar_foundation::error::DynarError> {
//! let mut hub = TransportHub::new(TransportConfig::default());
//! hub.register("server");
//! hub.register("vehicle-1");
//!
//! hub.send("server", "vehicle-1", b"hello".to_vec())?;
//! hub.step(Tick::new(1));
//! let delivered = hub.drain("vehicle-1");
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].0.as_ref(), "server");
//! assert_eq!(delivered[0].1, b"hello".to_vec());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod transport;
pub mod udp;

pub use device::SmartPhone;
pub use transport::{
    shared_transport, FaultInjection, LinkFault, SharedTransport, Transport, TransportConfig,
    TransportHub, TransportStats,
};
pub use udp::{UdpConfig, UdpTransport};
