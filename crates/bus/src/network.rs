//! The broadcast bus: attachment, subscription, arbitration and delivery.
//!
//! Like the RTE, the bus separates its slow reconfiguration plane (ECU
//! attachment and acceptance-filter subscriptions, interned into dense slots)
//! from its fast signal plane (arbitration, error model and delivery, which
//! walk flat `Vec`-indexed mailboxes and per-frame subscriber lists).

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::EcuId;
use dynar_foundation::intern::{Interner, Slot, SlotSet};
use dynar_foundation::time::Tick;

use crate::frame::{CanId, Frame};

/// Static configuration of one bus segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Number of frames that can complete transmission per tick.
    pub frames_per_tick: usize,
    /// Propagation plus queuing latency added to every frame, in ticks.
    pub latency_ticks: u64,
    /// Probability in `[0, 1]` that a transmitted frame is corrupted and
    /// dropped (no automatic retransmission is modelled).
    pub drop_probability: f64,
    /// Seed of the error-model random number generator, so simulations are
    /// reproducible.
    pub seed: u64,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            frames_per_tick: 16,
            latency_ticks: 1,
            drop_probability: 0.0,
            seed: 0x5EED,
        }
    }
}

/// Counters describing bus traffic so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Frames accepted for transmission.
    pub sent: u64,
    /// Frame deliveries into receiver mailboxes (one frame delivered to two
    /// subscribers counts twice).
    pub delivered: u64,
    /// Frames dropped by the error model.
    pub dropped: u64,
    /// Frames that finished transmission without any subscriber.
    pub unrouted: u64,
    /// Largest queueing + transmission delay observed, in ticks.
    pub worst_latency: u64,
    /// Total payload bytes accepted for transmission.
    pub payload_bytes: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PendingFrame {
    frame: Frame,
    sender: EcuId,
    enqueued_at: Tick,
    deliver_at: Tick,
}

/// A broadcast bus segment connecting a set of ECUs.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Bus {
    config: BusConfig,
    /// ECU id -> dense slot; slots index `mailboxes` and `subscriptions`.
    ecu_slots: Interner<EcuId>,
    /// Frame id -> dense slot; slots index `subscribers`.
    frame_slots: Interner<CanId>,
    /// ecu slot -> acceptance-filter membership (bitset over frame slots).
    subscriptions: Vec<SlotSet>,
    /// frame slot -> subscribed ECU slots (the compiled delivery list).
    subscribers: Vec<Vec<Slot>>,
    /// Frames accepted but not yet transmitted, ordered by identifier for
    /// CAN-style arbitration and by enqueue time within one identifier.
    arbitration_queue: BTreeMap<(CanId, u64), PendingFrame>,
    arbitration_seq: u64,
    /// Frames transmitted and awaiting their delivery time.
    in_flight: Vec<PendingFrame>,
    /// Scratch buffer `step` compacts `in_flight` through, so delivery never
    /// reallocates the queue.
    in_flight_scratch: Vec<PendingFrame>,
    /// ecu slot -> receive mailbox.
    mailboxes: Vec<VecDeque<Frame>>,
    stats: BusStats,
    rng: StdRng,
}

impl Bus {
    /// Creates a bus with the given configuration.
    pub fn new(config: BusConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Bus {
            config,
            ecu_slots: Interner::new(),
            frame_slots: Interner::new(),
            subscriptions: Vec::new(),
            subscribers: Vec::new(),
            arbitration_queue: BTreeMap::new(),
            arbitration_seq: 0,
            in_flight: Vec::new(),
            in_flight_scratch: Vec::new(),
            mailboxes: Vec::new(),
            stats: BusStats::default(),
            rng,
        }
    }

    /// The configuration the bus was created with.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Attaches an ECU to the bus, creating its receive mailbox.
    pub fn attach(&mut self, ecu: EcuId) -> Slot {
        let slot = self.ecu_slots.intern(ecu);
        if slot.index() >= self.mailboxes.len() {
            self.mailboxes.resize_with(slot.index() + 1, VecDeque::new);
            self.subscriptions
                .resize_with(slot.index() + 1, SlotSet::new);
        }
        slot
    }

    /// Returns `true` if the ECU is attached.
    pub fn is_attached(&self, ecu: EcuId) -> bool {
        self.ecu_slots.get(&ecu).is_some()
    }

    /// Subscribes an attached ECU to frames with the given identifier
    /// (an acceptance-filter entry).
    pub fn subscribe(&mut self, ecu: EcuId, id: CanId) {
        let ecu_slot = self.attach(ecu);
        let frame_slot = self.frame_slots.intern(id);
        if frame_slot.index() >= self.subscribers.len() {
            self.subscribers
                .resize_with(frame_slot.index() + 1, Vec::new);
        }
        if self.subscriptions[ecu_slot.index()].insert(frame_slot) {
            self.subscribers[frame_slot.index()].push(ecu_slot);
        }
    }

    /// Removes an acceptance-filter entry previously added by
    /// [`Bus::subscribe`]; unknown pairs are ignored.
    pub fn unsubscribe(&mut self, ecu: EcuId, id: CanId) {
        let (Some(ecu_slot), Some(frame_slot)) =
            (self.ecu_slots.get(&ecu), self.frame_slots.get(&id))
        else {
            return;
        };
        if self.subscriptions[ecu_slot.index()].remove(frame_slot) {
            self.subscribers[frame_slot.index()].retain(|s| *s != ecu_slot);
        }
        // Free the frame's slot once its last subscriber is gone, so filter
        // churn over many distinct frame ids reuses slots instead of growing
        // the dense tables.
        if self.subscribers[frame_slot.index()].is_empty() {
            self.frame_slots.remove(&id);
        }
    }

    /// Queues a frame for transmission.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] if the sender is not attached.
    pub fn send(&mut self, sender: EcuId, frame: Frame, now: Tick) -> Result<()> {
        if !self.is_attached(sender) {
            return Err(DynarError::not_found("bus node", sender));
        }
        self.stats.sent += 1;
        self.stats.payload_bytes += frame.dlc() as u64;
        let key = (frame.id(), self.arbitration_seq);
        self.arbitration_seq += 1;
        self.arbitration_queue.insert(
            key,
            PendingFrame {
                frame,
                sender,
                enqueued_at: now,
                deliver_at: now,
            },
        );
        Ok(())
    }

    /// Advances the bus to `now`: arbitrates pending frames within the
    /// per-tick bandwidth, applies the error model and delivers frames whose
    /// latency has elapsed into subscriber mailboxes.
    pub fn step(&mut self, now: Tick) {
        // Arbitration: lowest identifier first, FIFO within an identifier.
        for _ in 0..self.config.frames_per_tick {
            let Some((&key, _)) = self.arbitration_queue.iter().next() else {
                break;
            };
            let mut pending = self
                .arbitration_queue
                .remove(&key)
                .expect("key taken from iterator");
            if self.config.drop_probability > 0.0
                && self
                    .rng
                    .gen_bool(self.config.drop_probability.clamp(0.0, 1.0))
            {
                self.stats.dropped += 1;
                continue;
            }
            pending.deliver_at = now.advance(self.config.latency_ticks);
            self.in_flight.push(pending);
        }

        // Delivery of frames whose latency has elapsed: compact the
        // in-flight queue in place through the reused scratch buffer
        // (nothing reallocates on the per-tick path).
        let mut scratch = std::mem::take(&mut self.in_flight_scratch);
        debug_assert!(scratch.is_empty());
        std::mem::swap(&mut self.in_flight, &mut scratch);
        for pending in scratch.drain(..) {
            if !(pending.deliver_at <= now || pending.deliver_at.elapsed_since(now) == 0) {
                self.in_flight.push(pending);
                continue;
            }
            let latency = now.elapsed_since(pending.enqueued_at);
            if latency > self.stats.worst_latency {
                self.stats.worst_latency = latency;
            }
            let sender_slot = self.ecu_slots.get(&pending.sender);
            let receivers = self
                .frame_slots
                .get(&pending.frame.id())
                .map(|frame_slot| self.subscribers[frame_slot.index()].as_slice())
                .unwrap_or_default();
            let mut any = false;
            for &ecu_slot in receivers {
                if Some(ecu_slot) == sender_slot {
                    continue;
                }
                self.mailboxes[ecu_slot.index()].push_back(pending.frame.clone());
                self.stats.delivered += 1;
                any = true;
            }
            if !any {
                self.stats.unrouted += 1;
            }
        }
        self.in_flight_scratch = scratch;
    }

    /// Drains and returns every frame delivered to `ecu` so far.
    pub fn receive(&mut self, ecu: EcuId) -> Vec<Frame> {
        self.ecu_slots
            .get(&ecu)
            .map(|slot| self.mailboxes[slot.index()].drain(..).collect())
            .unwrap_or_default()
    }

    /// Drains every frame delivered to `ecu` into a caller-owned buffer —
    /// the allocation-free variant of [`Bus::receive`] for per-tick callers.
    pub fn receive_into(&mut self, ecu: EcuId, into: &mut Vec<Frame>) {
        if let Some(slot) = self.ecu_slots.get(&ecu) {
            into.extend(self.mailboxes[slot.index()].drain(..));
        }
    }

    /// Number of frames waiting in `ecu`'s mailbox.
    pub fn pending_for(&self, ecu: EcuId) -> usize {
        self.ecu_slots
            .get(&ecu)
            .map(|slot| self.mailboxes[slot.index()].len())
            .unwrap_or(0)
    }

    /// Number of frames still queued or in flight on the bus.
    pub fn backlog(&self) -> usize {
        self.arbitration_queue.len() + self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_bus(config: BusConfig) -> (Bus, EcuId, EcuId) {
        let mut bus = Bus::new(config);
        let a = EcuId::new(1);
        let b = EcuId::new(2);
        bus.attach(a);
        bus.attach(b);
        (bus, a, b)
    }

    #[test]
    fn frames_reach_subscribers_only() {
        let (mut bus, a, b) = two_node_bus(BusConfig::default());
        let c = EcuId::new(3);
        bus.attach(c);
        bus.subscribe(b, CanId::new(0x10).unwrap());
        bus.send(
            a,
            Frame::new(CanId::new(0x10).unwrap(), vec![1]).unwrap(),
            Tick::ZERO,
        )
        .unwrap();
        bus.step(Tick::new(1));
        bus.step(Tick::new(2));
        assert_eq!(bus.receive(b).len(), 1);
        assert!(bus.receive(c).is_empty());
        assert!(bus.receive(a).is_empty(), "sender does not loop back");
    }

    #[test]
    fn unattached_sender_is_rejected() {
        let mut bus = Bus::new(BusConfig::default());
        let err = bus
            .send(
                EcuId::new(9),
                Frame::new(CanId::new(1).unwrap(), vec![]).unwrap(),
                Tick::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, DynarError::NotFound { .. }));
    }

    #[test]
    fn arbitration_prefers_lower_identifiers() {
        let config = BusConfig {
            frames_per_tick: 1,
            latency_ticks: 0,
            ..BusConfig::default()
        };
        let (mut bus, a, b) = two_node_bus(config);
        bus.subscribe(b, CanId::new(0x300).unwrap());
        bus.subscribe(b, CanId::new(0x100).unwrap());
        bus.send(
            a,
            Frame::new(CanId::new(0x300).unwrap(), vec![3]).unwrap(),
            Tick::ZERO,
        )
        .unwrap();
        bus.send(
            a,
            Frame::new(CanId::new(0x100).unwrap(), vec![1]).unwrap(),
            Tick::ZERO,
        )
        .unwrap();

        bus.step(Tick::new(1));
        let first = bus.receive(b);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].id().raw(), 0x100, "lower id wins arbitration");

        bus.step(Tick::new(2));
        let second = bus.receive(b);
        assert_eq!(second[0].id().raw(), 0x300);
    }

    #[test]
    fn fifo_within_one_identifier() {
        let config = BusConfig {
            frames_per_tick: 1,
            latency_ticks: 0,
            ..BusConfig::default()
        };
        let (mut bus, a, b) = two_node_bus(config);
        let id = CanId::new(0x42).unwrap();
        bus.subscribe(b, id);
        bus.send(a, Frame::new(id, vec![1]).unwrap(), Tick::ZERO)
            .unwrap();
        bus.send(a, Frame::new(id, vec![2]).unwrap(), Tick::ZERO)
            .unwrap();
        bus.step(Tick::new(1));
        bus.step(Tick::new(2));
        let frames = bus.receive(b);
        assert_eq!(frames[0].payload(), &[1]);
        assert_eq!(frames[1].payload(), &[2]);
    }

    #[test]
    fn latency_delays_delivery() {
        let config = BusConfig {
            latency_ticks: 5,
            ..BusConfig::default()
        };
        let (mut bus, a, b) = two_node_bus(config);
        let id = CanId::new(0x1).unwrap();
        bus.subscribe(b, id);
        bus.send(a, Frame::new(id, vec![7]).unwrap(), Tick::ZERO)
            .unwrap();
        bus.step(Tick::new(1));
        assert_eq!(bus.pending_for(b), 0, "still in flight");
        for t in 2..=6 {
            bus.step(Tick::new(t));
        }
        assert_eq!(bus.pending_for(b), 1);
        assert!(bus.stats().worst_latency >= 5);
    }

    #[test]
    fn drop_probability_loses_frames() {
        let config = BusConfig {
            drop_probability: 1.0,
            ..BusConfig::default()
        };
        let (mut bus, a, b) = two_node_bus(config);
        let id = CanId::new(0x1).unwrap();
        bus.subscribe(b, id);
        for _ in 0..10 {
            bus.send(a, Frame::new(id, vec![0]).unwrap(), Tick::ZERO)
                .unwrap();
        }
        for t in 1..5 {
            bus.step(Tick::new(t));
        }
        assert_eq!(bus.stats().dropped, 10);
        assert_eq!(bus.receive(b).len(), 0);
    }

    #[test]
    fn unrouted_frames_are_counted() {
        let (mut bus, a, _b) = two_node_bus(BusConfig::default());
        bus.send(
            a,
            Frame::new(CanId::new(0x9).unwrap(), vec![]).unwrap(),
            Tick::ZERO,
        )
        .unwrap();
        bus.step(Tick::new(1));
        bus.step(Tick::new(2));
        assert_eq!(bus.stats().unrouted, 1);
    }

    #[test]
    fn bandwidth_limits_throughput() {
        let config = BusConfig {
            frames_per_tick: 2,
            latency_ticks: 0,
            ..BusConfig::default()
        };
        let (mut bus, a, b) = two_node_bus(config);
        let id = CanId::new(0x5).unwrap();
        bus.subscribe(b, id);
        for _ in 0..10 {
            bus.send(a, Frame::new(id, vec![0]).unwrap(), Tick::ZERO)
                .unwrap();
        }
        bus.step(Tick::new(1));
        assert_eq!(bus.receive(b).len(), 2);
        assert_eq!(bus.backlog(), 8);
    }

    #[test]
    fn stats_track_payload_and_deliveries() {
        let (mut bus, a, b) = two_node_bus(BusConfig::default());
        let c = EcuId::new(3);
        let id = CanId::new(0x20).unwrap();
        bus.subscribe(b, id);
        bus.subscribe(c, id);
        bus.send(a, Frame::new(id, vec![0; 8]).unwrap(), Tick::ZERO)
            .unwrap();
        bus.step(Tick::new(1));
        bus.step(Tick::new(2));
        let stats = bus.stats();
        assert_eq!(stats.sent, 1);
        assert_eq!(stats.payload_bytes, 8);
        assert_eq!(stats.delivered, 2, "one copy per subscriber");
    }

    #[test]
    fn unsubscribe_removes_the_acceptance_filter_entry() {
        let (mut bus, a, b) = two_node_bus(BusConfig::default());
        let id = CanId::new(0x10).unwrap();
        bus.subscribe(b, id);
        bus.subscribe(b, id); // idempotent: one delivery per frame below
        bus.unsubscribe(b, id);
        bus.unsubscribe(b, CanId::new(0x999).unwrap()); // unknown pair: ignored
        bus.send(a, Frame::new(id, vec![1]).unwrap(), Tick::ZERO)
            .unwrap();
        bus.step(Tick::new(1));
        bus.step(Tick::new(2));
        assert!(bus.receive(b).is_empty());
        assert_eq!(bus.stats().unrouted, 1);

        // Re-subscribing reinstates delivery exactly once.
        bus.subscribe(b, id);
        bus.send(a, Frame::new(id, vec![2]).unwrap(), Tick::new(2))
            .unwrap();
        bus.step(Tick::new(3));
        bus.step(Tick::new(4));
        assert_eq!(bus.receive(b).len(), 1);
    }

    #[test]
    fn filter_churn_over_distinct_frames_reuses_slots() {
        let (mut bus, _a, b) = two_node_bus(BusConfig::default());
        for round in 0..100u32 {
            let id = CanId::new(0x100 + round).unwrap();
            bus.subscribe(b, id);
            bus.unsubscribe(b, id);
        }
        assert_eq!(
            bus.frame_slots.capacity(),
            1,
            "100 subscribe/unsubscribe cycles reuse a single frame slot"
        );
    }

    #[test]
    fn identical_seeds_reproduce_drop_patterns() {
        let config = BusConfig {
            drop_probability: 0.5,
            seed: 7,
            latency_ticks: 0,
            ..BusConfig::default()
        };
        let run = |config: BusConfig| {
            let (mut bus, a, b) = two_node_bus(config);
            let id = CanId::new(0x30).unwrap();
            bus.subscribe(b, id);
            for i in 0..50u64 {
                bus.send(a, Frame::new(id, vec![i as u8]).unwrap(), Tick::new(i))
                    .unwrap();
                bus.step(Tick::new(i));
            }
            bus.stats().dropped
        };
        assert_eq!(run(config.clone()), run(config));
    }
}
