//! A CAN-like in-vehicle network simulation.
//!
//! AUTOSAR's virtual function bus hides the physical topology from software
//! components; when two communicating SW-Cs end up on different ECUs, the RTE
//! maps their signals onto network frames (paper §2).  This crate provides the
//! network those frames travel on: a broadcast bus with identifier-based
//! arbitration (lowest identifier wins, as on CAN), per-tick bandwidth limits,
//! configurable propagation latency and an optional probabilistic error model
//! used by the fault-injection experiments.
//!
//! # Example
//!
//! ```
//! use dynar_bus::frame::{CanId, Frame};
//! use dynar_bus::network::{Bus, BusConfig};
//! use dynar_foundation::ids::EcuId;
//! use dynar_foundation::time::Tick;
//!
//! # fn main() -> Result<(), dynar_foundation::error::DynarError> {
//! let mut bus = Bus::new(BusConfig::default());
//! let ecu1 = EcuId::new(1);
//! let ecu2 = EcuId::new(2);
//! bus.attach(ecu1);
//! bus.attach(ecu2);
//! bus.subscribe(ecu2, CanId::new(0x120)?);
//!
//! bus.send(ecu1, Frame::new(CanId::new(0x120)?, vec![1, 2, 3])?, Tick::ZERO)?;
//! bus.step(Tick::new(1));
//! bus.step(Tick::new(2));
//! let delivered = bus.receive(ecu2);
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].payload(), &[1, 2, 3]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod network;

pub use frame::{CanId, Frame};
pub use network::{Bus, BusConfig, BusStats};
