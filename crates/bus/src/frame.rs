//! Frames and identifiers of the in-vehicle network.

use std::fmt;

use serde::{Deserialize, Serialize};

use dynar_foundation::error::{DynarError, Result};

/// Maximum payload length of one frame, matching CAN FD.
pub const MAX_PAYLOAD: usize = 64;

/// A 29-bit frame identifier; lower values win arbitration, as on CAN.
///
/// # Example
/// ```
/// use dynar_bus::frame::CanId;
///
/// # fn main() -> Result<(), dynar_foundation::error::DynarError> {
/// let id = CanId::new(0x1A0)?;
/// assert_eq!(id.raw(), 0x1A0);
/// assert!(CanId::new(0x100)? < id, "lower id is more urgent");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CanId(u32);

impl CanId {
    /// Largest representable identifier (29-bit extended format).
    pub const MAX: u32 = 0x1FFF_FFFF;

    /// Creates an identifier.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::InvalidConfiguration`] if `raw` exceeds 29 bits.
    pub fn new(raw: u32) -> Result<Self> {
        if raw > Self::MAX {
            return Err(DynarError::invalid_config(format!(
                "frame identifier {raw:#x} exceeds 29 bits"
            )));
        }
        Ok(CanId(raw))
    }

    /// Returns the raw identifier value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:X}", self.0)
    }
}

impl fmt::LowerHex for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// One frame on the bus: an identifier plus up to [`MAX_PAYLOAD`] bytes.
///
/// # Example
/// ```
/// use dynar_bus::frame::{CanId, Frame};
///
/// # fn main() -> Result<(), dynar_foundation::error::DynarError> {
/// let frame = Frame::new(CanId::new(0x55)?, vec![0xDE, 0xAD])?;
/// assert_eq!(frame.dlc(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frame {
    id: CanId,
    payload: Vec<u8>,
}

impl Frame {
    /// Creates a frame.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::InvalidConfiguration`] if the payload exceeds
    /// [`MAX_PAYLOAD`] bytes.
    pub fn new(id: CanId, payload: Vec<u8>) -> Result<Self> {
        if payload.len() > MAX_PAYLOAD {
            return Err(DynarError::invalid_config(format!(
                "frame payload of {} bytes exceeds the {MAX_PAYLOAD}-byte limit",
                payload.len()
            )));
        }
        Ok(Frame { id, payload })
    }

    /// The frame identifier.
    pub fn id(&self) -> CanId {
        self.id
    }

    /// The payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The data length code (payload length in bytes).
    pub fn dlc(&self) -> usize {
        self.payload.len()
    }

    /// Consumes the frame and returns its payload.
    pub fn into_payload(self) -> Vec<u8> {
        self.payload
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame {} [{} bytes]", self.id, self.payload.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_range_is_checked() {
        assert!(CanId::new(CanId::MAX).is_ok());
        assert!(CanId::new(CanId::MAX + 1).is_err());
    }

    #[test]
    fn lower_id_is_more_urgent() {
        assert!(CanId::new(0x10).unwrap() < CanId::new(0x20).unwrap());
    }

    #[test]
    fn payload_limit_is_enforced() {
        let id = CanId::new(1).unwrap();
        assert!(Frame::new(id, vec![0; MAX_PAYLOAD]).is_ok());
        assert!(Frame::new(id, vec![0; MAX_PAYLOAD + 1]).is_err());
    }

    #[test]
    fn accessors_expose_contents() {
        let frame = Frame::new(CanId::new(0x7FF).unwrap(), vec![9, 8, 7]).unwrap();
        assert_eq!(frame.id().raw(), 0x7FF);
        assert_eq!(frame.dlc(), 3);
        assert_eq!(frame.clone().into_payload(), vec![9, 8, 7]);
        assert_eq!(frame.to_string(), "frame 0x7FF [3 bytes]");
    }

    #[test]
    fn hex_formatting() {
        let id = CanId::new(0xAB).unwrap();
        assert_eq!(format!("{id:x}"), "ab");
        assert_eq!(format!("{id:X}"), "AB");
    }
}
