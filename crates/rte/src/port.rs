//! Port specifications and runtime buffers.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::value::Value;

/// Whether a port produces data for the system or expects data from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDirection {
    /// The SW-C writes on this port (a `PPort` in AUTOSAR terms).
    Provided,
    /// The SW-C reads from this port (an `RPort`).
    Required,
}

impl PortDirection {
    /// The opposite direction, useful when wiring connectors.
    #[must_use]
    pub fn opposite(self) -> PortDirection {
        match self {
            PortDirection::Provided => PortDirection::Required,
            PortDirection::Required => PortDirection::Provided,
        }
    }
}

impl fmt::Display for PortDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortDirection::Provided => f.write_str("provided"),
            PortDirection::Required => f.write_str("required"),
        }
    }
}

/// The interaction scheme implemented by a port (paper §2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortInterface {
    /// Last-is-best sender–receiver communication: a read returns the most
    /// recently written value.
    SenderReceiver,
    /// Queued sender–receiver communication: every written value is delivered
    /// exactly once, in order.
    QueuedSenderReceiver {
        /// Maximum number of values the receive queue may hold.
        queue_length: usize,
    },
    /// Client–server communication with the given operation names.
    ClientServer {
        /// Operations callable on this interface.
        operations: Vec<String>,
    },
}

impl PortInterface {
    /// Returns `true` for either sender–receiver variant.
    pub fn is_sender_receiver(&self) -> bool {
        matches!(
            self,
            PortInterface::SenderReceiver | PortInterface::QueuedSenderReceiver { .. }
        )
    }
}

/// Static description of one SW-C port.
///
/// # Example
/// ```
/// use dynar_rte::port::{PortDirection, PortSpec};
///
/// let spec = PortSpec::queued("install", PortDirection::Required, 8);
/// assert_eq!(spec.name(), "install");
/// assert_eq!(spec.direction(), PortDirection::Required);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortSpec {
    name: String,
    direction: PortDirection,
    interface: PortInterface,
}

impl PortSpec {
    /// Creates a last-is-best sender–receiver port.
    pub fn sender_receiver(name: impl Into<String>, direction: PortDirection) -> Self {
        PortSpec {
            name: name.into(),
            direction,
            interface: PortInterface::SenderReceiver,
        }
    }

    /// Creates a queued sender–receiver port with the given queue length.
    pub fn queued(name: impl Into<String>, direction: PortDirection, queue_length: usize) -> Self {
        PortSpec {
            name: name.into(),
            direction,
            interface: PortInterface::QueuedSenderReceiver {
                queue_length: queue_length.max(1),
            },
        }
    }

    /// Creates a client–server port with the given operations.
    pub fn client_server(
        name: impl Into<String>,
        direction: PortDirection,
        operations: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        PortSpec {
            name: name.into(),
            direction,
            interface: PortInterface::ClientServer {
                operations: operations.into_iter().map(Into::into).collect(),
            },
        }
    }

    /// The port name, unique within its SW-C.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The port direction.
    pub fn direction(&self) -> PortDirection {
        self.direction
    }

    /// The interaction scheme of the port.
    pub fn interface(&self) -> &PortInterface {
        &self.interface
    }
}

/// The runtime buffer behind one port instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum PortBuffer {
    /// Last-is-best storage.
    LastIsBest { value: Value, updated: bool },
    /// Bounded FIFO storage.
    Queued {
        queue: VecDeque<Value>,
        capacity: usize,
        overflows: u64,
    },
}

impl PortBuffer {
    pub(crate) fn for_interface(interface: &PortInterface) -> Self {
        match interface {
            PortInterface::SenderReceiver | PortInterface::ClientServer { .. } => {
                PortBuffer::LastIsBest {
                    value: Value::Void,
                    updated: false,
                }
            }
            PortInterface::QueuedSenderReceiver { queue_length } => PortBuffer::Queued {
                queue: VecDeque::new(),
                capacity: *queue_length,
                overflows: 0,
            },
        }
    }

    /// Stores a value, returning `true` if it was accepted (a full queue
    /// drops the oldest element and still accepts, counting an overflow).
    pub(crate) fn push(&mut self, value: Value) {
        match self {
            PortBuffer::LastIsBest {
                value: slot,
                updated,
            } => {
                *slot = value;
                *updated = true;
            }
            PortBuffer::Queued {
                queue,
                capacity,
                overflows,
            } => {
                if queue.len() == *capacity {
                    queue.pop_front();
                    *overflows += 1;
                }
                queue.push_back(value);
            }
        }
    }

    /// Reads without consuming: the latest value for last-is-best, the front
    /// of the queue otherwise.
    pub(crate) fn peek(&self) -> Value {
        match self {
            PortBuffer::LastIsBest { value, .. } => value.clone(),
            PortBuffer::Queued { queue, .. } => queue.front().cloned().unwrap_or_default(),
        }
    }

    /// Consumes one value: clears the "updated" flag for last-is-best, pops
    /// the queue otherwise.  Returns `None` when nothing new is available.
    pub(crate) fn take(&mut self) -> Option<Value> {
        match self {
            PortBuffer::LastIsBest { value, updated } => {
                if *updated {
                    *updated = false;
                    Some(value.clone())
                } else {
                    None
                }
            }
            PortBuffer::Queued { queue, .. } => queue.pop_front(),
        }
    }

    /// Number of values waiting to be consumed.
    pub(crate) fn pending(&self) -> usize {
        match self {
            PortBuffer::LastIsBest { updated, .. } => usize::from(*updated),
            PortBuffer::Queued { queue, .. } => queue.len(),
        }
    }

    pub(crate) fn overflows(&self) -> u64 {
        match self {
            PortBuffer::LastIsBest { .. } => 0,
            PortBuffer::Queued { overflows, .. } => *overflows,
        }
    }
}

/// Checks that a pair of port specs can legally be connected by an assembly
/// connector: one provided, one required, compatible interfaces.
///
/// # Errors
///
/// Returns [`DynarError::InvalidConfiguration`] describing the first
/// incompatibility found.
pub fn check_connectable(provider: &PortSpec, requirer: &PortSpec) -> Result<()> {
    if provider.direction() != PortDirection::Provided {
        return Err(DynarError::invalid_config(format!(
            "port {} is not a provided port",
            provider.name()
        )));
    }
    if requirer.direction() != PortDirection::Required {
        return Err(DynarError::invalid_config(format!(
            "port {} is not a required port",
            requirer.name()
        )));
    }
    let compatible = match (provider.interface(), requirer.interface()) {
        (a, b) if a.is_sender_receiver() && b.is_sender_receiver() => true,
        (
            PortInterface::ClientServer { operations: a },
            PortInterface::ClientServer { operations: b },
        ) => b.iter().all(|op| a.contains(op)),
        _ => false,
    };
    if !compatible {
        return Err(DynarError::invalid_config(format!(
            "ports {} and {} have incompatible interfaces",
            provider.name(),
            requirer.name()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_opposite() {
        assert_eq!(PortDirection::Provided.opposite(), PortDirection::Required);
        assert_eq!(PortDirection::Required.opposite(), PortDirection::Provided);
    }

    #[test]
    fn last_is_best_buffer_overwrites() {
        let mut buf = PortBuffer::for_interface(&PortInterface::SenderReceiver);
        buf.push(Value::I64(1));
        buf.push(Value::I64(2));
        assert_eq!(buf.peek(), Value::I64(2));
        assert_eq!(buf.take(), Some(Value::I64(2)));
        assert_eq!(buf.take(), None, "consumed values are not re-delivered");
        assert_eq!(buf.peek(), Value::I64(2), "peek still sees the last value");
    }

    #[test]
    fn queued_buffer_preserves_order_and_counts_overflow() {
        let mut buf =
            PortBuffer::for_interface(&PortInterface::QueuedSenderReceiver { queue_length: 2 });
        buf.push(Value::I64(1));
        buf.push(Value::I64(2));
        buf.push(Value::I64(3));
        assert_eq!(buf.overflows(), 1);
        assert_eq!(buf.pending(), 2);
        assert_eq!(buf.take(), Some(Value::I64(2)));
        assert_eq!(buf.take(), Some(Value::I64(3)));
        assert_eq!(buf.take(), None);
    }

    #[test]
    fn connectable_checks_directions() {
        let p = PortSpec::sender_receiver("p", PortDirection::Provided);
        let r = PortSpec::sender_receiver("r", PortDirection::Required);
        assert!(check_connectable(&p, &r).is_ok());
        assert!(check_connectable(&r, &p).is_err());
        assert!(check_connectable(&p, &p).is_err());
    }

    #[test]
    fn connectable_checks_interfaces() {
        let p = PortSpec::client_server("p", PortDirection::Provided, ["set", "get"]);
        let r_ok = PortSpec::client_server("r", PortDirection::Required, ["get"]);
        let r_bad = PortSpec::client_server("r", PortDirection::Required, ["reset"]);
        let r_sr = PortSpec::sender_receiver("r", PortDirection::Required);
        assert!(check_connectable(&p, &r_ok).is_ok());
        assert!(check_connectable(&p, &r_bad).is_err());
        assert!(check_connectable(&p, &r_sr).is_err());

        let sr_p = PortSpec::sender_receiver("p", PortDirection::Provided);
        let queued_r = PortSpec::queued("r", PortDirection::Required, 4);
        assert!(check_connectable(&sr_p, &queued_r).is_ok());
    }

    #[test]
    fn queue_length_is_clamped() {
        let spec = PortSpec::queued("q", PortDirection::Required, 0);
        match spec.interface() {
            PortInterface::QueuedSenderReceiver { queue_length } => assert_eq!(*queue_length, 1),
            other => panic!("unexpected interface {other:?}"),
        }
    }

    #[test]
    fn spec_accessors() {
        let spec = PortSpec::client_server("diag", PortDirection::Provided, ["read"]);
        assert_eq!(spec.name(), "diag");
        assert_eq!(spec.direction(), PortDirection::Provided);
        assert!(!spec.interface().is_sender_receiver());
        assert_eq!(PortDirection::Provided.to_string(), "provided");
    }
}
