//! The per-ECU RTE engine: port registry, local routing and network mapping.
//!
//! # Routing planes
//!
//! The RTE keeps its wiring in two representations:
//!
//! * The **slow plane** — `connections`, `tx_mapping`, `rx_mapping` — is the
//!   declarative source of truth, keyed by the strongly typed [`PortId`] /
//!   [`CanId`] spaces.  It changes only on reconfiguration: component
//!   registration, (dis)connect and (un)mapping calls.
//! * The **fast plane** — flat `Vec`s indexed by dense [`Slot`]s handed out by
//!   [`Interner`]s — is compiled from the slow plane whenever it changes.
//!   Every per-signal operation (`write_port`, `deliver_inbound`, `take_port`)
//!   resolves its port id to a slot once and then walks plain vectors.
//!
//! Values are delivered by reference and cloned exactly once, at the receiving
//! buffer boundary; the last receiver of a write takes the value by move.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dynar_bus::frame::CanId;
use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{PortId, SwcId};
use dynar_foundation::intern::{Interner, Slot};
use dynar_foundation::value::Value;

use crate::component::SwcDescriptor;
use crate::port::{check_connectable, PortBuffer, PortDirection, PortSpec};

/// Counters describing the signal traffic through one RTE instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RteStats {
    /// Writes issued by component behaviours.
    pub writes: u64,
    /// Signals routed to a local required port.
    pub local_routes: u64,
    /// Signals queued for transmission on the in-vehicle network.
    pub network_routes: u64,
    /// Writes on ports with neither a local connection nor a network mapping.
    pub unconnected_writes: u64,
    /// Values delivered from the network into required ports.
    pub network_deliveries: u64,
    /// Values dropped because a queued port overflowed.
    pub queue_overflows: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PortRuntime {
    id: PortId,
    spec: PortSpec,
    buffer: PortBuffer,
}

/// The RTE instance of one ECU.
///
/// The RTE knows every SW-C registered on its ECU, owns the runtime buffers of
/// their ports, routes written values to locally connected ports and queues
/// values bound for other ECUs as `(frame id, value)` pairs for the
/// communication stack to pick up.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Rte {
    components: HashMap<SwcId, SwcDescriptor>,
    /// SW-C -> port name -> port id.  Nested (rather than keyed by a
    /// `(SwcId, String)` pair) so name-based lookups on the signal path
    /// borrow the query string instead of allocating a key per call.
    port_names: HashMap<SwcId, HashMap<String, PortId>>,
    // --- Slow plane: the declarative wiring -----------------------------
    /// provided port -> locally connected required ports.
    connections: HashMap<PortId, Vec<PortId>>,
    /// provided port -> frame id used to transmit its signal off-ECU.
    tx_mapping: HashMap<PortId, CanId>,
    /// frame id -> required ports fed by that signal on this ECU.
    rx_mapping: HashMap<CanId, Vec<PortId>>,
    // --- Fast plane: compiled, densely indexed route tables -------------
    /// Port id -> dense slot; slots index `ports`, `local_routes`, `tx_routes`.
    port_slots: Interner<PortId>,
    /// Port runtimes, indexed by port slot.
    ports: Vec<PortRuntime>,
    /// provider slot -> requirer slots (compiled from `connections`).
    local_routes: Vec<Vec<Slot>>,
    /// provider slot -> outbound frame (compiled from `tx_mapping`).
    tx_routes: Vec<Option<CanId>>,
    /// Frame id -> dense slot; slots index `rx_routes`.
    frame_slots: Interner<CanId>,
    /// frame slot -> requirer slots (compiled from `rx_mapping`).
    rx_routes: Vec<Vec<Slot>>,
    // --- Runtime queues --------------------------------------------------
    /// values queued for the communication stack.
    outbound: Vec<(CanId, Value)>,
    /// required ports that received new data since the last drain.
    data_received: Vec<PortId>,
    stats: RteStats,
}

impl Rte {
    /// Creates an empty RTE instance.
    pub fn new() -> Self {
        Rte::default()
    }

    /// Signal-traffic statistics accumulated so far.
    pub fn stats(&self) -> RteStats {
        self.stats
    }

    /// Registers a component's ports under the given SW-C instance id.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::Duplicate`] if the instance id is already
    /// registered and [`DynarError::InvalidConfiguration`] if the descriptor
    /// fails validation.
    pub fn register_component(&mut self, swc: SwcId, descriptor: &SwcDescriptor) -> Result<()> {
        if self.components.contains_key(&swc) {
            return Err(DynarError::duplicate("software component", swc));
        }
        descriptor.validate()?;
        for (index, spec) in descriptor.ports().iter().enumerate() {
            let port_id = PortId::new(swc, index as u16);
            let slot = self.port_slots.intern(port_id);
            debug_assert_eq!(slot.index(), self.ports.len(), "ports are never removed");
            self.ports.push(PortRuntime {
                id: port_id,
                spec: spec.clone(),
                buffer: PortBuffer::for_interface(spec.interface()),
            });
            self.local_routes.push(Vec::new());
            self.tx_routes.push(None);
            self.port_names
                .entry(swc)
                .or_default()
                .insert(spec.name().to_owned(), port_id);
        }
        self.components.insert(swc, descriptor.clone());
        Ok(())
    }

    /// The descriptor a SW-C instance was registered with.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown instance.
    pub fn descriptor(&self, swc: SwcId) -> Result<&SwcDescriptor> {
        self.components
            .get(&swc)
            .ok_or_else(|| DynarError::not_found("software component", swc))
    }

    /// All SW-C instances registered on this RTE.
    pub fn component_ids(&self) -> Vec<SwcId> {
        let mut ids: Vec<SwcId> = self.components.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Resolves a port by SW-C instance and port name.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] if the SW-C or port is unknown.
    pub fn port_id(&self, swc: SwcId, name: &str) -> Result<PortId> {
        self.port_names
            .get(&swc)
            .and_then(|ports| ports.get(name))
            .copied()
            .ok_or_else(|| DynarError::not_found("port", format!("{swc}:{name}")))
    }

    /// The dense slot the fast plane assigned to a port.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port.
    pub fn port_slot(&self, port: PortId) -> Result<Slot> {
        self.port_slots
            .get(&port)
            .ok_or_else(|| DynarError::not_found("port", port))
    }

    /// The static spec of a port.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port.
    pub fn port_spec(&self, port: PortId) -> Result<&PortSpec> {
        Ok(&self.ports[self.port_slot(port)?.index()].spec)
    }

    /// Connects a provided port to a required port on the same ECU
    /// (an assembly connector).
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown ports and
    /// [`DynarError::InvalidConfiguration`] for incompatible port pairs.
    pub fn connect(&mut self, provider: PortId, requirer: PortId) -> Result<()> {
        let provider_spec = self.port_spec(provider)?;
        let requirer_spec = self.port_spec(requirer)?;
        check_connectable(provider_spec, requirer_spec)?;
        self.connections.entry(provider).or_default().push(requirer);
        self.rebuild_routes();
        Ok(())
    }

    /// Removes an assembly connector previously created by [`Rte::connect`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] if the connector does not exist.
    pub fn disconnect(&mut self, provider: PortId, requirer: PortId) -> Result<()> {
        let requirers = self
            .connections
            .get_mut(&provider)
            .ok_or_else(|| DynarError::not_found("connection", provider))?;
        let position = requirers
            .iter()
            .position(|r| *r == requirer)
            .ok_or_else(|| DynarError::not_found("connection", requirer))?;
        requirers.remove(position);
        if requirers.is_empty() {
            self.connections.remove(&provider);
        }
        self.rebuild_routes();
        Ok(())
    }

    /// Maps a provided port onto a network frame id for off-ECU transmission.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port and
    /// [`DynarError::PortDirection`] if the port is not provided.
    pub fn map_signal_out(&mut self, provider: PortId, frame: CanId) -> Result<()> {
        let spec = self.port_spec(provider)?;
        if spec.direction() != PortDirection::Provided {
            return Err(DynarError::PortDirection {
                port: provider.to_string(),
                expected: "provided",
            });
        }
        self.tx_mapping.insert(provider, frame);
        self.rebuild_routes();
        Ok(())
    }

    /// Removes the outbound network mapping of a provided port.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] if the port has no outbound mapping.
    pub fn unmap_signal_out(&mut self, provider: PortId) -> Result<CanId> {
        let frame = self
            .tx_mapping
            .remove(&provider)
            .ok_or_else(|| DynarError::not_found("signal mapping", provider))?;
        self.rebuild_routes();
        Ok(frame)
    }

    /// Maps an incoming network frame id onto a required port of this ECU.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port and
    /// [`DynarError::PortDirection`] if the port is not required.
    pub fn map_signal_in(&mut self, frame: CanId, requirer: PortId) -> Result<()> {
        let spec = self.port_spec(requirer)?;
        if spec.direction() != PortDirection::Required {
            return Err(DynarError::PortDirection {
                port: requirer.to_string(),
                expected: "required",
            });
        }
        self.rx_mapping.entry(frame).or_default().push(requirer);
        self.rebuild_routes();
        Ok(())
    }

    /// Removes the inbound mapping from `frame` onto `requirer`.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] if the mapping does not exist.
    pub fn unmap_signal_in(&mut self, frame: CanId, requirer: PortId) -> Result<()> {
        let requirers = self
            .rx_mapping
            .get_mut(&frame)
            .ok_or_else(|| DynarError::not_found("signal mapping", frame))?;
        let position = requirers
            .iter()
            .position(|r| *r == requirer)
            .ok_or_else(|| DynarError::not_found("signal mapping", requirer))?;
        requirers.remove(position);
        if requirers.is_empty() {
            self.rx_mapping.remove(&frame);
        }
        self.rebuild_routes();
        Ok(())
    }

    /// Writes a value on a provided port, routing it to every locally
    /// connected required port and/or onto the network mapping.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port and
    /// [`DynarError::PortDirection`] when the port is not provided.
    pub fn write_port(&mut self, provider: PortId, value: Value) -> Result<()> {
        let slot = self.port_slot(provider)?;
        let runtime = &mut self.ports[slot.index()];
        if runtime.spec.direction() != PortDirection::Provided {
            return Err(DynarError::PortDirection {
                port: provider.to_string(),
                expected: "provided",
            });
        }
        self.stats.writes += 1;

        // The provider's own buffer keeps the last written value so that
        // diagnostics (and tests) can observe what a component last produced.
        runtime.buffer.push(value.clone());

        let receivers = self.local_routes[slot.index()].len();
        let has_tx = self.tx_routes[slot.index()].is_some();
        for index in 0..receivers {
            let requirer = self.local_routes[slot.index()][index];
            let last = index + 1 == receivers && !has_tx;
            if last {
                // The final receiver takes the value by move.
                Self::deliver_into(
                    &mut self.ports[requirer.index()],
                    &mut self.data_received,
                    &mut self.stats,
                    value,
                );
                self.stats.local_routes += 1;
                return Ok(());
            }
            Self::deliver_into(
                &mut self.ports[requirer.index()],
                &mut self.data_received,
                &mut self.stats,
                value.clone(),
            );
            self.stats.local_routes += 1;
        }
        if let Some(frame) = self.tx_routes[slot.index()] {
            self.outbound.push((frame, value));
            self.stats.network_routes += 1;
        } else if receivers == 0 {
            self.stats.unconnected_writes += 1;
        }
        Ok(())
    }

    /// Reads (without consuming) the current value of a port.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port.
    pub fn read_port(&self, port: PortId) -> Result<Value> {
        Ok(self.ports[self.port_slot(port)?.index()].buffer.peek())
    }

    /// Reads (without consuming) the current value of a port identified by
    /// SW-C instance and port name.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] if the SW-C or port is unknown.
    pub fn read_port_by_name(&self, swc: SwcId, name: &str) -> Result<Value> {
        let id = self.port_id(swc, name)?;
        self.read_port(id)
    }

    /// Consumes the next value available on a required port.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port and
    /// [`DynarError::PortDirection`] for a provided port.
    pub fn take_port(&mut self, port: PortId) -> Result<Option<Value>> {
        let slot = self.port_slot(port)?;
        let runtime = &mut self.ports[slot.index()];
        if runtime.spec.direction() != PortDirection::Required {
            return Err(DynarError::PortDirection {
                port: port.to_string(),
                expected: "required",
            });
        }
        Ok(runtime.buffer.take())
    }

    /// Number of values waiting on a port.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port.
    pub fn pending_on(&self, port: PortId) -> Result<usize> {
        Ok(self.ports[self.port_slot(port)?.index()].buffer.pending())
    }

    /// Delivers a value arriving from the in-vehicle network for `frame`.
    ///
    /// Unknown frame ids are silently ignored, mirroring a CAN controller
    /// whose acceptance filter admitted a frame no PDU is mapped to.
    pub fn deliver_inbound(&mut self, frame: CanId, value: Value) {
        let Some(slot) = self.frame_slots.get(&frame) else {
            return;
        };
        let receivers = self.rx_routes[slot.index()].len();
        for index in 0..receivers {
            let requirer = self.rx_routes[slot.index()][index];
            if index + 1 == receivers {
                Self::deliver_into(
                    &mut self.ports[requirer.index()],
                    &mut self.data_received,
                    &mut self.stats,
                    value,
                );
                self.stats.network_deliveries += 1;
                return;
            }
            Self::deliver_into(
                &mut self.ports[requirer.index()],
                &mut self.data_received,
                &mut self.stats,
                value.clone(),
            );
            self.stats.network_deliveries += 1;
        }
    }

    /// Drains the values queued for off-ECU transmission.
    pub fn drain_outbound(&mut self) -> Vec<(CanId, Value)> {
        std::mem::take(&mut self.outbound)
    }

    /// Drains the values queued for off-ECU transmission into a caller-owned
    /// buffer.  When `into` is empty the buffers are swapped, so a caller
    /// that reuses its buffer across ticks keeps both allocations warm and
    /// the per-tick drain allocation-free.
    pub fn drain_outbound_into(&mut self, into: &mut Vec<(CanId, Value)>) {
        dynar_foundation::buffers::drain_swap(&mut self.outbound, into);
    }

    /// Drains the list of required ports that received data since the last
    /// call (used by the ECU to fire data-received triggers).
    pub fn drain_data_received(&mut self) -> Vec<PortId> {
        std::mem::take(&mut self.data_received)
    }

    /// Drains the data-received port list into a caller-owned buffer (swap
    /// when empty, append otherwise) — the allocation-free variant of
    /// [`Rte::drain_data_received`].
    pub fn drain_data_received_into(&mut self, into: &mut Vec<PortId>) {
        dynar_foundation::buffers::drain_swap(&mut self.data_received, into);
    }

    /// Recompiles the fast plane from the slow plane.  Called on every
    /// reconfiguration; signal traffic never triggers it.
    fn rebuild_routes(&mut self) {
        let width = self.port_slots.capacity();
        self.local_routes = vec![Vec::new(); width];
        self.tx_routes = vec![None; width];
        // Free the slots of frames no longer mapped so (un)map churn reuses
        // them instead of growing the dense tables.
        let stale: Vec<CanId> = self
            .frame_slots
            .iter()
            .map(|(_, frame)| *frame)
            .filter(|frame| !self.rx_mapping.contains_key(frame))
            .collect();
        for frame in &stale {
            self.frame_slots.remove(frame);
        }
        for frame in self.rx_mapping.keys() {
            self.frame_slots.intern(*frame);
        }
        self.rx_routes = vec![Vec::new(); self.frame_slots.capacity()];

        for (provider, requirers) in &self.connections {
            if let Some(provider_slot) = self.port_slots.get(provider) {
                let routes = &mut self.local_routes[provider_slot.index()];
                routes.extend(requirers.iter().filter_map(|r| self.port_slots.get(r)));
            }
        }
        for (provider, frame) in &self.tx_mapping {
            if let Some(provider_slot) = self.port_slots.get(provider) {
                self.tx_routes[provider_slot.index()] = Some(*frame);
            }
        }
        for (frame, requirers) in &self.rx_mapping {
            let frame_slot = self.frame_slots.get(frame).expect("interned above");
            let routes = &mut self.rx_routes[frame_slot.index()];
            routes.extend(requirers.iter().filter_map(|r| self.port_slots.get(r)));
        }
    }

    /// Checks that the compiled fast plane matches what a fresh compile of
    /// the slow plane would produce (used by the equivalence and property
    /// test suites; always `true` unless the rebuild discipline is broken).
    pub fn verify_compiled_routes(&self) -> bool {
        for (provider, requirers) in &self.connections {
            let Some(provider_slot) = self.port_slots.get(provider) else {
                return false;
            };
            let expected: Vec<Slot> = requirers
                .iter()
                .filter_map(|r| self.port_slots.get(r))
                .collect();
            if self.local_routes[provider_slot.index()] != expected {
                return false;
            }
        }
        let live_local: usize = self.local_routes.iter().map(Vec::len).sum();
        let declared_local: usize = self.connections.values().map(Vec::len).sum();
        if live_local != declared_local {
            return false;
        }
        for (provider, frame) in &self.tx_mapping {
            let Some(provider_slot) = self.port_slots.get(provider) else {
                return false;
            };
            if self.tx_routes[provider_slot.index()] != Some(*frame) {
                return false;
            }
        }
        if self.tx_routes.iter().flatten().count() != self.tx_mapping.len() {
            return false;
        }
        for (frame, requirers) in &self.rx_mapping {
            let Some(frame_slot) = self.frame_slots.get(frame) else {
                return false;
            };
            let expected: Vec<Slot> = requirers
                .iter()
                .filter_map(|r| self.port_slots.get(r))
                .collect();
            if self.rx_routes[frame_slot.index()] != expected {
                return false;
            }
        }
        let live_rx: usize = self.rx_routes.iter().map(Vec::len).sum();
        let declared_rx: usize = self.rx_mapping.values().map(Vec::len).sum();
        // No stale frame slots: every interned frame is still mapped.
        live_rx == declared_rx && self.frame_slots.len() == self.rx_mapping.len()
    }

    /// Pushes `value` into a receiving port's buffer: the single clone of the
    /// delivery path happens at this boundary (or not at all, when the caller
    /// moves the value in).
    fn deliver_into(
        runtime: &mut PortRuntime,
        data_received: &mut Vec<PortId>,
        stats: &mut RteStats,
        value: Value,
    ) {
        let before = runtime.buffer.overflows();
        runtime.buffer.push(value);
        if runtime.buffer.overflows() > before {
            stats.queue_overflows += 1;
        }
        data_received.push(runtime.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::SwcDescriptor;
    use crate::port::PortSpec;
    use dynar_foundation::ids::EcuId;

    fn swc(local: u16) -> SwcId {
        SwcId::new(EcuId::new(0), local)
    }

    fn simple_pair() -> (Rte, PortId, PortId) {
        let mut rte = Rte::new();
        let producer = SwcDescriptor::new("producer")
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided));
        let consumer = SwcDescriptor::new("consumer").with_port(PortSpec::queued(
            "in",
            PortDirection::Required,
            4,
        ));
        rte.register_component(swc(0), &producer).unwrap();
        rte.register_component(swc(1), &consumer).unwrap();
        let out = rte.port_id(swc(0), "out").unwrap();
        let inp = rte.port_id(swc(1), "in").unwrap();
        rte.connect(out, inp).unwrap();
        (rte, out, inp)
    }

    #[test]
    fn local_routing_delivers_values() {
        let (mut rte, out, inp) = simple_pair();
        rte.write_port(out, Value::I64(3)).unwrap();
        assert_eq!(rte.take_port(inp).unwrap(), Some(Value::I64(3)));
        assert_eq!(rte.stats().local_routes, 1);
        assert_eq!(rte.drain_data_received(), vec![inp]);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut rte = Rte::new();
        let desc = SwcDescriptor::new("c");
        rte.register_component(swc(0), &desc).unwrap();
        assert!(rte.register_component(swc(0), &desc).is_err());
    }

    #[test]
    fn write_on_required_port_is_rejected() {
        let (mut rte, _out, inp) = simple_pair();
        let err = rte.write_port(inp, Value::I64(1)).unwrap_err();
        assert!(matches!(err, DynarError::PortDirection { .. }));
    }

    #[test]
    fn take_on_provided_port_is_rejected() {
        let (mut rte, out, _inp) = simple_pair();
        assert!(matches!(
            rte.take_port(out).unwrap_err(),
            DynarError::PortDirection { .. }
        ));
    }

    #[test]
    fn unconnected_writes_are_counted_not_errors() {
        let mut rte = Rte::new();
        let desc = SwcDescriptor::new("p")
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided));
        rte.register_component(swc(0), &desc).unwrap();
        let out = rte.port_id(swc(0), "out").unwrap();
        rte.write_port(out, Value::I64(1)).unwrap();
        assert_eq!(rte.stats().unconnected_writes, 1);
        assert_eq!(rte.read_port(out).unwrap(), Value::I64(1));
    }

    #[test]
    fn network_mapping_queues_outbound_values() {
        let mut rte = Rte::new();
        let desc = SwcDescriptor::new("p")
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided));
        rte.register_component(swc(0), &desc).unwrap();
        let out = rte.port_id(swc(0), "out").unwrap();
        let frame = CanId::new(0x101).unwrap();
        rte.map_signal_out(out, frame).unwrap();
        rte.write_port(out, Value::F64(1.5)).unwrap();
        assert_eq!(rte.drain_outbound(), vec![(frame, Value::F64(1.5))]);
        assert_eq!(rte.stats().network_routes, 1);
    }

    #[test]
    fn inbound_frames_reach_mapped_ports() {
        let mut rte = Rte::new();
        let desc = SwcDescriptor::new("c")
            .with_port(PortSpec::sender_receiver("in", PortDirection::Required));
        rte.register_component(swc(0), &desc).unwrap();
        let inp = rte.port_id(swc(0), "in").unwrap();
        let frame = CanId::new(0x42).unwrap();
        rte.map_signal_in(frame, inp).unwrap();
        rte.deliver_inbound(frame, Value::I64(9));
        rte.deliver_inbound(CanId::new(0x99).unwrap(), Value::I64(1));
        assert_eq!(rte.read_port(inp).unwrap(), Value::I64(9));
        assert_eq!(rte.stats().network_deliveries, 1);
    }

    #[test]
    fn mapping_direction_checks() {
        let mut rte = Rte::new();
        let desc = SwcDescriptor::new("c")
            .with_port(PortSpec::sender_receiver("in", PortDirection::Required))
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided));
        rte.register_component(swc(0), &desc).unwrap();
        let inp = rte.port_id(swc(0), "in").unwrap();
        let out = rte.port_id(swc(0), "out").unwrap();
        let frame = CanId::new(1).unwrap();
        assert!(rte.map_signal_out(inp, frame).is_err());
        assert!(rte.map_signal_in(frame, out).is_err());
    }

    #[test]
    fn queue_overflow_is_counted() {
        let mut rte = Rte::new();
        let producer = SwcDescriptor::new("p")
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided));
        let consumer =
            SwcDescriptor::new("c").with_port(PortSpec::queued("in", PortDirection::Required, 1));
        rte.register_component(swc(0), &producer).unwrap();
        rte.register_component(swc(1), &consumer).unwrap();
        let out = rte.port_id(swc(0), "out").unwrap();
        let inp = rte.port_id(swc(1), "in").unwrap();
        rte.connect(out, inp).unwrap();
        rte.write_port(out, Value::I64(1)).unwrap();
        rte.write_port(out, Value::I64(2)).unwrap();
        assert_eq!(rte.stats().queue_overflows, 1);
        assert_eq!(rte.take_port(inp).unwrap(), Some(Value::I64(2)));
    }

    #[test]
    fn one_provider_fans_out_to_many_requirers() {
        let mut rte = Rte::new();
        let producer = SwcDescriptor::new("p")
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided));
        rte.register_component(swc(0), &producer).unwrap();
        let out = rte.port_id(swc(0), "out").unwrap();
        let mut ins = Vec::new();
        for i in 1..=3 {
            let consumer = SwcDescriptor::new(format!("c{i}"))
                .with_port(PortSpec::sender_receiver("in", PortDirection::Required));
            rte.register_component(swc(i), &consumer).unwrap();
            let inp = rte.port_id(swc(i), "in").unwrap();
            rte.connect(out, inp).unwrap();
            ins.push(inp);
        }
        rte.write_port(out, Value::Text("hello".into())).unwrap();
        for inp in ins {
            assert_eq!(rte.read_port(inp).unwrap(), Value::Text("hello".into()));
        }
        assert_eq!(rte.stats().local_routes, 3);
    }

    #[test]
    fn component_ids_are_sorted() {
        let (rte, _, _) = simple_pair();
        assert_eq!(rte.component_ids(), vec![swc(0), swc(1)]);
        assert!(rte.descriptor(swc(0)).is_ok());
        assert!(rte.descriptor(swc(9)).is_err());
    }

    #[test]
    fn disconnect_removes_the_route() {
        let (mut rte, out, inp) = simple_pair();
        rte.disconnect(out, inp).unwrap();
        rte.write_port(out, Value::I64(5)).unwrap();
        assert_eq!(rte.take_port(inp).unwrap(), None);
        assert_eq!(rte.stats().unconnected_writes, 1);
        assert!(rte.disconnect(out, inp).is_err(), "already disconnected");
        assert!(rte.verify_compiled_routes());
    }

    #[test]
    fn unmap_signal_out_stops_network_routing() {
        let mut rte = Rte::new();
        let desc = SwcDescriptor::new("p")
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided));
        rte.register_component(swc(0), &desc).unwrap();
        let out = rte.port_id(swc(0), "out").unwrap();
        let frame = CanId::new(0x101).unwrap();
        rte.map_signal_out(out, frame).unwrap();
        assert_eq!(rte.unmap_signal_out(out).unwrap(), frame);
        rte.write_port(out, Value::I64(1)).unwrap();
        assert!(rte.drain_outbound().is_empty());
        assert!(rte.unmap_signal_out(out).is_err());
        assert!(rte.verify_compiled_routes());
    }

    #[test]
    fn unmap_signal_in_stops_inbound_delivery() {
        let mut rte = Rte::new();
        let desc = SwcDescriptor::new("c")
            .with_port(PortSpec::sender_receiver("in", PortDirection::Required));
        rte.register_component(swc(0), &desc).unwrap();
        let inp = rte.port_id(swc(0), "in").unwrap();
        let frame = CanId::new(0x42).unwrap();
        rte.map_signal_in(frame, inp).unwrap();
        rte.unmap_signal_in(frame, inp).unwrap();
        rte.deliver_inbound(frame, Value::I64(9));
        assert_eq!(rte.stats().network_deliveries, 0);
        assert!(rte.unmap_signal_in(frame, inp).is_err());
        assert!(rte.verify_compiled_routes());
    }

    #[test]
    fn map_unmap_churn_leaves_no_stale_frame_slots() {
        let mut rte = Rte::new();
        let desc = SwcDescriptor::new("c")
            .with_port(PortSpec::sender_receiver("in", PortDirection::Required));
        rte.register_component(swc(0), &desc).unwrap();
        let inp = rte.port_id(swc(0), "in").unwrap();
        // Map and unmap a fresh frame id per cycle: freed slots must be
        // reused, not accumulated.
        for round in 0..100u32 {
            let frame = CanId::new(0x100 + round).unwrap();
            rte.map_signal_in(frame, inp).unwrap();
            assert!(rte.verify_compiled_routes());
            rte.unmap_signal_in(frame, inp).unwrap();
            assert!(rte.verify_compiled_routes());
        }
        assert_eq!(
            rte.frame_slots.capacity(),
            1,
            "100 map/unmap cycles reuse a single frame slot"
        );
    }

    #[test]
    fn reconnect_cycles_leave_no_stale_routes() {
        let (mut rte, out, inp) = simple_pair();
        for _ in 0..50 {
            rte.disconnect(out, inp).unwrap();
            rte.connect(out, inp).unwrap();
        }
        assert!(rte.verify_compiled_routes());
        rte.write_port(out, Value::I64(7)).unwrap();
        assert_eq!(
            rte.take_port(inp).unwrap(),
            Some(Value::I64(7)),
            "exactly one delivery after 50 reconnect cycles"
        );
        assert_eq!(rte.pending_on(inp).unwrap(), 0);
    }

    #[test]
    fn port_slots_are_dense_and_stable() {
        let (rte, out, inp) = simple_pair();
        let out_slot = rte.port_slot(out).unwrap();
        let inp_slot = rte.port_slot(inp).unwrap();
        assert_ne!(out_slot, inp_slot);
        assert!(out_slot.index() < 2 && inp_slot.index() < 2);
        assert!(rte.port_slot(PortId::new(swc(9), 0)).is_err());
    }
}
