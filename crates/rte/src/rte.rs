//! The per-ECU RTE engine: port registry, local routing and network mapping.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dynar_bus::frame::CanId;
use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{PortId, SwcId};
use dynar_foundation::value::Value;

use crate::component::SwcDescriptor;
use crate::port::{check_connectable, PortBuffer, PortDirection, PortSpec};

/// Counters describing the signal traffic through one RTE instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RteStats {
    /// Writes issued by component behaviours.
    pub writes: u64,
    /// Signals routed to a local required port.
    pub local_routes: u64,
    /// Signals queued for transmission on the in-vehicle network.
    pub network_routes: u64,
    /// Writes on ports with neither a local connection nor a network mapping.
    pub unconnected_writes: u64,
    /// Values delivered from the network into required ports.
    pub network_deliveries: u64,
    /// Values dropped because a queued port overflowed.
    pub queue_overflows: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PortRuntime {
    spec: PortSpec,
    buffer: PortBuffer,
}

/// The RTE instance of one ECU.
///
/// The RTE knows every SW-C registered on its ECU, owns the runtime buffers of
/// their ports, routes written values to locally connected ports and queues
/// values bound for other ECUs as `(frame id, value)` pairs for the
/// communication stack to pick up.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Rte {
    components: HashMap<SwcId, SwcDescriptor>,
    ports: HashMap<PortId, PortRuntime>,
    port_names: HashMap<(SwcId, String), PortId>,
    /// provided port -> locally connected required ports.
    connections: HashMap<PortId, Vec<PortId>>,
    /// provided port -> frame id used to transmit its signal off-ECU.
    tx_mapping: HashMap<PortId, CanId>,
    /// frame id -> required ports fed by that signal on this ECU.
    rx_mapping: HashMap<CanId, Vec<PortId>>,
    /// values queued for the communication stack.
    outbound: Vec<(CanId, Value)>,
    /// required ports that received new data since the last drain.
    data_received: Vec<PortId>,
    stats: RteStats,
}

impl Rte {
    /// Creates an empty RTE instance.
    pub fn new() -> Self {
        Rte::default()
    }

    /// Signal-traffic statistics accumulated so far.
    pub fn stats(&self) -> RteStats {
        self.stats
    }

    /// Registers a component's ports under the given SW-C instance id.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::Duplicate`] if the instance id is already
    /// registered and [`DynarError::InvalidConfiguration`] if the descriptor
    /// fails validation.
    pub fn register_component(&mut self, swc: SwcId, descriptor: &SwcDescriptor) -> Result<()> {
        if self.components.contains_key(&swc) {
            return Err(DynarError::duplicate("software component", swc));
        }
        descriptor.validate()?;
        for (index, spec) in descriptor.ports().iter().enumerate() {
            let port_id = PortId::new(swc, index as u16);
            self.ports.insert(
                port_id,
                PortRuntime {
                    spec: spec.clone(),
                    buffer: PortBuffer::for_interface(spec.interface()),
                },
            );
            self.port_names
                .insert((swc, spec.name().to_owned()), port_id);
        }
        self.components.insert(swc, descriptor.clone());
        Ok(())
    }

    /// The descriptor a SW-C instance was registered with.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown instance.
    pub fn descriptor(&self, swc: SwcId) -> Result<&SwcDescriptor> {
        self.components
            .get(&swc)
            .ok_or_else(|| DynarError::not_found("software component", swc))
    }

    /// All SW-C instances registered on this RTE.
    pub fn component_ids(&self) -> Vec<SwcId> {
        let mut ids: Vec<SwcId> = self.components.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Resolves a port by SW-C instance and port name.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] if the SW-C or port is unknown.
    pub fn port_id(&self, swc: SwcId, name: &str) -> Result<PortId> {
        self.port_names
            .get(&(swc, name.to_owned()))
            .copied()
            .ok_or_else(|| DynarError::not_found("port", format!("{swc}:{name}")))
    }

    /// The static spec of a port.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port.
    pub fn port_spec(&self, port: PortId) -> Result<&PortSpec> {
        self.ports
            .get(&port)
            .map(|p| &p.spec)
            .ok_or_else(|| DynarError::not_found("port", port))
    }

    /// Connects a provided port to a required port on the same ECU
    /// (an assembly connector).
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown ports and
    /// [`DynarError::InvalidConfiguration`] for incompatible port pairs.
    pub fn connect(&mut self, provider: PortId, requirer: PortId) -> Result<()> {
        let provider_spec = self.port_spec(provider)?.clone();
        let requirer_spec = self.port_spec(requirer)?.clone();
        check_connectable(&provider_spec, &requirer_spec)?;
        self.connections.entry(provider).or_default().push(requirer);
        Ok(())
    }

    /// Maps a provided port onto a network frame id for off-ECU transmission.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port and
    /// [`DynarError::PortDirection`] if the port is not provided.
    pub fn map_signal_out(&mut self, provider: PortId, frame: CanId) -> Result<()> {
        let spec = self.port_spec(provider)?;
        if spec.direction() != PortDirection::Provided {
            return Err(DynarError::PortDirection {
                port: provider.to_string(),
                expected: "provided",
            });
        }
        self.tx_mapping.insert(provider, frame);
        Ok(())
    }

    /// Maps an incoming network frame id onto a required port of this ECU.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port and
    /// [`DynarError::PortDirection`] if the port is not required.
    pub fn map_signal_in(&mut self, frame: CanId, requirer: PortId) -> Result<()> {
        let spec = self.port_spec(requirer)?;
        if spec.direction() != PortDirection::Required {
            return Err(DynarError::PortDirection {
                port: requirer.to_string(),
                expected: "required",
            });
        }
        self.rx_mapping.entry(frame).or_default().push(requirer);
        Ok(())
    }

    /// Writes a value on a provided port, routing it to every locally
    /// connected required port and/or onto the network mapping.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port and
    /// [`DynarError::PortDirection`] when the port is not provided.
    pub fn write_port(&mut self, provider: PortId, value: Value) -> Result<()> {
        let spec = self.port_spec(provider)?;
        if spec.direction() != PortDirection::Provided {
            return Err(DynarError::PortDirection {
                port: provider.to_string(),
                expected: "provided",
            });
        }
        self.stats.writes += 1;

        // The provider's own buffer keeps the last written value so that
        // diagnostics (and tests) can observe what a component last produced.
        if let Some(runtime) = self.ports.get_mut(&provider) {
            runtime.buffer.push(value.clone());
        }

        let mut routed = false;
        let receivers = self.connections.get(&provider).cloned().unwrap_or_default();
        for requirer in receivers {
            self.deliver_local(requirer, value.clone());
            self.stats.local_routes += 1;
            routed = true;
        }
        if let Some(frame) = self.tx_mapping.get(&provider) {
            self.outbound.push((*frame, value));
            self.stats.network_routes += 1;
            routed = true;
        }
        if !routed {
            self.stats.unconnected_writes += 1;
        }
        Ok(())
    }

    /// Reads (without consuming) the current value of a port.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port.
    pub fn read_port(&self, port: PortId) -> Result<Value> {
        self.ports
            .get(&port)
            .map(|p| p.buffer.peek())
            .ok_or_else(|| DynarError::not_found("port", port))
    }

    /// Reads (without consuming) the current value of a port identified by
    /// SW-C instance and port name.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] if the SW-C or port is unknown.
    pub fn read_port_by_name(&self, swc: SwcId, name: &str) -> Result<Value> {
        let id = self.port_id(swc, name)?;
        self.read_port(id)
    }

    /// Consumes the next value available on a required port.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port and
    /// [`DynarError::PortDirection`] for a provided port.
    pub fn take_port(&mut self, port: PortId) -> Result<Option<Value>> {
        let runtime = self
            .ports
            .get_mut(&port)
            .ok_or_else(|| DynarError::not_found("port", port))?;
        if runtime.spec.direction() != PortDirection::Required {
            return Err(DynarError::PortDirection {
                port: port.to_string(),
                expected: "required",
            });
        }
        Ok(runtime.buffer.take())
    }

    /// Number of values waiting on a port.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port.
    pub fn pending_on(&self, port: PortId) -> Result<usize> {
        self.ports
            .get(&port)
            .map(|p| p.buffer.pending())
            .ok_or_else(|| DynarError::not_found("port", port))
    }

    /// Delivers a value arriving from the in-vehicle network for `frame`.
    ///
    /// Unknown frame ids are silently ignored, mirroring a CAN controller
    /// whose acceptance filter admitted a frame no PDU is mapped to.
    pub fn deliver_inbound(&mut self, frame: CanId, value: Value) {
        let receivers = self.rx_mapping.get(&frame).cloned().unwrap_or_default();
        for requirer in receivers {
            self.deliver_local(requirer, value.clone());
            self.stats.network_deliveries += 1;
        }
    }

    /// Drains the values queued for off-ECU transmission.
    pub fn drain_outbound(&mut self) -> Vec<(CanId, Value)> {
        std::mem::take(&mut self.outbound)
    }

    /// Drains the list of required ports that received data since the last
    /// call (used by the ECU to fire data-received triggers).
    pub fn drain_data_received(&mut self) -> Vec<PortId> {
        std::mem::take(&mut self.data_received)
    }

    fn deliver_local(&mut self, requirer: PortId, value: Value) {
        if let Some(runtime) = self.ports.get_mut(&requirer) {
            let before = runtime.buffer.overflows();
            runtime.buffer.push(value);
            if runtime.buffer.overflows() > before {
                self.stats.queue_overflows += 1;
            }
            self.data_received.push(requirer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::SwcDescriptor;
    use crate::port::PortSpec;
    use dynar_foundation::ids::EcuId;

    fn swc(local: u16) -> SwcId {
        SwcId::new(EcuId::new(0), local)
    }

    fn simple_pair() -> (Rte, PortId, PortId) {
        let mut rte = Rte::new();
        let producer = SwcDescriptor::new("producer")
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided));
        let consumer = SwcDescriptor::new("consumer").with_port(PortSpec::queued(
            "in",
            PortDirection::Required,
            4,
        ));
        rte.register_component(swc(0), &producer).unwrap();
        rte.register_component(swc(1), &consumer).unwrap();
        let out = rte.port_id(swc(0), "out").unwrap();
        let inp = rte.port_id(swc(1), "in").unwrap();
        rte.connect(out, inp).unwrap();
        (rte, out, inp)
    }

    #[test]
    fn local_routing_delivers_values() {
        let (mut rte, out, inp) = simple_pair();
        rte.write_port(out, Value::I64(3)).unwrap();
        assert_eq!(rte.take_port(inp).unwrap(), Some(Value::I64(3)));
        assert_eq!(rte.stats().local_routes, 1);
        assert_eq!(rte.drain_data_received(), vec![inp]);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut rte = Rte::new();
        let desc = SwcDescriptor::new("c");
        rte.register_component(swc(0), &desc).unwrap();
        assert!(rte.register_component(swc(0), &desc).is_err());
    }

    #[test]
    fn write_on_required_port_is_rejected() {
        let (mut rte, _out, inp) = simple_pair();
        let err = rte.write_port(inp, Value::I64(1)).unwrap_err();
        assert!(matches!(err, DynarError::PortDirection { .. }));
    }

    #[test]
    fn take_on_provided_port_is_rejected() {
        let (mut rte, out, _inp) = simple_pair();
        assert!(matches!(
            rte.take_port(out).unwrap_err(),
            DynarError::PortDirection { .. }
        ));
    }

    #[test]
    fn unconnected_writes_are_counted_not_errors() {
        let mut rte = Rte::new();
        let desc = SwcDescriptor::new("p")
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided));
        rte.register_component(swc(0), &desc).unwrap();
        let out = rte.port_id(swc(0), "out").unwrap();
        rte.write_port(out, Value::I64(1)).unwrap();
        assert_eq!(rte.stats().unconnected_writes, 1);
        assert_eq!(rte.read_port(out).unwrap(), Value::I64(1));
    }

    #[test]
    fn network_mapping_queues_outbound_values() {
        let mut rte = Rte::new();
        let desc = SwcDescriptor::new("p")
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided));
        rte.register_component(swc(0), &desc).unwrap();
        let out = rte.port_id(swc(0), "out").unwrap();
        let frame = CanId::new(0x101).unwrap();
        rte.map_signal_out(out, frame).unwrap();
        rte.write_port(out, Value::F64(1.5)).unwrap();
        assert_eq!(rte.drain_outbound(), vec![(frame, Value::F64(1.5))]);
        assert_eq!(rte.stats().network_routes, 1);
    }

    #[test]
    fn inbound_frames_reach_mapped_ports() {
        let mut rte = Rte::new();
        let desc = SwcDescriptor::new("c")
            .with_port(PortSpec::sender_receiver("in", PortDirection::Required));
        rte.register_component(swc(0), &desc).unwrap();
        let inp = rte.port_id(swc(0), "in").unwrap();
        let frame = CanId::new(0x42).unwrap();
        rte.map_signal_in(frame, inp).unwrap();
        rte.deliver_inbound(frame, Value::I64(9));
        rte.deliver_inbound(CanId::new(0x99).unwrap(), Value::I64(1));
        assert_eq!(rte.read_port(inp).unwrap(), Value::I64(9));
        assert_eq!(rte.stats().network_deliveries, 1);
    }

    #[test]
    fn mapping_direction_checks() {
        let mut rte = Rte::new();
        let desc = SwcDescriptor::new("c")
            .with_port(PortSpec::sender_receiver("in", PortDirection::Required))
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided));
        rte.register_component(swc(0), &desc).unwrap();
        let inp = rte.port_id(swc(0), "in").unwrap();
        let out = rte.port_id(swc(0), "out").unwrap();
        let frame = CanId::new(1).unwrap();
        assert!(rte.map_signal_out(inp, frame).is_err());
        assert!(rte.map_signal_in(frame, out).is_err());
    }

    #[test]
    fn queue_overflow_is_counted() {
        let mut rte = Rte::new();
        let producer = SwcDescriptor::new("p")
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided));
        let consumer =
            SwcDescriptor::new("c").with_port(PortSpec::queued("in", PortDirection::Required, 1));
        rte.register_component(swc(0), &producer).unwrap();
        rte.register_component(swc(1), &consumer).unwrap();
        let out = rte.port_id(swc(0), "out").unwrap();
        let inp = rte.port_id(swc(1), "in").unwrap();
        rte.connect(out, inp).unwrap();
        rte.write_port(out, Value::I64(1)).unwrap();
        rte.write_port(out, Value::I64(2)).unwrap();
        assert_eq!(rte.stats().queue_overflows, 1);
        assert_eq!(rte.take_port(inp).unwrap(), Some(Value::I64(2)));
    }

    #[test]
    fn one_provider_fans_out_to_many_requirers() {
        let mut rte = Rte::new();
        let producer = SwcDescriptor::new("p")
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided));
        rte.register_component(swc(0), &producer).unwrap();
        let out = rte.port_id(swc(0), "out").unwrap();
        let mut ins = Vec::new();
        for i in 1..=3 {
            let consumer = SwcDescriptor::new(format!("c{i}"))
                .with_port(PortSpec::sender_receiver("in", PortDirection::Required));
            rte.register_component(swc(i), &consumer).unwrap();
            let inp = rte.port_id(swc(i), "in").unwrap();
            rte.connect(out, inp).unwrap();
            ins.push(inp);
        }
        rte.write_port(out, Value::Text("hello".into())).unwrap();
        for inp in ins {
            assert_eq!(rte.read_port(inp).unwrap(), Value::Text("hello".into()));
        }
        assert_eq!(rte.stats().local_routes, 3);
    }

    #[test]
    fn component_ids_are_sorted() {
        let (rte, _, _) = simple_pair();
        assert_eq!(rte.component_ids(), vec![swc(0), swc(1)]);
        assert!(rte.descriptor(swc(0)).is_ok());
        assert!(rte.descriptor(swc(9)).is_err());
    }
}
