//! One simulated electronic control unit: kernel, RTE and trigger wiring.
//!
//! The trigger/dispatch plane is wired for a steady state that allocates
//! nothing: runnable names are shared `Arc<str>`s (activating a periodic
//! runnable is a refcount bump, not a `String` clone), pending runnables
//! live in per-component vectors indexed by component slot, and the
//! data-received scan reuses scratch buffers instead of collecting fresh
//! ones every tick.

use std::collections::HashMap;
use std::sync::Arc;

use dynar_bus::frame::CanId;
use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{EcuId, PortId, SwcId};
use dynar_foundation::log::{EventLog, Severity};
use dynar_foundation::time::{Clock, Tick};
use dynar_foundation::value::Value;
use dynar_os::kernel::Kernel;
use dynar_os::task::{TaskConfig, TaskId, TaskPriority};

use crate::component::{ComponentBehavior, RteContext, SwcDescriptor, Trigger};
use crate::rte::Rte;

/// Upper bound on dispatch rounds within one [`Ecu::step`], protecting the
/// simulation against components that endlessly re-trigger each other.
const MAX_DISPATCH_ROUNDS: usize = 64;

struct ComponentEntry {
    swc: SwcId,
    name: String,
    task: TaskId,
    behavior: Box<dyn ComponentBehavior>,
}

impl std::fmt::Debug for ComponentEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentEntry")
            .field("swc", &self.swc)
            .field("name", &self.name)
            .field("task", &self.task)
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Clone)]
struct PeriodicRunnable {
    /// Index into `components` (and `pending_runnables`).
    component: usize,
    runnable: Arc<str>,
    period: u64,
    next_due: Tick,
}

/// One simulated ECU: an OSEK kernel, an RTE instance, the components mapped
/// onto it and the trigger wiring between them.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Ecu {
    id: EcuId,
    kernel: Kernel,
    rte: Rte,
    components: Vec<ComponentEntry>,
    component_of_task: HashMap<TaskId, usize>,
    component_of_swc: HashMap<SwcId, usize>,
    component_by_name: HashMap<String, SwcId>,
    periodic: Vec<PeriodicRunnable>,
    /// Port -> runnables it triggers, as `(component index, runnable name)`.
    data_triggers: HashMap<PortId, Vec<(usize, Arc<str>)>>,
    /// Pending runnable activations per component (indexed like
    /// `components`); drained through `dispatch_scratch` so the buffers
    /// ping-pong instead of reallocating.
    pending_runnables: Vec<Vec<Arc<str>>>,
    dispatch_scratch: Vec<Arc<str>>,
    /// Reused buffer for the data-received port scan.
    ports_scratch: Vec<PortId>,
    clock: Clock,
    started: bool,
    next_local: u16,
    log: EventLog,
    behaviour_errors: Vec<(SwcId, String, DynarError)>,
}

impl Ecu {
    /// Creates an empty ECU with the given identifier.
    pub fn new(id: EcuId) -> Self {
        Ecu {
            id,
            kernel: Kernel::new(),
            rte: Rte::new(),
            components: Vec::new(),
            component_of_task: HashMap::new(),
            component_of_swc: HashMap::new(),
            component_by_name: HashMap::new(),
            periodic: Vec::new(),
            data_triggers: HashMap::new(),
            pending_runnables: Vec::new(),
            dispatch_scratch: Vec::new(),
            ports_scratch: Vec::new(),
            clock: Clock::new(),
            started: false,
            next_local: 0,
            log: EventLog::new(),
            behaviour_errors: Vec::new(),
        }
    }

    /// The ECU identifier.
    pub fn id(&self) -> EcuId {
        self.id
    }

    /// Current simulated time on this ECU.
    pub fn now(&self) -> Tick {
        self.clock.now()
    }

    /// Read access to the RTE instance.
    pub fn rte(&self) -> &Rte {
        &self.rte
    }

    /// Mutable access to the RTE instance.
    pub fn rte_mut(&mut self) -> &mut Rte {
        &mut self.rte
    }

    /// Read access to the OS kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The event log of this ECU.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Drains the behaviour errors recorded since the last call.
    pub fn take_behaviour_errors(&mut self) -> Vec<(SwcId, String, DynarError)> {
        std::mem::take(&mut self.behaviour_errors)
    }

    /// Registers a component instance on this ECU and wires its runnables.
    ///
    /// # Errors
    ///
    /// Propagates descriptor-validation and registration errors.
    pub fn add_component(
        &mut self,
        descriptor: SwcDescriptor,
        behavior: Box<dyn ComponentBehavior>,
    ) -> Result<SwcId> {
        if self.component_by_name.contains_key(descriptor.name()) {
            return Err(DynarError::duplicate(
                "component instance",
                descriptor.name(),
            ));
        }
        let swc = SwcId::new(self.id, self.next_local);
        self.rte.register_component(swc, &descriptor)?;
        self.next_local += 1;

        let task = self.kernel.add_task(
            TaskConfig::new(
                format!("{}-task", descriptor.name()),
                TaskPriority::new(descriptor.priority()),
            )
            .with_max_activations(16),
        )?;

        // Stage the trigger wiring first: `component` indices must only be
        // committed once the whole descriptor resolved.
        let index = self.components.len();
        let mut staged_periodic = Vec::new();
        let mut staged_data = Vec::new();
        for runnable in descriptor.runnables() {
            match runnable.trigger() {
                Trigger::Periodic(period) => {
                    let period = (*period).max(1);
                    staged_periodic.push(PeriodicRunnable {
                        component: index,
                        runnable: Arc::from(runnable.name()),
                        period,
                        next_due: self.clock.now().advance(period),
                    });
                }
                Trigger::DataReceived(port) => {
                    let port_id = self.rte.port_id(swc, port)?;
                    staged_data.push((port_id, Arc::<str>::from(runnable.name())));
                }
                Trigger::OnDemand => {}
            }
        }
        self.periodic.append(&mut staged_periodic);
        for (port_id, runnable) in staged_data {
            self.data_triggers
                .entry(port_id)
                .or_default()
                .push((index, runnable));
        }

        self.component_of_task.insert(task, index);
        self.component_of_swc.insert(swc, index);
        self.component_by_name
            .insert(descriptor.name().to_owned(), swc);
        self.pending_runnables.push(Vec::new());
        self.components.push(ComponentEntry {
            swc,
            name: descriptor.name().to_owned(),
            task,
            behavior,
        });
        Ok(swc)
    }

    /// Looks up a component instance by name.
    pub fn component_by_name(&self, name: &str) -> Option<SwcId> {
        self.component_by_name.get(name).copied()
    }

    /// Connects a provided port of one local component to a required port of
    /// another.
    ///
    /// # Errors
    ///
    /// Propagates port-resolution and compatibility errors.
    pub fn connect_local(
        &mut self,
        provider: SwcId,
        provider_port: &str,
        requirer: SwcId,
        requirer_port: &str,
    ) -> Result<()> {
        let p = self.rte.port_id(provider, provider_port)?;
        let r = self.rte.port_id(requirer, requirer_port)?;
        self.rte.connect(p, r)
    }

    /// Maps a provided port onto an outgoing frame id.
    ///
    /// # Errors
    ///
    /// Propagates port-resolution and direction errors.
    pub fn map_signal_out(&mut self, swc: SwcId, port: &str, frame: CanId) -> Result<()> {
        let p = self.rte.port_id(swc, port)?;
        self.rte.map_signal_out(p, frame)
    }

    /// Maps an incoming frame id onto a required port.
    ///
    /// # Errors
    ///
    /// Propagates port-resolution and direction errors.
    pub fn map_signal_in(&mut self, frame: CanId, swc: SwcId, port: &str) -> Result<()> {
        let r = self.rte.port_id(swc, port)?;
        self.rte.map_signal_in(frame, r)
    }

    /// Invokes an operation on a provided client–server port of a local
    /// component, dispatching synchronously to its behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown components and propagates
    /// the behaviour's own error.
    pub fn call_operation(
        &mut self,
        server: SwcId,
        port: &str,
        operation: &str,
        argument: Value,
    ) -> Result<Value> {
        let index = *self
            .component_of_swc
            .get(&server)
            .ok_or_else(|| DynarError::not_found("software component", server))?;
        let entry = &mut self.components[index];
        let mut ctx = RteContext::new(&mut self.rte, server);
        entry
            .behavior
            .on_operation(port, operation, argument, &mut ctx)
    }

    /// Explicitly executes an on-demand runnable of a component.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown components and propagates
    /// the behaviour's own error.
    pub fn trigger_runnable(&mut self, swc: SwcId, runnable: &str) -> Result<()> {
        let index = *self
            .component_of_swc
            .get(&swc)
            .ok_or_else(|| DynarError::not_found("software component", swc))?;
        let entry = &mut self.components[index];
        let mut ctx = RteContext::new(&mut self.rte, swc);
        entry.behavior.on_runnable(runnable, &mut ctx)
    }

    /// Delivers a value arriving from the in-vehicle network; the matching
    /// data-received triggers fire on the next [`Ecu::step`].
    pub fn deliver_inbound(&mut self, frame: CanId, value: Value) {
        self.rte.deliver_inbound(frame, value);
    }

    /// Drains the values queued by this ECU for off-ECU transmission.
    pub fn drain_outbound(&mut self) -> Vec<(CanId, Value)> {
        self.rte.drain_outbound()
    }

    /// Drains the outbound values into a caller-owned buffer — the
    /// allocation-free variant of [`Ecu::drain_outbound`] for per-tick
    /// callers.
    pub fn drain_outbound_into(&mut self, into: &mut Vec<(CanId, Value)>) {
        self.rte.drain_outbound_into(into);
    }

    /// Advances the ECU by one tick: start-up on the first call, periodic
    /// trigger evaluation, data-received trigger evaluation and dispatching
    /// of all activated tasks.
    ///
    /// Behaviour errors are recorded in the log and retrievable through
    /// [`Ecu::take_behaviour_errors`]; they do not abort the step.
    ///
    /// # Errors
    ///
    /// Currently always returns `Ok`; the `Result` return type leaves room
    /// for platform-level failures such as kernel exhaustion.
    pub fn step(&mut self) -> Result<()> {
        if !self.started {
            self.started = true;
            for index in 0..self.components.len() {
                let swc = self.components[index].swc;
                let entry = &mut self.components[index];
                let mut ctx = RteContext::new(&mut self.rte, swc);
                if let Err(err) = entry.behavior.on_start(&mut ctx) {
                    self.log.record(
                        self.clock.now(),
                        Severity::Error,
                        "ecu",
                        format!("start-up of {} failed: {err}", entry.name),
                    );
                    self.behaviour_errors
                        .push((swc, "on_start".to_owned(), err));
                }
            }
        }

        let now = self.clock.step();
        self.kernel.advance(now);

        // Periodic triggers: activating a runnable clones an `Arc<str>` into
        // the component's pending vector — no `String` allocation per tick.
        for periodic in &mut self.periodic {
            if periodic.next_due <= now {
                periodic.next_due = periodic.next_due.advance(periodic.period);
                self.pending_runnables[periodic.component].push(Arc::clone(&periodic.runnable));
                let _ = self
                    .kernel
                    .activate(self.components[periodic.component].task);
            }
        }

        self.collect_data_triggers();

        // Dispatch until no task is ready (bounded to avoid livelock).
        for _ in 0..MAX_DISPATCH_ROUNDS {
            let Some(task) = self.kernel.schedule() else {
                break;
            };
            let Some(&index) = self.component_of_task.get(&task) else {
                // A task not owned by any component (user-created); nothing to run.
                self.kernel.terminate(task)?;
                continue;
            };
            let swc = self.components[index].swc;
            // Drain the component's pending runnables through the scratch
            // buffer: the two vectors ping-pong, so neither reallocates in
            // steady state (a runnable may re-trigger its own component; the
            // fresh activations land in the now-empty pending vector exactly
            // as the old remove-then-run flow did).
            let mut scratch = std::mem::take(&mut self.dispatch_scratch);
            debug_assert!(scratch.is_empty());
            std::mem::swap(&mut scratch, &mut self.pending_runnables[index]);
            for runnable in scratch.drain(..) {
                let result = {
                    let entry = &mut self.components[index];
                    let mut ctx = RteContext::new(&mut self.rte, swc);
                    entry.behavior.on_runnable(&runnable, &mut ctx)
                };
                if let Err(err) = result {
                    self.log.record(
                        now,
                        Severity::Error,
                        "ecu",
                        format!(
                            "runnable {runnable} of {} failed: {err}",
                            self.components[index].name
                        ),
                    );
                    self.behaviour_errors
                        .push((swc, runnable.as_ref().to_owned(), err));
                }
            }
            self.dispatch_scratch = scratch;
            self.kernel.terminate(task)?;
            // Runnables may have produced data for other local components.
            self.collect_data_triggers();
        }
        Ok(())
    }

    /// Runs [`Ecu::step`] `ticks` times.
    ///
    /// # Errors
    ///
    /// Propagates the first step error.
    pub fn run(&mut self, ticks: u64) -> Result<()> {
        for _ in 0..ticks {
            self.step()?;
        }
        Ok(())
    }

    fn collect_data_triggers(&mut self) {
        debug_assert!(self.ports_scratch.is_empty());
        self.rte.drain_data_received_into(&mut self.ports_scratch);
        for i in 0..self.ports_scratch.len() {
            let port = self.ports_scratch[i];
            let Some(triggers) = self.data_triggers.get(&port) else {
                continue;
            };
            for (component, runnable) in triggers {
                let pending = &mut self.pending_runnables[*component];
                if !pending.iter().any(|r| **r == **runnable) {
                    pending.push(Arc::clone(runnable));
                }
                let _ = self.kernel.activate(self.components[*component].task);
            }
        }
        self.ports_scratch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{RunnableSpec, SwcDescriptor, Trigger};
    use crate::port::{PortDirection, PortSpec};

    struct Counter {
        writes: i64,
    }

    impl ComponentBehavior for Counter {
        fn on_runnable(&mut self, _r: &str, ctx: &mut RteContext<'_>) -> Result<()> {
            self.writes += 1;
            ctx.write("out", Value::I64(self.writes))
        }
    }

    struct Echo;

    impl ComponentBehavior for Echo {
        fn on_runnable(&mut self, _r: &str, ctx: &mut RteContext<'_>) -> Result<()> {
            if let Some(value) = ctx.receive("in")? {
                ctx.write("out", value)?;
            }
            Ok(())
        }
    }

    struct Silent;

    impl ComponentBehavior for Silent {
        fn on_runnable(&mut self, _r: &str, _ctx: &mut RteContext<'_>) -> Result<()> {
            Ok(())
        }
    }

    fn counter_descriptor(period: u64) -> SwcDescriptor {
        SwcDescriptor::new("counter")
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided))
            .with_runnable(RunnableSpec::new("tick", Trigger::Periodic(period)))
    }

    #[test]
    fn periodic_runnable_fires_at_its_period() {
        let mut ecu = Ecu::new(EcuId::new(1));
        let counter = ecu
            .add_component(counter_descriptor(10), Box::new(Counter { writes: 0 }))
            .unwrap();
        ecu.run(35).unwrap();
        assert_eq!(
            ecu.rte().read_port_by_name(counter, "out").unwrap(),
            Value::I64(3),
            "3 periods fit in 35 ticks"
        );
    }

    #[test]
    fn data_received_trigger_chains_components() {
        let mut ecu = Ecu::new(EcuId::new(1));
        let counter = ecu
            .add_component(counter_descriptor(5), Box::new(Counter { writes: 0 }))
            .unwrap();
        let echo = ecu
            .add_component(
                SwcDescriptor::new("echo")
                    .with_port(PortSpec::queued("in", PortDirection::Required, 8))
                    .with_port(PortSpec::sender_receiver("out", PortDirection::Provided))
                    .with_runnable(RunnableSpec::new("fwd", Trigger::DataReceived("in".into()))),
                Box::new(Echo),
            )
            .unwrap();
        ecu.connect_local(counter, "out", echo, "in").unwrap();
        ecu.run(6).unwrap();
        assert_eq!(
            ecu.rte().read_port_by_name(echo, "out").unwrap(),
            Value::I64(1),
            "echo forwarded in the same step the counter produced"
        );
    }

    #[test]
    fn duplicate_component_names_are_rejected() {
        let mut ecu = Ecu::new(EcuId::new(1));
        ecu.add_component(SwcDescriptor::new("x"), Box::new(Silent))
            .unwrap();
        assert!(ecu
            .add_component(SwcDescriptor::new("x"), Box::new(Silent))
            .is_err());
    }

    #[test]
    fn behaviour_errors_are_recorded_not_fatal() {
        struct Failing;
        impl ComponentBehavior for Failing {
            fn on_runnable(&mut self, _r: &str, _ctx: &mut RteContext<'_>) -> Result<()> {
                Err(DynarError::VmFault("boom".into()))
            }
        }
        let mut ecu = Ecu::new(EcuId::new(1));
        ecu.add_component(
            SwcDescriptor::new("failing")
                .with_runnable(RunnableSpec::new("r", Trigger::Periodic(1))),
            Box::new(Failing),
        )
        .unwrap();
        ecu.run(3).unwrap();
        let errors = ecu.take_behaviour_errors();
        assert_eq!(errors.len(), 3);
        assert!(ecu.log().count_at_least(Severity::Error) >= 3);
        assert!(ecu.take_behaviour_errors().is_empty(), "drained");
    }

    #[test]
    fn inbound_frames_trigger_data_received_runnables() {
        let mut ecu = Ecu::new(EcuId::new(2));
        let echo = ecu
            .add_component(
                SwcDescriptor::new("echo")
                    .with_port(PortSpec::queued("in", PortDirection::Required, 8))
                    .with_port(PortSpec::sender_receiver("out", PortDirection::Provided))
                    .with_runnable(RunnableSpec::new("fwd", Trigger::DataReceived("in".into()))),
                Box::new(Echo),
            )
            .unwrap();
        let frame = CanId::new(0x77).unwrap();
        ecu.map_signal_in(frame, echo, "in").unwrap();
        ecu.deliver_inbound(frame, Value::Text("ping".into()));
        ecu.step().unwrap();
        assert_eq!(
            ecu.rte().read_port_by_name(echo, "out").unwrap(),
            Value::Text("ping".into())
        );
    }

    #[test]
    fn outbound_mapping_collects_signals() {
        let mut ecu = Ecu::new(EcuId::new(1));
        let counter = ecu
            .add_component(counter_descriptor(1), Box::new(Counter { writes: 0 }))
            .unwrap();
        let frame = CanId::new(0x55).unwrap();
        ecu.map_signal_out(counter, "out", frame).unwrap();
        ecu.run(3).unwrap();
        let outbound = ecu.drain_outbound();
        assert_eq!(outbound.len(), 3);
        assert!(outbound.iter().all(|(id, _)| *id == frame));
    }

    #[test]
    fn on_start_runs_once() {
        struct Starter {
            starts: i64,
        }
        impl ComponentBehavior for Starter {
            fn on_start(&mut self, ctx: &mut RteContext<'_>) -> Result<()> {
                self.starts += 1;
                ctx.write("out", Value::I64(self.starts))
            }
            fn on_runnable(&mut self, _r: &str, _ctx: &mut RteContext<'_>) -> Result<()> {
                Ok(())
            }
        }
        let mut ecu = Ecu::new(EcuId::new(1));
        let swc = ecu
            .add_component(
                SwcDescriptor::new("starter")
                    .with_port(PortSpec::sender_receiver("out", PortDirection::Provided)),
                Box::new(Starter { starts: 0 }),
            )
            .unwrap();
        ecu.run(5).unwrap();
        assert_eq!(
            ecu.rte().read_port_by_name(swc, "out").unwrap(),
            Value::I64(1)
        );
    }

    #[test]
    fn call_operation_dispatches_to_behaviour() {
        struct Server;
        impl ComponentBehavior for Server {
            fn on_runnable(&mut self, _r: &str, _ctx: &mut RteContext<'_>) -> Result<()> {
                Ok(())
            }
            fn on_operation(
                &mut self,
                port: &str,
                operation: &str,
                argument: Value,
                _ctx: &mut RteContext<'_>,
            ) -> Result<Value> {
                assert_eq!(port, "diag");
                match operation {
                    "double" => Ok(Value::I64(argument.expect_i64()? * 2)),
                    other => Err(DynarError::not_found("operation", other)),
                }
            }
        }
        let mut ecu = Ecu::new(EcuId::new(1));
        let server = ecu
            .add_component(
                SwcDescriptor::new("server").with_port(PortSpec::client_server(
                    "diag",
                    PortDirection::Provided,
                    ["double"],
                )),
                Box::new(Server),
            )
            .unwrap();
        assert_eq!(
            ecu.call_operation(server, "diag", "double", Value::I64(21))
                .unwrap(),
            Value::I64(42)
        );
        assert!(ecu
            .call_operation(server, "diag", "halve", Value::I64(2))
            .is_err());
    }

    #[test]
    fn trigger_runnable_runs_on_demand() {
        let mut ecu = Ecu::new(EcuId::new(1));
        let counter = ecu
            .add_component(
                SwcDescriptor::new("ondemand")
                    .with_port(PortSpec::sender_receiver("out", PortDirection::Provided))
                    .with_runnable(RunnableSpec::new("once", Trigger::OnDemand)),
                Box::new(Counter { writes: 0 }),
            )
            .unwrap();
        ecu.run(10).unwrap();
        assert!(ecu
            .rte()
            .read_port_by_name(counter, "out")
            .unwrap()
            .is_void());
        ecu.trigger_runnable(counter, "once").unwrap();
        assert_eq!(
            ecu.rte().read_port_by_name(counter, "out").unwrap(),
            Value::I64(1)
        );
    }

    #[test]
    fn component_lookup_by_name() {
        let mut ecu = Ecu::new(EcuId::new(3));
        let swc = ecu
            .add_component(SwcDescriptor::new("abc"), Box::new(Silent))
            .unwrap();
        assert_eq!(ecu.component_by_name("abc"), Some(swc));
        assert_eq!(ecu.component_by_name("zzz"), None);
        assert_eq!(ecu.id(), EcuId::new(3));
    }
}
