//! Software component descriptors, runnables and the behaviour trait.

use std::fmt;

use serde::{Deserialize, Serialize};

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{PortId, SwcId};
use dynar_foundation::value::Value;

use crate::port::PortSpec;
use crate::rte::Rte;

/// What causes a runnable to execute.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Trigger {
    /// The runnable executes every `period` ticks.
    Periodic(u64),
    /// The runnable executes when new data arrives on the named required port.
    DataReceived(String),
    /// The runnable only executes when explicitly requested by the platform
    /// (used for start-up and management runnables).
    OnDemand,
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::Periodic(p) => write!(f, "periodic({p})"),
            Trigger::DataReceived(port) => write!(f, "data-received({port})"),
            Trigger::OnDemand => f.write_str("on-demand"),
        }
    }
}

/// Static description of one runnable entity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunnableSpec {
    name: String,
    trigger: Trigger,
}

impl RunnableSpec {
    /// Creates a runnable with the given name and trigger.
    pub fn new(name: impl Into<String>, trigger: Trigger) -> Self {
        RunnableSpec {
            name: name.into(),
            trigger,
        }
    }

    /// The runnable name, unique within its SW-C.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trigger causing the runnable to execute.
    pub fn trigger(&self) -> &Trigger {
        &self.trigger
    }
}

/// Static description of one software component type.
///
/// # Example
/// ```
/// use dynar_rte::component::{RunnableSpec, SwcDescriptor, Trigger};
/// use dynar_rte::port::{PortDirection, PortSpec};
///
/// let desc = SwcDescriptor::new("engine-controller")
///     .with_priority(8)
///     .with_port(PortSpec::sender_receiver("rpm", PortDirection::Required))
///     .with_runnable(RunnableSpec::new("ctl", Trigger::Periodic(10)));
/// assert_eq!(desc.name(), "engine-controller");
/// assert_eq!(desc.ports().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwcDescriptor {
    name: String,
    ports: Vec<PortSpec>,
    runnables: Vec<RunnableSpec>,
    priority: u8,
}

impl SwcDescriptor {
    /// Creates a descriptor with no ports and default task priority 1.
    pub fn new(name: impl Into<String>) -> Self {
        SwcDescriptor {
            name: name.into(),
            ports: Vec::new(),
            runnables: Vec::new(),
            priority: 1,
        }
    }

    /// Adds a port to the descriptor.
    #[must_use]
    pub fn with_port(mut self, port: PortSpec) -> Self {
        self.ports.push(port);
        self
    }

    /// Adds a runnable to the descriptor.
    #[must_use]
    pub fn with_runnable(mut self, runnable: RunnableSpec) -> Self {
        self.runnables.push(runnable);
        self
    }

    /// Sets the priority of the OS task the component's runnables map to.
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// The component type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared ports.
    pub fn ports(&self) -> &[PortSpec] {
        &self.ports
    }

    /// The declared runnables.
    pub fn runnables(&self) -> &[RunnableSpec] {
        &self.runnables
    }

    /// The task priority of the component.
    pub fn priority(&self) -> u8 {
        self.priority
    }

    /// Looks up a port spec by name.
    pub fn port(&self, name: &str) -> Option<&PortSpec> {
        self.ports.iter().find(|p| p.name() == name)
    }

    /// Validates internal consistency: unique port and runnable names, and
    /// data-received triggers referring to declared required ports.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::InvalidConfiguration`] describing the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<()> {
        for (i, port) in self.ports.iter().enumerate() {
            if self.ports[..i].iter().any(|p| p.name() == port.name()) {
                return Err(DynarError::invalid_config(format!(
                    "component {} declares port {} twice",
                    self.name,
                    port.name()
                )));
            }
        }
        for (i, runnable) in self.runnables.iter().enumerate() {
            if self.runnables[..i]
                .iter()
                .any(|r| r.name() == runnable.name())
            {
                return Err(DynarError::invalid_config(format!(
                    "component {} declares runnable {} twice",
                    self.name,
                    runnable.name()
                )));
            }
            if let Trigger::DataReceived(port) = runnable.trigger() {
                if self.port(port).is_none() {
                    return Err(DynarError::invalid_config(format!(
                        "runnable {} is triggered by unknown port {port}",
                        runnable.name()
                    )));
                }
            }
        }
        Ok(())
    }
}

/// The behaviour of a software component instance.
///
/// Implementations only ever touch their own ports through the [`RteContext`]
/// handed to them — the AUTOSAR rule that makes SW-Cs relocatable, and the
/// rule the plug-in concept exploits.
pub trait ComponentBehavior: Send {
    /// Called once when the ECU starts, before any runnable executes.
    ///
    /// # Errors
    ///
    /// Implementations may propagate any [`DynarError`]; the ECU records it
    /// and continues starting other components.
    fn on_start(&mut self, ctx: &mut RteContext<'_>) -> Result<()> {
        let _ = ctx;
        Ok(())
    }

    /// Called when one of the component's runnables is triggered.
    ///
    /// # Errors
    ///
    /// Implementations may propagate any [`DynarError`]; the ECU records it
    /// and continues executing other runnables.
    fn on_runnable(&mut self, runnable: &str, ctx: &mut RteContext<'_>) -> Result<()>;

    /// Called when a client invokes an operation on one of the component's
    /// provided client–server ports.
    ///
    /// # Errors
    ///
    /// The default implementation rejects every operation with
    /// [`DynarError::NotFound`].
    fn on_operation(
        &mut self,
        port: &str,
        operation: &str,
        argument: Value,
        ctx: &mut RteContext<'_>,
    ) -> Result<Value> {
        let _ = (argument, ctx);
        Err(DynarError::not_found(
            "operation",
            format!("{port}.{operation}"),
        ))
    }
}

/// The per-invocation view a component behaviour gets of the RTE: access to
/// the ports of exactly one SW-C instance.
#[derive(Debug)]
pub struct RteContext<'a> {
    rte: &'a mut Rte,
    swc: SwcId,
}

impl<'a> RteContext<'a> {
    /// Creates a context scoped to `swc`.  Normally called by the ECU's
    /// scheduler, and by the plug-in SW-C when it re-enters the RTE.
    pub fn new(rte: &'a mut Rte, swc: SwcId) -> Self {
        RteContext { rte, swc }
    }

    /// The SW-C this context is scoped to.
    pub fn swc(&self) -> SwcId {
        self.swc
    }

    /// Writes a value on one of the component's provided ports
    /// (`Rte_Write`).
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port and
    /// [`DynarError::PortDirection`] when writing on a required port.
    pub fn write(&mut self, port: &str, value: Value) -> Result<()> {
        let port_id = self.rte.port_id(self.swc, port)?;
        self.rte.write_port(port_id, value)
    }

    /// Reads the latest value of one of the component's required ports
    /// without consuming it (`Rte_Read`).
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port.
    pub fn read(&mut self, port: &str) -> Result<Value> {
        let port_id = self.rte.port_id(self.swc, port)?;
        self.rte.read_port(port_id)
    }

    /// Consumes the next value of one of the component's required ports
    /// (`Rte_Receive`), or `None` when nothing new arrived.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port and
    /// [`DynarError::PortDirection`] when receiving on a provided port.
    pub fn receive(&mut self, port: &str) -> Result<Option<Value>> {
        let port_id = self.rte.port_id(self.swc, port)?;
        self.rte.take_port(port_id)
    }

    /// Number of values waiting on one of the component's ports.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port.
    pub fn pending(&mut self, port: &str) -> Result<usize> {
        let port_id = self.rte.port_id(self.swc, port)?;
        self.rte.pending_on(port_id)
    }

    // ------------------------------------------------------------------
    // Pre-resolved port access
    //
    // The name-based calls above resolve `port name -> PortId` on every
    // invocation.  Behaviours on the per-tick hot path (the plug-in SW-C's
    // PIRTE pass, the ECM gateway) resolve their ports once and then use the
    // id-based variants, skipping the name hash entirely.
    // ------------------------------------------------------------------

    /// Resolves one of the component's ports to its stable [`PortId`], for
    /// use with the `*_by_id` calls.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for an unknown port name.
    pub fn port_id(&self, port: &str) -> Result<PortId> {
        self.rte.port_id(self.swc, port)
    }

    /// Writes a value on a pre-resolved provided port (`Rte_Write`).
    ///
    /// # Errors
    ///
    /// As [`RteContext::write`].
    pub fn write_by_id(&mut self, port: PortId, value: Value) -> Result<()> {
        self.rte.write_port(port, value)
    }

    /// Consumes the next value of a pre-resolved required port
    /// (`Rte_Receive`).
    ///
    /// # Errors
    ///
    /// As [`RteContext::receive`].
    pub fn receive_by_id(&mut self, port: PortId) -> Result<Option<Value>> {
        self.rte.take_port(port)
    }

    /// Number of values waiting on a pre-resolved port.
    ///
    /// # Errors
    ///
    /// As [`RteContext::pending`].
    pub fn pending_by_id(&mut self, port: PortId) -> Result<usize> {
        self.rte.pending_on(port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::PortDirection;

    fn descriptor() -> SwcDescriptor {
        SwcDescriptor::new("c")
            .with_port(PortSpec::sender_receiver("in", PortDirection::Required))
            .with_port(PortSpec::sender_receiver("out", PortDirection::Provided))
            .with_runnable(RunnableSpec::new("step", Trigger::Periodic(5)))
            .with_runnable(RunnableSpec::new("rx", Trigger::DataReceived("in".into())))
    }

    #[test]
    fn valid_descriptor_passes_validation() {
        assert!(descriptor().validate().is_ok());
    }

    #[test]
    fn duplicate_port_names_are_rejected() {
        let desc = descriptor().with_port(PortSpec::sender_receiver("in", PortDirection::Required));
        assert!(desc.validate().is_err());
    }

    #[test]
    fn duplicate_runnable_names_are_rejected() {
        let desc = descriptor().with_runnable(RunnableSpec::new("step", Trigger::OnDemand));
        assert!(desc.validate().is_err());
    }

    #[test]
    fn data_received_trigger_must_reference_existing_port() {
        let desc = SwcDescriptor::new("c").with_runnable(RunnableSpec::new(
            "rx",
            Trigger::DataReceived("ghost".into()),
        ));
        assert!(desc.validate().is_err());
    }

    #[test]
    fn port_lookup_by_name() {
        let desc = descriptor();
        assert!(desc.port("out").is_some());
        assert!(desc.port("nope").is_none());
        assert_eq!(desc.priority(), 1);
        assert_eq!(desc.runnables().len(), 2);
    }

    #[test]
    fn trigger_display() {
        assert_eq!(Trigger::Periodic(10).to_string(), "periodic(10)");
        assert_eq!(
            Trigger::DataReceived("in".into()).to_string(),
            "data-received(in)"
        );
        assert_eq!(Trigger::OnDemand.to_string(), "on-demand");
    }
}
