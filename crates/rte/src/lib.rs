//! The AUTOSAR runtime environment (RTE) and virtual function bus (VFB).
//!
//! The RTE is the standardized middleware between application software
//! components (SW-Cs) and the basic software (paper §2).  SW-Cs declare
//! *provided* and *required* ports, their internal behaviour is packaged into
//! *runnables* mapped onto OS tasks, and the RTE routes signals between ports
//! — locally when both SW-Cs share an ECU, over the in-vehicle network when
//! they do not.  Application code only ever talks to its own ports, which is
//! precisely the property the dynamic component model of the paper relies on:
//! a plug-in SW-C looks like any other SW-C to the RTE.
//!
//! The crate provides:
//!
//! * [`port`] — port specifications, directions, interfaces and buffers;
//! * [`component`] — SW-C descriptors, runnables, triggers and the
//!   [`component::ComponentBehavior`] trait that application code implements;
//! * [`rte`] — the per-ECU RTE engine: local connections, signal routing,
//!   data-received triggering;
//! * [`com_mapping`] — the mapping of SW-C signals onto bus frames, including
//!   a value codec and an ISO-TP-like segmentation layer for payloads larger
//!   than one frame;
//! * [`ecu`] — one simulated ECU: an OSEK kernel, an RTE instance and the
//!   task/alarm wiring that triggers runnables.
//!
//! # Example
//!
//! ```
//! use dynar_foundation::value::Value;
//! use dynar_rte::component::{ComponentBehavior, RteContext, SwcDescriptor, RunnableSpec, Trigger};
//! use dynar_rte::ecu::Ecu;
//! use dynar_rte::port::{PortDirection, PortSpec};
//! use dynar_foundation::ids::EcuId;
//!
//! struct Sender;
//! impl ComponentBehavior for Sender {
//!     fn on_runnable(&mut self, _r: &str, ctx: &mut RteContext<'_>) -> dynar_foundation::error::Result<()> {
//!         ctx.write("out", Value::I64(42))
//!     }
//! }
//!
//! struct Receiver;
//! impl ComponentBehavior for Receiver {
//!     fn on_runnable(&mut self, _r: &str, _ctx: &mut RteContext<'_>) -> dynar_foundation::error::Result<()> {
//!         Ok(())
//!     }
//! }
//!
//! # fn main() -> Result<(), dynar_foundation::error::DynarError> {
//! let mut ecu = Ecu::new(EcuId::new(1));
//! let sender = ecu.add_component(
//!     SwcDescriptor::new("sender")
//!         .with_port(PortSpec::sender_receiver("out", PortDirection::Provided))
//!         .with_runnable(RunnableSpec::new("tx", Trigger::Periodic(10))),
//!     Box::new(Sender),
//! )?;
//! let receiver = ecu.add_component(
//!     SwcDescriptor::new("receiver")
//!         .with_port(PortSpec::sender_receiver("in", PortDirection::Required)),
//!     Box::new(Receiver),
//! )?;
//! ecu.connect_local(sender, "out", receiver, "in")?;
//!
//! for _ in 0..11 {
//!     ecu.step()?;
//! }
//! assert_eq!(ecu.rte().read_port_by_name(receiver, "in")?, Value::I64(42));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod com_mapping;
pub mod component;
pub mod ecu;
pub mod port;
pub mod rte;

pub use com_mapping::{decode_value, encode_value, SystemMapping};
pub use component::{ComponentBehavior, RteContext, RunnableSpec, SwcDescriptor, Trigger};
pub use ecu::Ecu;
pub use port::{PortDirection, PortInterface, PortSpec};
pub use rte::Rte;
