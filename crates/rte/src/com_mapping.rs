//! Mapping of SW-C signals onto in-vehicle network frames.
//!
//! Three pieces live here:
//!
//! * a compact binary codec for [`Value`]s ([`encode_value`] /
//!   [`decode_value`]), used whenever a signal leaves its ECU;
//! * an ISO-TP-like segmentation layer ([`Segmenter`] / [`Reassembler`]) so
//!   that payloads larger than one frame — plug-in installation packages in
//!   particular — can cross the bus;
//! * the system-level description of which signal travels on which frame id
//!   between which ECUs ([`SystemMapping`]), the information an AUTOSAR
//!   system description would contain.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dynar_bus::frame::{CanId, Frame, MAX_PAYLOAD};
use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::EcuId;

// ---------------------------------------------------------------------------
// Value codec (shared with the rest of the stack via dynar-foundation)
// ---------------------------------------------------------------------------

pub use dynar_foundation::codec::{decode_value, encode_value};

// ---------------------------------------------------------------------------
// Segmentation
// ---------------------------------------------------------------------------

/// Bytes of segmentation header per frame: message id, chunk index and chunk
/// count, two bytes each.
pub const SEGMENT_HEADER: usize = 6;

/// Usable payload bytes per frame after the segmentation header.
pub const SEGMENT_DATA: usize = MAX_PAYLOAD - SEGMENT_HEADER;

/// Splits arbitrarily long payloads into bus frames.
///
/// # Example
/// ```
/// use dynar_bus::frame::CanId;
/// use dynar_rte::com_mapping::{Reassembler, Segmenter};
///
/// # fn main() -> Result<(), dynar_foundation::error::DynarError> {
/// let id = CanId::new(0x200)?;
/// let payload: Vec<u8> = (0..500u32).map(|i| i as u8).collect();
/// let mut segmenter = Segmenter::new();
/// let mut reassembler = Reassembler::new();
///
/// let mut result = None;
/// for frame in segmenter.segment(id, &payload)? {
///     result = reassembler.accept(&frame)?;
/// }
/// assert_eq!(result, Some((id, payload)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Segmenter {
    next_message: HashMap<CanId, u16>,
}

impl Segmenter {
    /// Creates a segmenter.
    pub fn new() -> Self {
        Segmenter::default()
    }

    /// Splits `payload` into frames carrying the given identifier.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::InvalidConfiguration`] if the payload would need
    /// more than `u16::MAX` chunks.
    pub fn segment(&mut self, id: CanId, payload: &[u8]) -> Result<Vec<Frame>> {
        let chunk_count = payload.len().div_ceil(SEGMENT_DATA).max(1);
        if chunk_count > u16::MAX as usize {
            return Err(DynarError::invalid_config(format!(
                "payload of {} bytes needs {chunk_count} chunks, more than a u16 can number",
                payload.len()
            )));
        }
        let message = {
            let counter = self.next_message.entry(id).or_insert(0);
            let current = *counter;
            *counter = counter.wrapping_add(1);
            current
        };
        let mut frames = Vec::with_capacity(chunk_count);
        for chunk_index in 0..chunk_count {
            let start = chunk_index * SEGMENT_DATA;
            let end = (start + SEGMENT_DATA).min(payload.len());
            let mut data = Vec::with_capacity(SEGMENT_HEADER + (end - start));
            data.extend_from_slice(&message.to_le_bytes());
            data.extend_from_slice(&(chunk_index as u16).to_le_bytes());
            data.extend_from_slice(&(chunk_count as u16).to_le_bytes());
            data.extend_from_slice(&payload[start..end]);
            frames.push(Frame::new(id, data)?);
        }
        Ok(frames)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PartialMessage {
    message: u16,
    total: u16,
    chunks: Vec<Option<Vec<u8>>>,
}

/// Reassembles frames produced by a [`Segmenter`] back into payloads.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Reassembler {
    in_progress: HashMap<CanId, PartialMessage>,
    /// Messages abandoned because a newer message started before they
    /// completed (typically caused by dropped frames).
    pub incomplete_dropped: u64,
}

impl Reassembler {
    /// Creates a reassembler.
    pub fn new() -> Self {
        Reassembler::default()
    }

    /// Accepts one frame.  Returns the complete payload once the last chunk
    /// of a message has arrived.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for frames that do not carry
    /// a valid segmentation header.
    pub fn accept(&mut self, frame: &Frame) -> Result<Option<(CanId, Vec<u8>)>> {
        let payload = frame.payload();
        if payload.len() < SEGMENT_HEADER {
            return Err(DynarError::ProtocolViolation(
                "frame shorter than the segmentation header".into(),
            ));
        }
        let message = u16::from_le_bytes([payload[0], payload[1]]);
        let index = u16::from_le_bytes([payload[2], payload[3]]);
        let total = u16::from_le_bytes([payload[4], payload[5]]);
        if total == 0 || index >= total {
            return Err(DynarError::ProtocolViolation(format!(
                "chunk index {index} out of range for {total} chunks"
            )));
        }
        let data = payload[SEGMENT_HEADER..].to_vec();

        let entry = self
            .in_progress
            .entry(frame.id())
            .or_insert_with(|| PartialMessage {
                message,
                total,
                chunks: vec![None; total as usize],
            });
        if entry.message != message || entry.total != total {
            self.incomplete_dropped += 1;
            *entry = PartialMessage {
                message,
                total,
                chunks: vec![None; total as usize],
            };
        }
        entry.chunks[index as usize] = Some(data);

        if entry.chunks.iter().all(Option::is_some) {
            let complete = self
                .in_progress
                .remove(&frame.id())
                .expect("entry present, just updated");
            let mut payload = Vec::new();
            for chunk in complete.chunks.into_iter().flatten() {
                payload.extend_from_slice(&chunk);
            }
            Ok(Some((frame.id(), payload)))
        } else {
            Ok(None)
        }
    }
}

// ---------------------------------------------------------------------------
// System mapping
// ---------------------------------------------------------------------------

/// One end of a signal route: a port on a named component of an ECU.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    /// Hosting ECU.
    pub ecu: EcuId,
    /// Component instance name on that ECU.
    pub component: String,
    /// Port name on that component.
    pub port: String,
}

impl Endpoint {
    /// Creates an endpoint description.
    pub fn new(ecu: EcuId, component: impl Into<String>, port: impl Into<String>) -> Self {
        Endpoint {
            ecu,
            component: component.into(),
            port: port.into(),
        }
    }
}

/// One system-level signal route: a sender endpoint, the frame id the signal
/// travels on, and the receiving endpoints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalRoute {
    /// Human-readable signal name.
    pub name: String,
    /// Frame id carrying the signal on the bus.
    pub frame: CanId,
    /// The producing endpoint.
    pub sender: Endpoint,
    /// The consuming endpoints.
    pub receivers: Vec<Endpoint>,
}

/// The inter-ECU communication matrix of one vehicle.
///
/// # Example
/// ```
/// use dynar_bus::frame::CanId;
/// use dynar_foundation::ids::EcuId;
/// use dynar_rte::com_mapping::{Endpoint, SystemMapping};
///
/// # fn main() -> Result<(), dynar_foundation::error::DynarError> {
/// let mut mapping = SystemMapping::new();
/// mapping.add_route(
///     "plugin-data",
///     CanId::new(0x210)?,
///     Endpoint::new(EcuId::new(1), "plugin-swc-1", "S0"),
///     vec![Endpoint::new(EcuId::new(2), "plugin-swc-2", "S3")],
/// )?;
/// assert_eq!(mapping.routes().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemMapping {
    routes: Vec<SignalRoute>,
}

impl SystemMapping {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        SystemMapping::default()
    }

    /// Adds a route.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::Duplicate`] if the frame id or signal name is
    /// already used by another route.
    pub fn add_route(
        &mut self,
        name: impl Into<String>,
        frame: CanId,
        sender: Endpoint,
        receivers: Vec<Endpoint>,
    ) -> Result<()> {
        let name = name.into();
        if self.routes.iter().any(|r| r.frame == frame) {
            return Err(DynarError::duplicate("frame id", frame));
        }
        if self.routes.iter().any(|r| r.name == name) {
            return Err(DynarError::duplicate("signal route", &name));
        }
        self.routes.push(SignalRoute {
            name,
            frame,
            sender,
            receivers,
        });
        Ok(())
    }

    /// All configured routes.
    pub fn routes(&self) -> &[SignalRoute] {
        &self.routes
    }

    /// Looks up a route by signal name.
    pub fn route(&self, name: &str) -> Option<&SignalRoute> {
        self.routes.iter().find(|r| r.name == name)
    }

    /// The ECUs that appear anywhere in the mapping.
    pub fn ecus(&self) -> Vec<EcuId> {
        let mut ecus: Vec<EcuId> = self
            .routes
            .iter()
            .flat_map(|r| std::iter::once(r.sender.ecu).chain(r.receivers.iter().map(|e| e.ecu)))
            .collect();
        ecus.sort();
        ecus.dedup();
        ecus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_payload_fits_one_frame() {
        let mut seg = Segmenter::new();
        let id = CanId::new(0x1).unwrap();
        let frames = seg.segment(id, b"hi").unwrap();
        assert_eq!(frames.len(), 1);
        let mut re = Reassembler::new();
        assert_eq!(re.accept(&frames[0]).unwrap(), Some((id, b"hi".to_vec())));
    }

    #[test]
    fn empty_payload_round_trips() {
        let mut seg = Segmenter::new();
        let id = CanId::new(0x2).unwrap();
        let frames = seg.segment(id, &[]).unwrap();
        assert_eq!(frames.len(), 1);
        let mut re = Reassembler::new();
        assert_eq!(re.accept(&frames[0]).unwrap(), Some((id, Vec::new())));
    }

    #[test]
    fn large_payload_round_trips() {
        let mut seg = Segmenter::new();
        let mut re = Reassembler::new();
        let id = CanId::new(0x3).unwrap();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let frames = seg.segment(id, &payload).unwrap();
        assert!(frames.len() > 1);
        let mut result = None;
        for frame in &frames {
            result = re.accept(frame).unwrap();
        }
        assert_eq!(result, Some((id, payload)));
    }

    #[test]
    fn interleaved_streams_on_different_ids_do_not_mix() {
        let mut seg = Segmenter::new();
        let mut re = Reassembler::new();
        let a = CanId::new(0xA).unwrap();
        let b = CanId::new(0xB).unwrap();
        let pa: Vec<u8> = vec![1; 200];
        let pb: Vec<u8> = vec![2; 200];
        let fa = seg.segment(a, &pa).unwrap();
        let fb = seg.segment(b, &pb).unwrap();
        let mut out = Vec::new();
        for (x, y) in fa.iter().zip(fb.iter()) {
            if let Some(done) = re.accept(x).unwrap() {
                out.push(done);
            }
            if let Some(done) = re.accept(y).unwrap() {
                out.push(done);
            }
        }
        assert_eq!(out, vec![(a, pa), (b, pb)]);
    }

    #[test]
    fn lost_chunk_drops_stale_message_when_next_starts() {
        let mut seg = Segmenter::new();
        let mut re = Reassembler::new();
        let id = CanId::new(0xC).unwrap();
        let first = seg.segment(id, &[1; 200]).unwrap();
        let second = seg.segment(id, &[2; 30]).unwrap();
        // Deliver only the first chunk of the first message, then the second
        // message in full.
        assert_eq!(re.accept(&first[0]).unwrap(), None);
        let done = re.accept(&second[0]).unwrap();
        assert_eq!(done, Some((id, vec![2; 30])));
        assert_eq!(re.incomplete_dropped, 1);
    }

    #[test]
    fn malformed_segment_headers_are_rejected() {
        let mut re = Reassembler::new();
        let id = CanId::new(0xD).unwrap();
        let short = Frame::new(id, vec![1, 2]).unwrap();
        assert!(re.accept(&short).is_err());
        // total = 0 is invalid.
        let bad = Frame::new(id, vec![0, 0, 0, 0, 0, 0, 1]).unwrap();
        assert!(re.accept(&bad).is_err());
    }

    #[test]
    fn system_mapping_rejects_duplicates() {
        let mut mapping = SystemMapping::new();
        let frame = CanId::new(0x100).unwrap();
        let sender = Endpoint::new(EcuId::new(1), "a", "out");
        mapping
            .add_route("s1", frame, sender.clone(), vec![])
            .unwrap();
        assert!(mapping
            .add_route("s2", frame, sender.clone(), vec![])
            .is_err());
        assert!(mapping
            .add_route("s1", CanId::new(0x101).unwrap(), sender, vec![])
            .is_err());
    }

    #[test]
    fn system_mapping_lists_ecus() {
        let mut mapping = SystemMapping::new();
        mapping
            .add_route(
                "s",
                CanId::new(0x1).unwrap(),
                Endpoint::new(EcuId::new(2), "a", "out"),
                vec![
                    Endpoint::new(EcuId::new(1), "b", "in"),
                    Endpoint::new(EcuId::new(2), "c", "in"),
                ],
            )
            .unwrap();
        assert_eq!(mapping.ecus(), vec![EcuId::new(1), EcuId::new(2)]);
        assert!(mapping.route("s").is_some());
        assert!(mapping.route("t").is_none());
    }
}
