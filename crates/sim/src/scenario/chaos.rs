//! The chaos scenario: the fleet scenario run over a *lossy* federation
//! link, exercising the reliability plane end to end.
//!
//! The scenario drives install → update (uninstall + reinstall) waves across
//! a fleet whose external transport loses 1–20 % of all messages, adds
//! latency jitter, and suffers a temporary partition between the trusted
//! server and part of the fleet.  It asserts the properties the federation
//! reliability plane guarantees:
//!
//! * **Convergence** — every management operation ends `Installed`,
//!   `NotInstalled` (after an uninstall) or typed-`Failed` within the
//!   server's retry horizon; nothing stays `Pending` forever.
//! * **Idempotence** — retransmitted installs are deduplicated at the ECM
//!   gateway: no PIRTE ever sees a duplicate operation
//!   (`rejected_operations == 0`, plug-in counts never exceed one per app).
//! * **Conservation** — the transport accounts for every message at every
//!   tick: `sent == delivered + lost + dropped (+ in-flight)`.

use dynar_fes::transport::{LinkFault, TransportConfig, TransportStats};
use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{AppId, VehicleId};
use dynar_foundation::time::Tick;
use dynar_server::server::{DeploymentStatus, RetryPolicy};

use crate::scenario::fleet::{FleetScenario, FleetScenarioConfig, APP_TELEMETRY, APP_TELEMETRY_V2};

/// A temporary partition between the trusted server and part of the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Fleet tick at which the partition starts.
    pub start_tick: u64,
    /// How long the partition lasts before it heals.
    pub duration_ticks: u64,
    /// How many vehicles (the first `n` in registration order) are cut off.
    pub vehicles: usize,
}

/// How the chaos scenario is sized and how hostile its transport is.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Number of vehicles in the fleet.
    pub vehicles: usize,
    /// Worker ECUs per vehicle.
    pub workers_per_vehicle: u16,
    /// Symmetric loss probability of the external transport (`0.01..=0.20`
    /// is the range the scenario is designed for).
    pub loss_probability: f64,
    /// Uplink-only loss override (asymmetric loss); `None` keeps the
    /// symmetric probability.
    pub uplink_loss_probability: Option<f64>,
    /// Base delivery latency of the external transport.
    pub latency_ticks: u64,
    /// Per-link latency jitter in ticks (FIFO order is preserved).
    pub jitter_ticks: u64,
    /// Seed of the transport's fault models.
    pub seed: u64,
    /// The temporary partition injected while the first wave is in flight.
    pub partition: Option<PartitionPlan>,
    /// Server-side retransmission policy.
    pub retry: RetryPolicy,
    /// Convergence horizon per wave, in ticks.
    pub max_ticks_per_wave: u64,
    /// Server shard count (1 = serial fleet tick; more shards run the same
    /// campaign shard-parallel).
    pub shards: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            vehicles: 6,
            workers_per_vehicle: 3,
            loss_probability: 0.10,
            uplink_loss_probability: None,
            latency_ticks: 1,
            jitter_ticks: 2,
            seed: 0xC4A05,
            partition: Some(PartitionPlan {
                start_tick: 5,
                duration_ticks: 50,
                vehicles: 2,
            }),
            retry: RetryPolicy::default(),
            max_ticks_per_wave: 600,
            shards: 1,
        }
    }
}

/// Outcome counters of one full chaos run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Fleet ticks consumed by the whole run.
    pub ticks: u64,
    /// Vehicles whose v1 install converged to `Installed`.
    pub installed_v1: usize,
    /// Vehicles whose v1 install converged to a typed failure.
    pub failed_v1: usize,
    /// Vehicles whose v1 uninstall converged to `NotInstalled`.
    pub uninstalled: usize,
    /// Vehicles whose v2 install converged to `Installed`.
    pub installed_v2: usize,
    /// Operations escalated by the server after exhausting retries.
    pub retry_failures: u64,
    /// Final transport statistics (conservation holds at every tick).
    pub transport: TransportStats,
}

/// The fleet scenario wrapped in a hostile transport.
#[derive(Debug)]
pub struct ChaosScenario {
    /// The underlying fleet scenario (server, hub, vehicles, handles).
    pub inner: FleetScenario,
    config: ChaosConfig,
    partition_injected: bool,
}

impl ChaosScenario {
    /// Builds a chaos scenario with the default configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from any subsystem.
    pub fn build() -> Result<Self> {
        Self::build_with(ChaosConfig::default())
    }

    /// Builds a chaos scenario with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from any subsystem.
    pub fn build_with(config: ChaosConfig) -> Result<Self> {
        let mut inner = FleetScenario::build_with(FleetScenarioConfig {
            vehicles: config.vehicles,
            workers_per_vehicle: config.workers_per_vehicle,
            transport: TransportConfig {
                latency_ticks: config.latency_ticks,
                loss_probability: config.loss_probability,
                seed: config.seed,
            },
            shards: config.shards,
            ..FleetScenarioConfig::default()
        })?;
        inner.fleet.server.set_retry_policy(config.retry.clone());

        // Per-link faults: jitter on both directions, asymmetric loss on the
        // uplink when configured.  Faults are keyed by endpoint names, so
        // installing them on every shard hub is inert where a pair never
        // communicates.
        {
            let ids = inner.fleet.vehicle_ids();
            let server = inner.fleet.server_endpoint().to_owned();
            let endpoints: Vec<String> = ids
                .iter()
                .filter_map(|id| inner.fleet.endpoint_of(id).map(str::to_owned))
                .collect();
            for endpoint in endpoints {
                inner.fleet.set_link_fault(
                    &server,
                    &endpoint,
                    LinkFault::jittery(config.jitter_ticks),
                );
                inner.fleet.set_link_fault(
                    &endpoint,
                    &server,
                    LinkFault {
                        loss_probability: config.uplink_loss_probability,
                        jitter_ticks: config.jitter_ticks,
                        partition_until: None,
                    },
                );
            }
        }

        Ok(ChaosScenario {
            inner,
            config,
            partition_injected: false,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// One fleet tick under chaos: injects the scheduled partition when its
    /// start tick is reached and asserts the transport conservation
    /// invariant afterwards.
    ///
    /// # Errors
    ///
    /// Propagates fleet step errors; returns
    /// [`DynarError::ProtocolViolation`] if conservation is violated.
    pub fn step(&mut self) -> Result<()> {
        if let Some(plan) = &self.config.partition {
            if !self.partition_injected && self.inner.fleet.now().as_u64() >= plan.start_tick {
                let heal_at = Tick::new(plan.start_tick + plan.duration_ticks);
                let server = self.inner.fleet.server_endpoint().to_owned();
                let cut: Vec<String> = self
                    .inner
                    .fleet
                    .vehicle_ids()
                    .iter()
                    .take(plan.vehicles)
                    .filter_map(|id| self.inner.fleet.endpoint_of(id).map(str::to_owned))
                    .collect();
                for endpoint in cut {
                    self.inner.fleet.partition(&server, &endpoint, heal_at);
                }
                self.partition_injected = true;
            }
        }
        self.inner.fleet.step()?;
        let stats = self.inner.fleet.transport_stats();
        if !stats.is_conserved() {
            return Err(DynarError::ProtocolViolation(format!(
                "transport stats conservation violated at tick {}: {stats:?}",
                self.inner.fleet.now()
            )));
        }
        Ok(())
    }

    /// Ticks until no target has a `Pending` operation for `app` any more
    /// (every operation resolved to installed, uninstalled or typed-failed),
    /// returning the ticks consumed.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::RetryExhausted`] if convergence is not reached
    /// within the configured per-wave horizon, and propagates step errors.
    pub fn converge(&mut self, app: &AppId, targets: &[VehicleId]) -> Result<u64> {
        let resolved = |scenario: &Self| {
            targets.iter().all(|v| {
                !matches!(
                    scenario.inner.fleet.server.deployment_status(v, app),
                    DeploymentStatus::Pending { .. }
                )
            })
        };
        for tick in 0..self.config.max_ticks_per_wave {
            if resolved(self) {
                return Ok(tick);
            }
            self.step()?;
        }
        if resolved(self) {
            return Ok(self.config.max_ticks_per_wave);
        }
        Err(DynarError::RetryExhausted {
            operation: format!("convergence of {app} across {} vehicles", targets.len()),
            attempts: u32::try_from(self.config.max_ticks_per_wave).unwrap_or(u32::MAX),
        })
    }

    /// Runs the full chaos campaign: install v1 everywhere, then update the
    /// convergent vehicles to v2 (uninstall + reinstall), all under loss,
    /// jitter and the scheduled partition.
    ///
    /// # Errors
    ///
    /// Propagates convergence timeouts, step errors and invariant
    /// violations — a clean run means the reliability plane held.
    pub fn run(&mut self) -> Result<ChaosReport> {
        let user = self.inner.user.clone();
        let v1 = AppId::new(APP_TELEMETRY);
        let v2 = AppId::new(APP_TELEMETRY_V2);
        let all: Vec<VehicleId> = self.inner.fleet.vehicle_ids().to_vec();
        let mut report = ChaosReport::default();

        // --- Wave 1: install v1 everywhere, partition mid-flight ----------
        self.inner.fleet.deploy_wave(&user, &v1, &all)?;
        self.converge(&v1, &all)?;
        let mut survivors = Vec::new();
        for vehicle in &all {
            match self.inner.fleet.server.deployment_status(vehicle, &v1) {
                DeploymentStatus::Installed => {
                    report.installed_v1 += 1;
                    survivors.push(vehicle.clone());
                }
                DeploymentStatus::Failed(_) => report.failed_v1 += 1,
                other => {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{vehicle}: v1 install resolved to unexpected status {other:?}"
                    )))
                }
            }
        }

        // --- Wave 2: uninstall v1 from the survivors ----------------------
        for vehicle in &survivors {
            self.inner.fleet.server.uninstall(&user, vehicle, &v1)?;
        }
        self.converge(&v1, &survivors)?;
        let mut empty = Vec::new();
        for vehicle in &survivors {
            match self.inner.fleet.server.deployment_status(vehicle, &v1) {
                DeploymentStatus::NotInstalled => {
                    report.uninstalled += 1;
                    empty.push(vehicle.clone());
                }
                DeploymentStatus::Failed(_) => {}
                other => {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{vehicle}: v1 uninstall resolved to unexpected status {other:?}"
                    )))
                }
            }
        }

        // --- Wave 3: install v2 on the emptied vehicles -------------------
        self.inner.fleet.deploy_wave(&user, &v2, &empty)?;
        self.converge(&v2, &empty)?;
        for vehicle in &empty {
            if self.inner.fleet.server.deployment_status(vehicle, &v2)
                == DeploymentStatus::Installed
            {
                report.installed_v2 += 1;
            }
        }

        // Drain: let in-flight duplicates arrive and be deduplicated.
        for _ in 0..20 {
            self.step()?;
        }

        self.verify_no_duplicates()?;
        report.ticks = self.inner.fleet.stats().ticks;
        report.retry_failures = self.inner.fleet.stats().retry_failures;
        report.transport = self.inner.fleet.transport_stats();
        Ok(report)
    }

    /// Checks the idempotence guarantee on every worker PIRTE: no rejected
    /// operations (a reinstalled duplicate would be rejected), at most one
    /// plug-in per worker, and internally consistent routing tables.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] naming the first worker
    /// that saw a duplicate.
    pub fn verify_no_duplicates(&self) -> Result<()> {
        for handle in self.inner.handles() {
            for (worker, _, pirte) in &handle.workers {
                let pirte = pirte.lock();
                let stats = pirte.stats();
                if stats.rejected_operations != 0 {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{}/{worker}: {} rejected operations — a duplicate got past the dedup window",
                        handle.id, stats.rejected_operations
                    )));
                }
                if pirte.plugin_count() > 1 {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{}/{worker}: {} plug-ins installed, at most 1 expected",
                        handle.id,
                        pirte.plugin_count()
                    )));
                }
                if !pirte.verify_compiled_routes() {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{}/{worker}: compiled routes diverged",
                        handle.id
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The default-configuration acceptance campaign (10 % loss + 50-tick
    // partition) lives in `tests/chaos.rs`, which CI runs as its own step;
    // the unit tests here cover the other corners of the loss range.

    #[test]
    fn chaos_at_twenty_percent_loss_with_asymmetric_uplink() {
        let mut scenario = ChaosScenario::build_with(ChaosConfig {
            vehicles: 3,
            loss_probability: 0.20,
            uplink_loss_probability: Some(0.05),
            partition: None,
            seed: 0xBADF00D,
            ..ChaosConfig::default()
        })
        .unwrap();
        let report = scenario.run().unwrap();
        assert_eq!(report.installed_v1 + report.failed_v1, 3, "{report:?}");
        assert!(report.transport.lost > 0);
    }

    #[test]
    fn one_percent_loss_is_barely_noticeable() {
        let mut scenario = ChaosScenario::build_with(ChaosConfig {
            vehicles: 4,
            loss_probability: 0.01,
            jitter_ticks: 0,
            partition: None,
            ..ChaosConfig::default()
        })
        .unwrap();
        let report = scenario.run().unwrap();
        assert_eq!(report.installed_v1, 4, "{report:?}");
        assert_eq!(report.installed_v2, 4, "{report:?}");
        assert_eq!(report.retry_failures, 0);
    }
}
