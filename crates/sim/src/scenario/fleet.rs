//! The fleet scenario: many four-ECU vehicles federated through one trusted
//! server, with live signal chains under staged install/update waves.
//!
//! Every vehicle has the same topology:
//!
//! * **ECU1** hosts the ECM SW-C (the management gateway towards the server)
//!   and a built-in speed-sensor SW-C that periodically broadcasts a reading
//!   on the [`SENSOR_FRAME`] — the always-on signal chain.
//! * **ECU2..=ECU(1+workers)** each host a plug-in SW-C whose `SensorIn`
//!   type III virtual port is fed from the sensor frame and whose `ActOut`
//!   type III virtual port surfaces plug-in actuation on the `act_out` SW-C
//!   port.
//!
//! The `fleet-telemetry` application places one OP plug-in per worker ECU;
//! each plug-in consumes sensor readings, applies its gain and actuates.  The
//! v2 application does the same with a different gain, so an update wave is
//! observable at the actuators while the rest of the fleet keeps driving.

use dynar_bus::frame::CanId;
use dynar_bus::network::BusConfig;
use dynar_core::plugin::PluginPortDirection;
use dynar_core::swc::{PluginSwc, PluginSwcConfig, SharedPirte};
use dynar_core::virtual_port::{PortDataDirection, PortKind, VirtualPortSpec};
use dynar_ecm::gateway::{EcmConfig, EcmSwc, SharedHub};
use dynar_fes::transport::TransportConfig;
use dynar_foundation::error::Result;
use dynar_foundation::ids::{AppId, EcuId, PluginId, SwcId, UserId, VehicleId};
use dynar_foundation::value::Value;
use dynar_rte::component::{ComponentBehavior, RteContext, RunnableSpec, SwcDescriptor, Trigger};
use dynar_rte::ecu::Ecu;
use dynar_rte::port::{PortDirection, PortSpec};
use dynar_server::model::{
    AppDefinition, ConnectionDecl, HwConf, PluginArtifact, PluginPortDecl, PluginSwcDecl, SwConf,
    SystemSwConf, VirtualPortDecl, VirtualPortKindDecl,
};
use dynar_server::server::TrustedServer;
use dynar_vm::assembler::assemble;

use crate::fleet::Fleet;
use crate::world::Vehicle;

/// Frame broadcasting the speed-sensor reading inside each vehicle.
pub const SENSOR_FRAME: u32 = 0x500;
/// Vehicle model name registered for every fleet vehicle.
pub const FLEET_MODEL: &str = "fleet-car";
/// The telemetry application (gain 2).
pub const APP_TELEMETRY: &str = "fleet-telemetry";
/// The updated telemetry application (gain 3).
pub const APP_TELEMETRY_V2: &str = "fleet-telemetry-v2";
/// Gain applied by the v1 OP plug-ins.
pub const GAIN_V1: i64 = 2;
/// Gain applied by the v2 OP plug-ins.
pub const GAIN_V2: i64 = 3;
/// Sensor period in ticks.
pub const SENSOR_PERIOD: u64 = 4;

/// How the fleet scenario is sized and wired.
#[derive(Debug, Clone)]
pub struct FleetScenarioConfig {
    /// Number of vehicles in the fleet.
    pub vehicles: usize,
    /// Worker ECUs per vehicle (on top of the ECM ECU).
    pub workers_per_vehicle: u16,
    /// In-vehicle bus configuration (shared by every vehicle).
    pub bus: BusConfig,
    /// External transport configuration of the shared hub.
    pub transport: TransportConfig,
    /// Server shard count (1 = the serial control plane; more shards run the
    /// fleet tick shard-parallel on the worker pool).
    pub shards: usize,
}

impl Default for FleetScenarioConfig {
    fn default() -> Self {
        FleetScenarioConfig {
            vehicles: 50,
            workers_per_vehicle: 3,
            bus: BusConfig {
                frames_per_tick: 64,
                ..BusConfig::default()
            },
            transport: TransportConfig::default(),
            shards: 1,
        }
    }
}

/// One worker ECU of a fleet vehicle: its id, the plug-in SW-C instance and
/// a shared handle to its PIRTE.
pub type WorkerHandle = (EcuId, SwcId, SharedPirte);

/// Handles into one fleet vehicle.
#[derive(Debug, Clone)]
pub struct VehicleHandles {
    /// The server-side vehicle id.
    pub id: VehicleId,
    /// Per worker ECU: its id, the plug-in SW-C instance and its PIRTE.
    pub workers: Vec<WorkerHandle>,
}

/// The assembled fleet scenario.
#[derive(Debug)]
pub struct FleetScenario {
    /// The fleet scheduler (server + hub + vehicles).
    pub fleet: Fleet,
    /// The fleet operator account.
    pub user: UserId,
    handles: Vec<VehicleHandles>,
    workers_per_vehicle: u16,
    /// The shared in-vehicle bus configuration (needed to rebuild vehicles
    /// on reboot and to wire newcomers mid-run).
    bus: BusConfig,
    /// Per-vehicle boot epoch (0 = factory boot; bumped by every reboot).
    epochs: std::collections::HashMap<VehicleId, u32>,
    /// Next VIN/endpoint index for vehicles joining mid-run.
    next_index: usize,
}

/// The built-in speed sensor: a periodic SW-C broadcasting an incrementing
/// reading.
struct SpeedSensor {
    reading: i64,
}

impl ComponentBehavior for SpeedSensor {
    fn on_runnable(&mut self, _runnable: &str, ctx: &mut RteContext<'_>) -> Result<()> {
        self.reading += 1;
        ctx.write("speed_out", Value::I64(self.reading))
    }
}

fn worker_ids(workers: u16) -> impl Iterator<Item = EcuId> {
    (0..workers).map(|i| EcuId::new(i + 2))
}

fn mgmt_down_frame(worker: EcuId) -> CanId {
    CanId::new(0x300 + u32::from(worker.index())).expect("static frame id")
}

fn mgmt_up_frame(worker: EcuId) -> CanId {
    CanId::new(0x400 + u32::from(worker.index())).expect("static frame id")
}

/// The hardware configuration the server registers for a fleet vehicle with
/// `workers` worker ECUs.
pub fn fleet_hw(workers: u16) -> HwConf {
    let mut hw = HwConf::new().with_ecu(EcuId::new(1), 1024);
    for worker in worker_ids(workers) {
        hw = hw.with_ecu(worker, 512);
    }
    hw
}

/// The system software configuration matching [`fleet_hw`].
pub fn fleet_system(workers: u16) -> SystemSwConf {
    let mut system = SystemSwConf::new(FLEET_MODEL).with_swc(PluginSwcDecl {
        ecu: EcuId::new(1),
        swc_name: "ecm-swc".into(),
        is_ecm: true,
        virtual_ports: Vec::new(),
    });
    for worker in worker_ids(workers) {
        system = system.with_swc(PluginSwcDecl {
            ecu: worker,
            swc_name: format!("worker-swc-{worker}"),
            is_ecm: false,
            virtual_ports: vec![
                VirtualPortDecl {
                    id: dynar_foundation::ids::VirtualPortId::new(0),
                    name: "SensorIn".into(),
                    kind: VirtualPortKindDecl::TypeIII,
                },
                VirtualPortDecl {
                    id: dynar_foundation::ids::VirtualPortId::new(1),
                    name: "ActOut".into(),
                    kind: VirtualPortKindDecl::TypeIII,
                },
            ],
        });
    }
    system
}

/// The OP plug-in: consume sensor readings on port 0, apply `gain`, actuate
/// on port 1.
fn op_source(gain: i64) -> String {
    format!(
        r#"
loop:
    port_pending 0
    push_int 0
    gt
    jump_if_false idle
    take_port 0
    push_int {gain}
    mul
    write_port 1
    jump loop
idle:
    yield
    jump loop
"#
    )
}

/// Builds one telemetry application: one OP plug-in per worker ECU,
/// `SensorIn` in, `ActOut` out.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn telemetry_app(app: &str, suffix: &str, gain: i64, workers: u16) -> Result<AppDefinition> {
    let op_binary = assemble("OP", &op_source(gain))?.to_bytes();
    let mut definition = AppDefinition::new(AppId::new(app));
    let mut conf = SwConf::new(FLEET_MODEL);
    for worker in worker_ids(workers) {
        let op_id = PluginId::new(format!("OP{suffix}-{worker}"));
        definition = definition.with_plugin(PluginArtifact {
            id: op_id.clone(),
            binary: op_binary.clone(),
            ports: vec![
                PluginPortDecl {
                    name: "data_in".into(),
                    direction: PluginPortDirection::Required,
                },
                PluginPortDecl {
                    name: "act_out".into(),
                    direction: PluginPortDirection::Provided,
                },
            ],
        });
        conf = conf
            .with_placement(op_id.clone(), worker)
            .with_connection(
                op_id.clone(),
                "data_in",
                ConnectionDecl::VirtualPort {
                    name: "SensorIn".into(),
                },
            )
            .with_connection(
                op_id,
                "act_out",
                ConnectionDecl::VirtualPort {
                    name: "ActOut".into(),
                },
            );
    }
    Ok(definition.with_sw_conf(conf))
}

impl FleetScenario {
    /// Builds a fleet with the default configuration (50 vehicles × 4 ECUs).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from any subsystem.
    pub fn build(vehicles: usize) -> Result<Self> {
        Self::build_with(FleetScenarioConfig {
            vehicles,
            ..FleetScenarioConfig::default()
        })
    }

    /// Builds the fleet scenario with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from any subsystem.
    pub fn build_with(config: FleetScenarioConfig) -> Result<Self> {
        let workers = config.workers_per_vehicle;

        // --- Trusted server: one catalogue, every vehicle registered ------
        let mut server = TrustedServer::with_shards(config.shards);
        let user = UserId::new("fleet-ops");
        server.create_user(user.clone())?;
        server.upload_app(telemetry_app(APP_TELEMETRY, "", GAIN_V1, workers)?)?;
        server.upload_app(telemetry_app(APP_TELEMETRY_V2, "2", GAIN_V2, workers)?)?;

        let mut fleet = Fleet::new(server, "server", config.transport.clone());

        let mut handles = Vec::with_capacity(config.vehicles);
        for index in 0..config.vehicles {
            let vehicle_id = VehicleId::new(format!("VIN-FLEET-{index:04}"));
            let endpoint = format!("vehicle-{index}");
            fleet.server.register_vehicle(
                vehicle_id.clone(),
                fleet_hw(workers),
                fleet_system(workers),
            )?;
            fleet.server.bind_vehicle(&user, &vehicle_id)?;

            // Each vehicle's ECM registers on the hub of *its* shard.
            let hub = fleet.hub_for(&vehicle_id);
            let (vehicle, worker_handles) =
                build_vehicle(&endpoint, workers, config.bus.clone(), &hub, 0)?;
            fleet.add_vehicle(vehicle_id.clone(), endpoint, vehicle)?;
            handles.push(VehicleHandles {
                id: vehicle_id,
                workers: worker_handles,
            });
        }

        Ok(FleetScenario {
            fleet,
            user,
            handles,
            workers_per_vehicle: workers,
            bus: config.bus,
            epochs: std::collections::HashMap::new(),
            next_index: config.vehicles,
        })
    }

    /// Per-vehicle handles (worker ECUs, SW-C instances, PIRTEs).
    pub fn handles(&self) -> &[VehicleHandles] {
        &self.handles
    }

    /// Worker ECUs per vehicle.
    pub fn workers_per_vehicle(&self) -> u16 {
        self.workers_per_vehicle
    }

    /// The current boot epoch of a vehicle (0 until its first reboot).
    pub fn boot_epoch(&self, vehicle: &VehicleId) -> u32 {
        self.epochs.get(vehicle).copied().unwrap_or(0)
    }

    /// Reboots a vehicle: the old incarnation — every ECU, every installed
    /// plug-in, the ECM's dedup window — is discarded (an ECM's state is
    /// volatile), its endpoint is unregistered so in-flight traffic is
    /// voided, and a factory-fresh incarnation with the **next boot epoch**
    /// takes its place.  The server is parked via `mark_offline`; recovery is
    /// fully protocol-driven: the new gateway announces a
    /// [`dynar_core::message::ManagementMessage::StateReport`] (retrying over
    /// the lossy uplink) and the server resyncs and reconciles from it.
    ///
    /// # Errors
    ///
    /// Returns [`dynar_foundation::error::DynarError::NotFound`] for unknown
    /// vehicles and propagates vehicle construction errors.
    pub fn reboot_vehicle(&mut self, vehicle: &VehicleId) -> Result<()> {
        let endpoint = self
            .fleet
            .endpoint_of(vehicle)
            .ok_or_else(|| {
                dynar_foundation::error::DynarError::not_found("fleet vehicle", vehicle)
            })?
            .to_owned();
        let epoch = self.epochs.entry(vehicle.clone()).or_insert(0);
        *epoch += 1;
        let epoch = *epoch;

        // Park the server first (no more pushes), then void the dead
        // incarnation's endpoint before the new one registers.
        self.fleet.server.mark_offline(vehicle);
        self.fleet.unregister_endpoint(&endpoint);

        let hub = self.fleet.hub_for(vehicle);
        let (fresh, worker_handles) = build_vehicle(
            &endpoint,
            self.workers_per_vehicle,
            self.bus.clone(),
            &hub,
            epoch,
        )?;
        self.fleet.replace_vehicle(vehicle, fresh)?;
        if let Some(handle) = self.handles.iter_mut().find(|h| &h.id == vehicle) {
            handle.workers = worker_handles;
        }
        Ok(())
    }

    /// Removes a vehicle from the fleet for good: endpoint unregistered,
    /// outstanding server operations failed fast as unreachable.
    ///
    /// # Errors
    ///
    /// Returns [`dynar_foundation::error::DynarError::NotFound`] for unknown
    /// vehicles.
    pub fn remove_vehicle(&mut self, vehicle: &VehicleId) -> Result<()> {
        self.fleet.remove_vehicle(vehicle)?;
        self.handles.retain(|h| &h.id != vehicle);
        self.epochs.remove(vehicle);
        Ok(())
    }

    /// Adds a factory-fresh vehicle while the fleet is running (registered on
    /// the server, wired onto the shared hub, epoch 0).  Returns its id; the
    /// caller declares its desired manifest to put it to work.
    ///
    /// # Errors
    ///
    /// Propagates registration and construction errors.
    pub fn add_vehicle_during_run(&mut self) -> Result<VehicleId> {
        let index = self.next_index;
        self.next_index += 1;
        let vehicle_id = VehicleId::new(format!("VIN-FLEET-{index:04}"));
        let endpoint = format!("vehicle-{index}");
        let workers = self.workers_per_vehicle;
        self.fleet.server.register_vehicle(
            vehicle_id.clone(),
            fleet_hw(workers),
            fleet_system(workers),
        )?;
        self.fleet.server.bind_vehicle(&self.user, &vehicle_id)?;
        let hub = self.fleet.hub_for(&vehicle_id);
        let (vehicle, worker_handles) =
            build_vehicle(&endpoint, workers, self.bus.clone(), &hub, 0)?;
        self.fleet
            .add_vehicle_during_run(vehicle_id.clone(), endpoint, vehicle)?;
        self.handles.push(VehicleHandles {
            id: vehicle_id.clone(),
            workers: worker_handles,
        });
        Ok(vehicle_id)
    }

    /// Installs the v1 telemetry app across the fleet in staged waves.
    ///
    /// # Errors
    ///
    /// Propagates deployment rejections and wave timeouts.
    pub fn install_telemetry(&mut self, wave_size: usize) -> Result<()> {
        let user = self.user.clone();
        self.fleet
            .install_in_waves(&user, &AppId::new(APP_TELEMETRY), wave_size, 600)
    }

    /// Updates the given vehicles from v1 to v2 telemetry (uninstall wave
    /// followed by install wave), while the rest of the fleet keeps running.
    ///
    /// # Errors
    ///
    /// Propagates rejections and wave timeouts.
    pub fn update_telemetry(&mut self, targets: &[VehicleId], wave_size: usize) -> Result<()> {
        let user = self.user.clone();
        self.fleet.uninstall_in_waves(
            &user,
            &AppId::new(APP_TELEMETRY),
            targets,
            wave_size,
            600,
        )?;
        for wave in targets.chunks(wave_size.max(1)) {
            self.fleet
                .deploy_wave(&user, &AppId::new(APP_TELEMETRY_V2), wave)?;
            self.fleet.await_deployment(
                &AppId::new(APP_TELEMETRY_V2),
                wave,
                &dynar_server::server::DeploymentStatus::Installed,
                600,
            )?;
        }
        Ok(())
    }

    /// The last actuated value on one worker ECU of one vehicle.
    pub fn actuator_value(&self, vehicle: &VehicleId, worker: EcuId) -> Option<Value> {
        let handles = self.handles.iter().find(|h| &h.id == vehicle)?;
        let (_, swc, _) = handles.workers.iter().find(|(ecu, _, _)| *ecu == worker)?;
        self.fleet
            .vehicle(vehicle)?
            .ecu(worker)?
            .rte()
            .read_port_by_name(*swc, "act_out")
            .ok()
    }
}

/// Wires one fleet vehicle: the ECM ECU (gateway + speed sensor) and
/// `workers` worker ECUs with plug-in SW-Cs, at the given boot epoch.
///
/// Public so other harnesses (the actor runtime, the UDP federation
/// example) can build protocol-complete vehicles on any transport backend.
pub fn build_vehicle(
    endpoint: &str,
    workers: u16,
    bus: BusConfig,
    hub: &SharedHub,
    boot_epoch: u32,
) -> Result<(Vehicle, Vec<WorkerHandle>)> {
    let ecm_ecu_id = EcuId::new(1);
    let mut ecm_config = EcmConfig::new(PluginSwcConfig::new("ecm-swc"), endpoint, "server")
        .with_boot_epoch(boot_epoch);
    for worker in worker_ids(workers) {
        ecm_config =
            ecm_config.with_remote_swc(worker, format!("to_{worker}"), format!("from_{worker}"));
    }

    let mut ecm_ecu = Ecu::new(ecm_ecu_id);
    let ecm_descriptor = ecm_config.descriptor()?;
    let (ecm_behavior, _ecm_pirte) = EcmSwc::create(ecm_ecu_id, ecm_config, hub.clone());
    let ecm_swc = ecm_ecu.add_component(ecm_descriptor, Box::new(ecm_behavior))?;

    let sensor_descriptor = SwcDescriptor::new("speed-sensor")
        .with_port(PortSpec::sender_receiver(
            "speed_out",
            PortDirection::Provided,
        ))
        .with_runnable(RunnableSpec::new(
            "sample",
            Trigger::Periodic(SENSOR_PERIOD),
        ));
    let sensor_swc =
        ecm_ecu.add_component(sensor_descriptor, Box::new(SpeedSensor { reading: 0 }))?;
    let sensor_frame = CanId::new(SENSOR_FRAME)?;
    ecm_ecu.map_signal_out(sensor_swc, "speed_out", sensor_frame)?;

    let mut ecus = Vec::with_capacity(usize::from(workers) + 1);
    let mut worker_handles = Vec::with_capacity(usize::from(workers));
    let mut frames = vec![sensor_frame];
    for worker in worker_ids(workers) {
        let config = PluginSwcConfig::new(format!("worker-swc-{worker}"))
            .with_type_i_ports("mgmt_in", "mgmt_out")
            .with_virtual_port(VirtualPortSpec::new(
                dynar_foundation::ids::VirtualPortId::new(0),
                "SensorIn",
                PortKind::TypeIII,
                PortDataDirection::ToPlugins,
                "sensor_in",
            ))
            .with_virtual_port(VirtualPortSpec::new(
                dynar_foundation::ids::VirtualPortId::new(1),
                "ActOut",
                PortKind::TypeIII,
                PortDataDirection::ToSystem,
                "act_out",
            ));
        let mut ecu = Ecu::new(worker);
        let descriptor = config.descriptor()?;
        let (behavior, pirte) = PluginSwc::create(worker, config);
        let swc = ecu.add_component(descriptor, Box::new(behavior))?;

        ecu.map_signal_in(sensor_frame, swc, "sensor_in")?;
        ecm_ecu.map_signal_out(ecm_swc, &format!("to_{worker}"), mgmt_down_frame(worker))?;
        ecu.map_signal_in(mgmt_down_frame(worker), swc, "mgmt_in")?;
        ecu.map_signal_out(swc, "mgmt_out", mgmt_up_frame(worker))?;
        ecm_ecu.map_signal_in(mgmt_up_frame(worker), ecm_swc, &format!("from_{worker}"))?;

        frames.extend([mgmt_down_frame(worker), mgmt_up_frame(worker)]);
        ecus.push(ecu);
        worker_handles.push((worker, swc, pirte));
    }

    let mut all_ecus = vec![ecm_ecu];
    all_ecus.extend(ecus);
    let mut vehicle = Vehicle::new(all_ecus, bus);
    vehicle.open_acceptance_filters(&frames);
    Ok((vehicle, worker_handles))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_fleet_healthy(scenario: &mut FleetScenario, expected_plugins: usize) {
        let handle_data: Vec<(VehicleId, Vec<WorkerHandle>)> = scenario
            .handles()
            .iter()
            .map(|h| (h.id.clone(), h.workers.clone()))
            .collect();
        for (vehicle_id, workers) in handle_data {
            let bus = scenario.fleet.vehicle(&vehicle_id).unwrap().bus().stats();
            assert_eq!(bus.dropped, 0, "{vehicle_id}: lossless bus");
            for (worker, _, pirte) in workers {
                let stats = pirte.lock().stats();
                assert_eq!(stats.plugin_faults, 0, "{vehicle_id}/{worker}: no faults");
                assert_eq!(
                    pirte.lock().plugin_count(),
                    expected_plugins,
                    "{vehicle_id}/{worker}: plug-in count"
                );
                assert!(pirte.lock().verify_compiled_routes());
            }
            let vehicle = scenario.fleet.vehicle_mut(&vehicle_id).unwrap();
            for ecu_id in [1u16, 2, 3, 4].map(EcuId::new) {
                let ecu = vehicle.ecu_mut(ecu_id).unwrap();
                assert!(
                    ecu.take_behaviour_errors().is_empty(),
                    "{vehicle_id}/{ecu_id}: no behaviour errors"
                );
            }
        }
    }

    #[test]
    fn six_vehicle_fleet_installs_in_waves_and_actuates() {
        let mut scenario = FleetScenario::build(6).unwrap();
        scenario.install_telemetry(2).unwrap();
        assert_fleet_healthy(&mut scenario, 1);

        scenario.fleet.run(80).unwrap();
        for handle in scenario.handles().to_vec() {
            for (worker, _, _) in &handle.workers {
                let actuated = scenario.actuator_value(&handle.id, *worker).unwrap();
                let Value::I64(v) = actuated else {
                    panic!("{}/{worker}: no actuation, got {actuated:?}", handle.id);
                };
                assert!(v > 0, "{}/{worker}: sensor chain is live", handle.id);
                assert_eq!(v % GAIN_V1, 0, "{}/{worker}: v1 gain applied", handle.id);
            }
        }
    }

    #[test]
    fn update_wave_changes_the_gain_while_the_rest_keeps_driving() {
        let mut scenario = FleetScenario::build(4).unwrap();
        scenario.install_telemetry(4).unwrap();
        scenario.fleet.run(40).unwrap();

        // Update the first two vehicles to v2; the others stay on v1.
        let targets: Vec<VehicleId> = scenario
            .fleet
            .vehicle_ids()
            .iter()
            .take(2)
            .cloned()
            .collect();
        scenario.update_telemetry(&targets, 2).unwrap();
        scenario.fleet.run(60).unwrap();

        for (index, handle) in scenario.handles().to_vec().iter().enumerate() {
            let gain = if index < 2 { GAIN_V2 } else { GAIN_V1 };
            for (worker, _, pirte) in &handle.workers {
                let actuated = scenario.actuator_value(&handle.id, *worker).unwrap();
                let Value::I64(v) = actuated else {
                    panic!("{}/{worker}: no actuation", handle.id);
                };
                assert_eq!(v % gain, 0, "{}/{worker}: gain {gain} applied", handle.id);
                assert!(pirte.lock().verify_compiled_routes());
            }
        }
        assert_fleet_healthy(&mut scenario, 1);
    }

    /// Regression (satellite): with a vehicle's endpoint unregistered from
    /// the hub, the server used to retransmit until the retry budget
    /// exhausted with a misleading "retry budget exhausted" failure.  The
    /// dropped-destination feedback now parks the vehicle instead: the
    /// operation stays pending (frozen), no budget burns.
    #[test]
    fn dead_endpoints_park_the_vehicle_instead_of_burning_the_retry_budget() {
        let mut scenario = FleetScenario::build_with(FleetScenarioConfig {
            vehicles: 2,
            workers_per_vehicle: 2,
            ..FleetScenarioConfig::default()
        })
        .unwrap();
        let user = scenario.user.clone();
        let victim = scenario.fleet.vehicle_ids()[0].clone();
        let endpoint = scenario.fleet.endpoint_of(&victim).unwrap().to_owned();
        scenario.fleet.unregister_endpoint(&endpoint);

        let app = AppId::new(APP_TELEMETRY);
        scenario
            .fleet
            .server
            .set_desired(&user, &victim, &app)
            .unwrap();
        // Far past the whole retry horizon.
        let horizon = scenario.fleet.server.retry_horizon_ticks();
        scenario.fleet.run(horizon + 50).unwrap();

        assert_eq!(
            scenario.fleet.stats().retry_failures,
            0,
            "no budget burned against the dead link"
        );
        assert!(!scenario.fleet.server.is_online(&victim), "parked");
        assert!(matches!(
            scenario.fleet.server.deployment_status(&victim, &app),
            dynar_server::server::DeploymentStatus::Pending { .. }
        ));
        // The other vehicle is unaffected.
        let healthy = scenario.fleet.vehicle_ids()[1].clone();
        assert!(scenario.fleet.server.is_online(&healthy));

        // A reboot brings the victim back (fresh endpoint registration, new
        // epoch, protocol-driven resync) and the parked manifest converges.
        scenario.reboot_vehicle(&victim).unwrap();
        scenario.fleet.run(150).unwrap();
        assert_eq!(
            scenario.fleet.server.deployment_status(&victim, &app),
            dynar_server::server::DeploymentStatus::Installed
        );
    }

    #[test]
    fn remove_and_add_keep_the_fleet_indexes_consistent() {
        let mut scenario = FleetScenario::build_with(FleetScenarioConfig {
            vehicles: 4,
            workers_per_vehicle: 2,
            ..FleetScenarioConfig::default()
        })
        .unwrap();
        let ids = scenario.fleet.vehicle_ids().to_vec();
        scenario.remove_vehicle(&ids[1]).unwrap();
        assert_eq!(scenario.fleet.len(), 3);
        assert!(scenario.fleet.vehicle(&ids[1]).is_none());
        assert_eq!(scenario.handles().len(), 3);
        // The swap-removed hole is repointed: every surviving id still
        // resolves to its own entry and endpoint.
        for id in [&ids[0], &ids[2], &ids[3]] {
            assert!(scenario.fleet.vehicle(id).is_some(), "{id} resolves");
            let endpoint = scenario.fleet.endpoint_of(id).unwrap().to_owned();
            assert!(scenario.fleet.endpoint_registered(&endpoint));
        }
        assert!(
            !scenario.fleet.endpoint_registered("vehicle-1"),
            "removed endpoint unregistered"
        );
        // Removing twice errors; the fleet keeps running and can grow again.
        assert!(scenario.fleet.remove_vehicle(&ids[1]).is_err());
        let newcomer = scenario.add_vehicle_during_run().unwrap();
        assert_eq!(scenario.fleet.len(), 4);
        assert!(scenario.fleet.vehicle(&newcomer).is_some());
        scenario.fleet.run(10).unwrap();
    }

    #[test]
    fn fifty_vehicle_fleet_survives_a_staged_install() {
        let mut scenario = FleetScenario::build(50).unwrap();
        assert_eq!(scenario.fleet.len(), 50);
        scenario.install_telemetry(10).unwrap();
        scenario.fleet.run(50).unwrap();
        assert_fleet_healthy(&mut scenario, 1);
        let stats = scenario.fleet.stats();
        assert!(
            stats.downlink_messages >= 150,
            "3 packages × 50 vehicles pushed, got {}",
            stats.downlink_messages
        );
        assert!(
            stats.uplink_messages >= 150,
            "every package acknowledged, got {}",
            stats.uplink_messages
        );
    }
}
