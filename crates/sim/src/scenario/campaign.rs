//! The campaign scenario: staged fleet-wide rollouts driven by the server's
//! campaign plane — canary waves, health gates, auto-abort and rollback —
//! over the full vehicle stack.
//!
//! Where [`crate::scenario::churn`] drives the desired-state plane by hand
//! (the operator edits manifests vehicle by vehicle), this scenario hands the
//! whole rollout to [`TrustedServer::create_campaign`]: the operator declares
//! *one* campaign (app, selector, wave plan, health gate) and the fleet tick
//! loop evaluates the gate every round via `TrustedServer::step_campaigns`.
//! Three campaign shapes are covered:
//!
//! * **Flash crowd** — every vehicle is eligible at once (canary = fleet
//!   size, no ramps): one wave exposes the whole fleet and the campaign
//!   completes once every install converged and soaked.
//! * **Bad-version canary** — the rollout ships an application whose plug-in
//!   binaries cannot even be parsed by the worker PIRTEs: every canary
//!   install fails vehicle-side, the abort gate trips before the ramp waves
//!   open, and the rollback restores each exposed vehicle's recorded
//!   last-good manifest.  Fleet exposure must stay below the canary fraction
//!   — the blast radius of a bad version is the canary wave, never the fleet.
//! * **Rollback under fire** — the same bad-version abort with transport
//!   loss and vehicles rebooting mid-wave: rollback must converge through
//!   the ordinary reconciliation loop against whatever the churn left.
//!
//! End-state guarantees (checked by [`CampaignScenario::verify_converged`]):
//! every vehicle's server-observed state equals its desired manifest after a
//! truth-resync round, the worker PIRTEs (ground truth) host exactly the
//! plug-ins the manifest implies, and no PIRTE of any incarnation rejected a
//! duplicate operation — rollbacks never double-apply.

use dynar_fes::transport::{TransportConfig, TransportStats};
use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{AppId, EcuId, PluginId, UserId, VehicleId};
use dynar_server::campaign::{
    CampaignId, CampaignSpec, CampaignStatus, HealthGate, VehicleSelector, WavePlan,
};
use dynar_server::model::{AppDefinition, PluginArtifact, SwConf};
use dynar_server::server::{DeploymentStatus, RetryPolicy, TrustedServer};

use crate::scenario::fleet::{FleetScenario, FleetScenarioConfig, APP_TELEMETRY, FLEET_MODEL};

/// The application a bad-version campaign tries to roll out: plug-in
/// binaries that no PIRTE can parse.
pub const APP_TELEMETRY_BAD: &str = "fleet-telemetry-bad";

/// How the campaign scenario is sized, how hostile its transport is, the
/// rollout's wave plan/health gate and the churn scheduled against it.
#[derive(Debug, Clone)]
pub struct CampaignScenarioConfig {
    /// Number of vehicles in the fleet.
    pub vehicles: usize,
    /// Worker ECUs per vehicle.
    pub workers_per_vehicle: u16,
    /// Symmetric loss probability of the external transport.
    pub loss_probability: f64,
    /// Base delivery latency of the external transport.
    pub latency_ticks: u64,
    /// Seed of the transport's fault models.
    pub seed: u64,
    /// Server-side retransmission policy.
    pub retry: RetryPolicy,
    /// Canary size of the rollout's first wave.
    pub canary: usize,
    /// Cumulative percentage ramps after the canary wave.
    pub ramp_percent: Vec<u32>,
    /// Minimum dwell per wave before the gate may advance it.
    pub min_soak_ticks: u64,
    /// Failed-vehicle count that aborts the campaign (0 disables).
    pub abort_failed: u64,
    /// Ticks between periodic reconcile sweeps.
    pub reconcile_interval: u64,
    /// Hard horizon for the whole campaign, in ticks.
    pub max_ticks: u64,
    /// `(tick offset, vehicle index)`: scheduled mid-wave reboots.  Offsets
    /// are relative to the start of [`CampaignScenario::drive`]; indices
    /// refer to the initial registration order.
    pub reboots: Vec<(u64, usize)>,
    /// Server shard count (1 = serial fleet tick).
    pub shards: usize,
}

impl Default for CampaignScenarioConfig {
    fn default() -> Self {
        CampaignScenarioConfig {
            vehicles: 50,
            workers_per_vehicle: 3,
            loss_probability: 0.0,
            latency_ticks: 1,
            seed: 0xCA4ABA5E,
            retry: RetryPolicy::default(),
            canary: 2,
            ramp_percent: vec![25, 50, 100],
            min_soak_ticks: 30,
            abort_failed: 1,
            reconcile_interval: 50,
            max_ticks: 6_000,
            reboots: Vec::new(),
            shards: 1,
        }
    }
}

/// Outcome of one full campaign run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Fleet ticks consumed.
    pub ticks: u64,
    /// Terminal campaign status.
    pub status: CampaignStatus,
    /// Vehicles the campaign exposed (had their manifest rewritten).
    pub exposed: u64,
    /// Exposed vehicles whose install converged.
    pub succeeded: u64,
    /// Exposed vehicles whose install failed.
    pub failed: u64,
    /// Vehicles rolled back to their last-good manifest.
    pub rolled_back: u64,
    /// Reboots executed mid-campaign.
    pub rebooted: usize,
    /// Operations escalated by the reliability plane.
    pub retry_failures: u64,
    /// Final transport statistics (conservation held at every tick).
    pub transport: TransportStats,
}

/// The fleet scenario wrapped around one server-orchestrated campaign.
#[derive(Debug)]
pub struct CampaignScenario {
    /// The underlying fleet scenario (server, hub, vehicles, handles).
    pub inner: FleetScenario,
    config: CampaignScenarioConfig,
    /// Initial registration order (reboot indices refer to this).
    initial_ids: Vec<VehicleId>,
}

/// Builds the bad-version telemetry app: same shape as the fleet's
/// telemetry apps (one plug-in per worker ECU, placed on it), but with
/// binaries that fail PIRTE-side validation — the trusted server's static
/// checks pass, the vehicle rejects the install, and the failure surfaces
/// through the ordinary ack path into the campaign's health gate.
///
/// # Errors
///
/// Never fails today; kept fallible to match the app-builder signatures.
pub fn bad_telemetry_app(workers: u16) -> Result<AppDefinition> {
    let mut definition = AppDefinition::new(AppId::new(APP_TELEMETRY_BAD));
    let mut conf = SwConf::new(FLEET_MODEL);
    for i in 0..workers {
        let worker = EcuId::new(i + 2);
        let op_id = PluginId::new(format!("OPBAD-{worker}"));
        definition = definition.with_plugin(PluginArtifact {
            id: op_id.clone(),
            binary: vec![0xFF; 8],
            ports: Vec::new(),
        });
        conf = conf.with_placement(op_id, worker);
    }
    Ok(definition.with_sw_conf(conf))
}

impl CampaignScenario {
    /// Builds a campaign scenario with the default configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from any subsystem.
    pub fn build() -> Result<Self> {
        Self::build_with(CampaignScenarioConfig::default())
    }

    /// Builds a campaign scenario with an explicit configuration.  The
    /// bad-version app is uploaded alongside the fleet's telemetry apps so
    /// any run can roll it out.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from any subsystem.
    pub fn build_with(config: CampaignScenarioConfig) -> Result<Self> {
        let mut inner = FleetScenario::build_with(FleetScenarioConfig {
            vehicles: config.vehicles,
            workers_per_vehicle: config.workers_per_vehicle,
            transport: TransportConfig {
                latency_ticks: config.latency_ticks,
                loss_probability: config.loss_probability,
                seed: config.seed,
            },
            shards: config.shards,
            ..FleetScenarioConfig::default()
        })?;
        inner.fleet.server.set_retry_policy(config.retry.clone());
        inner
            .fleet
            .server
            .upload_app(bad_telemetry_app(config.workers_per_vehicle)?)?;
        let initial_ids = inner.fleet.vehicle_ids().to_vec();
        Ok(CampaignScenario {
            inner,
            config,
            initial_ids,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &CampaignScenarioConfig {
        &self.config
    }

    /// The campaign spec the configuration describes, rolling out `app`
    /// (replacing `replaces` where installed) across the whole fleet.
    pub fn spec(&self, id: &str, app: &str, replaces: Option<&str>) -> CampaignSpec {
        CampaignSpec {
            id: CampaignId::new(id),
            app: AppId::new(app),
            replaces: replaces.map(AppId::new),
            selector: VehicleSelector::All,
            plan: WavePlan {
                canary: self.config.canary,
                ramp_percent: self.config.ramp_percent.clone(),
            },
            gate: HealthGate {
                min_soak_ticks: self.config.min_soak_ticks,
                pause_failed: 0,
                abort_failed: self.config.abort_failed,
            },
        }
    }

    /// One fleet tick, asserting transport conservation.  The fleet tick
    /// itself evaluates the campaign gates (`TrustedServer::step_campaigns`
    /// runs at the serial point of every round).
    ///
    /// # Errors
    ///
    /// Propagates fleet step errors; returns
    /// [`DynarError::ProtocolViolation`] if conservation is violated.
    pub fn step(&mut self) -> Result<()> {
        self.inner.fleet.step()?;
        let stats = self.inner.fleet.transport_stats();
        if !stats.is_conserved() {
            return Err(DynarError::ProtocolViolation(format!(
                "transport stats conservation violated at tick {}: {stats:?}",
                self.inner.fleet.now()
            )));
        }
        Ok(())
    }

    /// Converges the whole fleet on the v1 telemetry app through the desired
    /// plane — the baseline state an update campaign then rewrites.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::RetryExhausted`] if the fleet does not converge
    /// within the configured horizon.
    pub fn converge_on_v1(&mut self) -> Result<()> {
        let user = self.inner.user.clone();
        let v1 = AppId::new(APP_TELEMETRY);
        for id in self.initial_ids.clone() {
            self.inner.fleet.server.set_desired(&user, &id, &v1)?;
        }
        self.run_until(|scenario| scenario.fleet_converged())
    }

    /// Creates the campaign and drives it to a verified end state — see
    /// [`CampaignScenario::drive`].
    ///
    /// # Errors
    ///
    /// Propagates campaign-creation and drive errors.
    pub fn run_campaign(&mut self, spec: CampaignSpec) -> Result<CampaignReport> {
        let user = self.inner.user.clone();
        let id = spec.id.clone();
        self.inner.fleet.server.create_campaign(&user, spec)?;
        self.drive(&id)
    }

    /// Runs the fleet until the (already created) campaign reaches a
    /// terminal status *and* every vehicle converged on its (possibly
    /// rolled-back) manifest, with the configured reboots (tick offsets
    /// relative to this call) and reconcile sweeps firing along the way.
    /// Ends with a ground-truth verification round.
    ///
    /// # Errors
    ///
    /// Propagates step errors and invariant violations; returns
    /// [`DynarError::RetryExhausted`] on horizon exhaustion.
    pub fn drive(&mut self, id: &CampaignId) -> Result<CampaignReport> {
        let start = self.inner.fleet.now().as_u64();
        let mut reboots = self.config.reboots.clone();
        let mut rebooted = 0usize;
        loop {
            let now = self.inner.fleet.now().as_u64();
            if now >= start + self.config.max_ticks {
                return Err(DynarError::RetryExhausted {
                    operation: format!(
                        "campaign convergence within {} ticks",
                        self.config.max_ticks
                    ),
                    attempts: u32::try_from(now).unwrap_or(u32::MAX),
                });
            }

            let mut due = Vec::new();
            reboots.retain(|&(tick, index)| {
                if start + tick <= now {
                    due.push(index);
                    false
                } else {
                    true
                }
            });
            for index in due {
                let vehicle = self.initial_ids[index].clone();
                self.inner.reboot_vehicle(&vehicle)?;
                rebooted += 1;
            }

            if self.config.reconcile_interval > 0
                && now.is_multiple_of(self.config.reconcile_interval)
            {
                for vehicle in self.inner.fleet.vehicle_ids().to_vec() {
                    let _ = self.inner.fleet.server.reconcile(&vehicle);
                }
            }

            self.step()?;

            let status = self
                .inner
                .fleet
                .server
                .campaign(id)
                .map(|c| c.status)
                .ok_or_else(|| DynarError::not_found("campaign", id))?;
            let terminal = matches!(status, CampaignStatus::Complete | CampaignStatus::Aborted);
            if terminal && reboots.is_empty() && self.fleet_converged() {
                break;
            }
        }

        self.truth_resync()?;
        self.verify_converged()?;

        let campaign = self
            .inner
            .fleet
            .server
            .campaign(id)
            .ok_or_else(|| DynarError::not_found("campaign", id))?;
        let report = CampaignReport {
            ticks: self.inner.fleet.stats().ticks,
            status: campaign.status,
            exposed: campaign.counters.exposed,
            succeeded: campaign.counters.succeeded,
            failed: campaign.counters.failed,
            rolled_back: campaign.counters.rolled_back,
            rebooted,
            retry_failures: self.inner.fleet.stats().retry_failures,
            transport: self.inner.fleet.transport_stats(),
        };
        Ok(report)
    }

    /// Returns `true` when every vehicle reached exactly its desired
    /// manifest and nothing is pending or outstanding.
    pub fn fleet_converged(&self) -> bool {
        let server = &self.inner.fleet.server;
        self.inner.fleet.vehicle_ids().iter().all(|id| {
            server.pending_operations(id).is_empty()
                && server.outstanding_count(id) == 0
                && manifest_reached(server, id)
        })
    }

    /// Steps the fleet until `done` holds, bounded by the configured
    /// horizon, sweeping reconcile periodically.
    fn run_until(&mut self, done: impl Fn(&CampaignScenario) -> bool) -> Result<()> {
        loop {
            let now = self.inner.fleet.now().as_u64();
            if now >= self.config.max_ticks {
                return Err(DynarError::RetryExhausted {
                    operation: format!("convergence within {} ticks", self.config.max_ticks),
                    attempts: u32::try_from(now).unwrap_or(u32::MAX),
                });
            }
            if self.config.reconcile_interval > 0
                && now.is_multiple_of(self.config.reconcile_interval)
            {
                for vehicle in self.inner.fleet.vehicle_ids().to_vec() {
                    let _ = self.inner.fleet.server.reconcile(&vehicle);
                }
            }
            self.step()?;
            if done(self) {
                return Ok(());
            }
        }
    }

    /// Asks every ECM for a state report and lets the resync path confirm
    /// (or repair) the server's observed state; requests and reports travel
    /// the same lossy links, so several rounds are issued.
    fn truth_resync(&mut self) -> Result<()> {
        for _ in 0..8 {
            for vehicle in self.inner.fleet.vehicle_ids().to_vec() {
                let _ = self.inner.fleet.server.request_state_report(&vehicle);
            }
            for _ in 0..12 {
                self.step()?;
            }
            if self.fleet_converged() {
                break;
            }
        }
        Ok(())
    }

    /// Checks the campaign's end-state guarantees, naming the first vehicle
    /// that violates one: observed state equals the desired manifest, the
    /// worker PIRTEs host exactly the plug-ins that manifest implies, and no
    /// PIRTE rejected a duplicate operation (rollbacks never double-apply).
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] describing the violation.
    pub fn verify_converged(&self) -> Result<()> {
        let server = &self.inner.fleet.server;
        for handle in self.inner.handles() {
            let id = &handle.id;
            let desired = server.desired_manifest(id);
            for app in &desired {
                let status = server.deployment_status(id, app);
                if status != DeploymentStatus::Installed {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{id}: desired app {app} resolved to {status:?}, not Installed"
                    )));
                }
            }
            for (worker, _, pirte) in &handle.workers {
                let pirte = pirte.lock();
                let stats = pirte.stats();
                if stats.rejected_operations != 0 {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{id}/{worker}: {} rejected operations — a rollback \
                         double-applied or a duplicate crossed the dedup window",
                        stats.rejected_operations
                    )));
                }
                let mut expected: Vec<PluginId> = desired
                    .iter()
                    .map(|app| expected_plugin(app, *worker))
                    .collect();
                expected.sort();
                let mut actual: Vec<PluginId> = pirte
                    .plugin_states()
                    .into_iter()
                    .map(|(plugin, _)| plugin)
                    .collect();
                actual.sort();
                if actual != expected {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{id}/{worker}: PIRTE hosts {actual:?}, manifest implies {expected:?}"
                    )));
                }
                if !pirte.verify_compiled_routes() {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{id}/{worker}: compiled routes diverged"
                    )));
                }
            }
            let observed = server.installed_apps(id);
            if observed != desired {
                return Err(DynarError::ProtocolViolation(format!(
                    "{id}: observed {observed:?} diverges from desired {desired:?} \
                     after truth resync"
                )));
            }
        }
        Ok(())
    }

    /// The fleet-ops user driving the campaign.
    pub fn user(&self) -> &UserId {
        &self.inner.user
    }
}

/// `true` once `vehicle`'s server-side state equals its desired manifest.
fn manifest_reached(server: &TrustedServer, vehicle: &VehicleId) -> bool {
    let desired = server.desired_manifest(vehicle);
    server.installed_apps(vehicle) == desired
        && desired
            .iter()
            .all(|app| server.deployment_status(vehicle, app) == DeploymentStatus::Installed)
}

/// The plug-in id `app` places on `worker` (mirrors the fleet and bad-app
/// builders' naming).
fn expected_plugin(app: &AppId, worker: EcuId) -> PluginId {
    let suffix = match app.name() {
        name if name == crate::scenario::fleet::APP_TELEMETRY_V2 => "2",
        APP_TELEMETRY_BAD => "BAD",
        _ => "",
    };
    PluginId::new(format!("OP{suffix}-{worker}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The pinned-seed acceptance campaigns (50 vehicles, the canary
    // auto-abort and the lossy rollback) live in `tests/campaign.rs`, which
    // CI runs as its own step; the unit tests here keep the scenario's
    // building blocks honest at a smaller size.

    #[test]
    fn flash_crowd_single_wave_completes() {
        let mut scenario = CampaignScenario::build_with(CampaignScenarioConfig {
            vehicles: 6,
            workers_per_vehicle: 2,
            canary: 6,
            ramp_percent: Vec::new(),
            min_soak_ticks: 10,
            ..CampaignScenarioConfig::default()
        })
        .unwrap();
        let spec = scenario.spec("flash-v1", APP_TELEMETRY, None);
        let report = scenario.run_campaign(spec).unwrap();
        assert_eq!(report.status, CampaignStatus::Complete, "{report:?}");
        assert_eq!(report.exposed, 6, "whole fleet in one wave");
        assert_eq!(report.succeeded, 6, "{report:?}");
        assert_eq!(report.rolled_back, 0, "{report:?}");
        assert!(report.transport.is_conserved());
    }

    #[test]
    fn staged_rollout_ramps_through_waves_to_completion() {
        let mut scenario = CampaignScenario::build_with(CampaignScenarioConfig {
            vehicles: 8,
            workers_per_vehicle: 2,
            canary: 1,
            ramp_percent: vec![50, 100],
            min_soak_ticks: 15,
            ..CampaignScenarioConfig::default()
        })
        .unwrap();
        let spec = scenario.spec("staged-v1", APP_TELEMETRY, None);
        let report = scenario.run_campaign(spec).unwrap();
        assert_eq!(report.status, CampaignStatus::Complete, "{report:?}");
        assert_eq!(report.exposed, 8, "{report:?}");
        assert_eq!(report.succeeded, 8, "{report:?}");
        let campaign = scenario
            .inner
            .fleet
            .server
            .campaign(&CampaignId::new("staged-v1"))
            .unwrap();
        assert_eq!(campaign.wave, 3, "canary, 50 %, 100 %");
    }

    #[test]
    fn bad_version_canary_aborts_and_rolls_back() {
        let mut scenario = CampaignScenario::build_with(CampaignScenarioConfig {
            vehicles: 6,
            workers_per_vehicle: 2,
            canary: 1,
            ramp_percent: vec![50, 100],
            min_soak_ticks: 20,
            ..CampaignScenarioConfig::default()
        })
        .unwrap();
        scenario.converge_on_v1().unwrap();

        let spec = scenario.spec("bad-v2", APP_TELEMETRY_BAD, Some(APP_TELEMETRY));
        let report = scenario.run_campaign(spec).unwrap();
        assert_eq!(report.status, CampaignStatus::Aborted, "{report:?}");
        assert_eq!(report.exposed, 1, "the canary only — no ramp opened");
        assert_eq!(report.failed, 1, "{report:?}");
        assert_eq!(report.rolled_back, 1, "{report:?}");

        // The rollback reinstalled v1 everywhere it was exposed: verified
        // against the PIRTE ground truth by `run_campaign` already; the
        // manifest view agrees.
        let v1 = AppId::new(APP_TELEMETRY);
        for id in scenario.inner.fleet.vehicle_ids().to_vec() {
            assert_eq!(
                scenario.inner.fleet.server.desired_manifest(&id),
                vec![v1.clone()],
                "{id}: back on (or still on) v1"
            );
        }
    }
}
