//! The churn scenario: vehicles reboot, leave and join mid-wave while
//! desired-state reconciliation drives install/update waves over a lossy
//! transport.
//!
//! Where [`crate::scenario::chaos`] stresses the *reliability* plane (lossy
//! delivery of an otherwise static fleet), this scenario stresses the
//! *lifecycle* plane: the fleet membership itself churns while operations are
//! in flight.  Vehicles are driven declaratively — the operator only edits
//! each vehicle's desired manifest ([`TrustedServer::set_desired`] /
//! [`TrustedServer::clear_desired`]) and a periodic reconcile sweep closes
//! whatever gap loss, reboots and failures opened.
//!
//! What must hold at the end of a campaign:
//!
//! * **Convergence** — every *surviving* vehicle reaches exactly its desired
//!   manifest: the desired apps are `Installed` on the server, and the worker
//!   PIRTEs (the ground truth) host exactly the expected plug-ins.
//! * **No double-apply across reboots** — boot epochs keep pre-reboot
//!   stragglers away from the rebooted gateway's empty dedup window: no
//!   PIRTE of any incarnation ever rejects a duplicate operation.
//! * **Truth-resync** — state reports requested from every ECM after the
//!   campaign leave the server's observed state unchanged (its bookkeeping
//!   already matched the vehicles' reality).
//! * **Conservation** — `sent == delivered + lost + dropped (+ in-flight)`
//!   holds on the transport at every tick, reboots and removals included.
//! * **Fail-fast removal** — the removed vehicle's operations resolve with
//!   the distinct `vehicle unreachable` reason, never by burning the retry
//!   budget.

use dynar_fes::transport::{LinkFault, TransportConfig, TransportStats};
use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{AppId, EcuId, PluginId, VehicleId};
use dynar_server::server::{DeploymentStatus, RetryPolicy, TrustedServer};

use crate::scenario::fleet::{FleetScenario, FleetScenarioConfig, APP_TELEMETRY, APP_TELEMETRY_V2};

/// The churn events of one campaign, scheduled against the fleet tick.
/// Vehicle indices refer to the *initial* registration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    /// `(tick, vehicle index)`: the vehicle reboots (losing all volatile ECM
    /// state) and recovers through the state-report protocol.
    pub reboots: Vec<(u64, usize)>,
    /// `(tick, vehicle index)`: the vehicle leaves the fleet for good while
    /// whatever is outstanding is still outstanding.
    pub removals: Vec<(u64, usize)>,
    /// Ticks at which a factory-fresh vehicle joins mid-run (and immediately
    /// desires the v1 app).
    pub additions: Vec<u64>,
}

/// How the churn campaign is sized, how hostile its transport is and when
/// its waves and churn events fire.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Number of vehicles registered at the start.
    pub vehicles: usize,
    /// Worker ECUs per vehicle.
    pub workers_per_vehicle: u16,
    /// Symmetric loss probability of the external transport.
    pub loss_probability: f64,
    /// Base delivery latency of the external transport.
    pub latency_ticks: u64,
    /// Per-link latency jitter in ticks (FIFO order is preserved).
    pub jitter_ticks: u64,
    /// Seed of the transport's fault models.
    pub seed: u64,
    /// Server-side retransmission policy.
    pub retry: RetryPolicy,
    /// Ticks between periodic reconcile sweeps (the convergent control
    /// loop; reboot recovery itself is event-driven and does not need it).
    pub reconcile_interval: u64,
    /// Tick at which the second half of the fleet desires v1 (the first half
    /// desires it at tick 0, so churn events overlap an active wave).
    pub second_wave_tick: u64,
    /// Tick at which `update_count` vehicles are updated v1 → v2.
    pub update_tick: u64,
    /// How many surviving vehicles are updated to v2.
    pub update_count: usize,
    /// Hard horizon for the whole campaign, in ticks.
    pub max_ticks: u64,
    /// The scheduled churn events.
    pub plan: ChurnPlan,
    /// Server shard count (1 = serial fleet tick; more shards run the same
    /// campaign shard-parallel).
    pub shards: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            vehicles: 8,
            workers_per_vehicle: 3,
            loss_probability: 0.10,
            latency_ticks: 1,
            jitter_ticks: 2,
            seed: 0xC0FFEE,
            retry: RetryPolicy::default(),
            reconcile_interval: 50,
            second_wave_tick: 40,
            update_tick: 260,
            update_count: 2,
            max_ticks: 3_000,
            plan: ChurnPlan {
                // Vehicle 0 reboots mid-install of wave 1; vehicle 3 reboots
                // again later, after it converged, to exercise re-resync.
                reboots: vec![(15, 0), (150, 3)],
                // Vehicle 1 leaves while its wave-1 operations are pending.
                removals: vec![(8, 1)],
                additions: vec![80],
            },
            shards: 1,
        }
    }
}

/// Outcome counters of one full churn campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// Fleet ticks consumed by the whole campaign.
    pub ticks: u64,
    /// Vehicles in the fleet at the end (initial - removed + added).
    pub surviving: usize,
    /// Reboots executed.
    pub rebooted: usize,
    /// Vehicles removed mid-run.
    pub removed: usize,
    /// Vehicles added mid-run.
    pub added: usize,
    /// Operations escalated by the reliability/lifecycle plane (retry
    /// exhaustion and fail-fast unreachable failures combined).
    pub retry_failures: u64,
    /// Replacement installs the worker PIRTEs performed (server-driven
    /// convergence after lost acks; 0 unless acks were lost at the wrong
    /// moment).
    pub reinstalls: u64,
    /// Final transport statistics (conservation held at every tick).
    pub transport: TransportStats,
}

/// The fleet scenario wrapped in membership churn.
#[derive(Debug)]
pub struct ChurnScenario {
    /// The underlying fleet scenario (server, hub, vehicles, handles).
    pub inner: FleetScenario,
    config: ChurnConfig,
    /// Initial registration order (indices in [`ChurnPlan`] refer to this).
    initial_ids: Vec<VehicleId>,
    /// Ids removed so far (skipped by later events).
    removed_ids: Vec<VehicleId>,
}

impl ChurnScenario {
    /// Builds a churn scenario with the default configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from any subsystem.
    pub fn build() -> Result<Self> {
        Self::build_with(ChurnConfig::default())
    }

    /// Builds a churn scenario with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from any subsystem.
    pub fn build_with(config: ChurnConfig) -> Result<Self> {
        let mut inner = FleetScenario::build_with(FleetScenarioConfig {
            vehicles: config.vehicles,
            workers_per_vehicle: config.workers_per_vehicle,
            transport: TransportConfig {
                latency_ticks: config.latency_ticks,
                loss_probability: config.loss_probability,
                seed: config.seed,
            },
            shards: config.shards,
            ..FleetScenarioConfig::default()
        })?;
        inner.fleet.server.set_retry_policy(config.retry.clone());
        let initial_ids: Vec<VehicleId> = inner.fleet.vehicle_ids().to_vec();
        let scenario = ChurnScenario {
            inner,
            config,
            initial_ids,
            removed_ids: Vec::new(),
        };
        for id in scenario.initial_ids.clone() {
            scenario_install_jitter(&scenario.inner, &id, scenario.config.jitter_ticks);
        }
        Ok(scenario)
    }

    /// The active configuration.
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// Vehicles removed by the campaign so far.
    pub fn removed_ids(&self) -> &[VehicleId] {
        &self.removed_ids
    }

    /// One fleet tick under churn, asserting transport conservation.
    ///
    /// # Errors
    ///
    /// Propagates fleet step errors; returns
    /// [`DynarError::ProtocolViolation`] if conservation is violated.
    pub fn step(&mut self) -> Result<()> {
        self.inner.fleet.step()?;
        let stats = self.inner.fleet.transport_stats();
        if !stats.is_conserved() {
            return Err(DynarError::ProtocolViolation(format!(
                "transport stats conservation violated at tick {}: {stats:?}",
                self.inner.fleet.now()
            )));
        }
        Ok(())
    }

    /// Runs the full churn campaign: staggered v1 waves, scheduled reboots,
    /// removals and additions overlapping them, a v1 → v2 update of a subset,
    /// a periodic reconcile sweep closing every gap, and a final
    /// ground-truth verification round.
    ///
    /// # Errors
    ///
    /// Propagates step errors and invariant violations; returns
    /// [`DynarError::RetryExhausted`] if the fleet does not converge within
    /// the configured horizon.
    pub fn run(&mut self) -> Result<ChurnReport> {
        let user = self.inner.user.clone();
        let v1 = AppId::new(APP_TELEMETRY);
        let v2 = AppId::new(APP_TELEMETRY_V2);
        let mut report = ChurnReport::default();

        // Wave 1: the first half of the fleet desires v1.
        let half = self.initial_ids.len() / 2;
        for id in &self.initial_ids[..half] {
            self.inner.fleet.server.set_desired(&user, id, &v1)?;
        }

        let mut reboots = self.config.plan.reboots.clone();
        let mut removals = self.config.plan.removals.clone();
        let mut additions = self.config.plan.additions.clone();
        let mut second_wave_done = false;
        let mut update_done = false;
        let mut updated: Vec<VehicleId> = Vec::new();

        loop {
            let now = self.inner.fleet.now().as_u64();
            if now >= self.config.max_ticks {
                return Err(DynarError::RetryExhausted {
                    operation: format!(
                        "churn campaign convergence within {} ticks",
                        self.config.max_ticks
                    ),
                    attempts: u32::try_from(now).unwrap_or(u32::MAX),
                });
            }

            // --- Scheduled churn events -----------------------------------
            let mut due_reboots = Vec::new();
            reboots.retain(|&(tick, index)| {
                if tick <= now {
                    due_reboots.push(index);
                    false
                } else {
                    true
                }
            });
            for index in due_reboots {
                let id = self.initial_ids[index].clone();
                if self.removed_ids.contains(&id) {
                    continue;
                }
                self.inner.reboot_vehicle(&id)?;
                // Jitter faults are keyed by endpoint *name* and survive the
                // re-registration, so the rebooted link stays as hostile as
                // before.
                report.rebooted += 1;
            }
            let mut due_removals = Vec::new();
            removals.retain(|&(tick, index)| {
                if tick <= now {
                    due_removals.push(index);
                    false
                } else {
                    true
                }
            });
            for index in due_removals {
                let id = self.initial_ids[index].clone();
                if self.removed_ids.contains(&id) {
                    continue;
                }
                self.inner.remove_vehicle(&id)?;
                self.removed_ids.push(id);
                report.removed += 1;
            }
            let mut due_additions = 0usize;
            additions.retain(|&tick| {
                if tick <= now {
                    due_additions += 1;
                    false
                } else {
                    true
                }
            });
            for _ in 0..due_additions {
                let id = self.inner.add_vehicle_during_run()?;
                scenario_install_jitter(&self.inner, &id, self.config.jitter_ticks);
                self.inner.fleet.server.set_desired(&user, &id, &v1)?;
                report.added += 1;
            }

            // --- Staggered waves ------------------------------------------
            if !second_wave_done && now >= self.config.second_wave_tick {
                second_wave_done = true;
                for id in &self.initial_ids[half..] {
                    if self.removed_ids.contains(id) {
                        continue;
                    }
                    self.inner.fleet.server.set_desired(&user, id, &v1)?;
                }
            }
            if !update_done && now >= self.config.update_tick {
                update_done = true;
                updated = self
                    .inner
                    .fleet
                    .vehicle_ids()
                    .iter()
                    .take(self.config.update_count)
                    .cloned()
                    .collect();
                for id in updated.clone() {
                    self.inner.fleet.server.clear_desired(&user, &id, &v1)?;
                    self.inner.fleet.server.set_desired(&user, &id, &v2)?;
                }
            }

            // --- The convergent control loop ------------------------------
            if self.config.reconcile_interval > 0
                && now.is_multiple_of(self.config.reconcile_interval)
            {
                for id in self.inner.fleet.vehicle_ids().to_vec() {
                    let _ = self.inner.fleet.server.reconcile(&id);
                }
            }

            self.step()?;

            // --- Done? ----------------------------------------------------
            let events_pending = !reboots.is_empty()
                || !removals.is_empty()
                || !additions.is_empty()
                || !second_wave_done
                || !update_done;
            if !events_pending && self.fleet_converged() {
                break;
            }
        }

        // Ground truth: ask every surviving ECM for a state report and let
        // the resync path confirm (or repair) the server's observed state;
        // requests and reports travel the same lossy links, so several
        // rounds are issued.
        for _ in 0..8 {
            for id in self.inner.fleet.vehicle_ids().to_vec() {
                let _ = self.inner.fleet.server.request_state_report(&id);
            }
            for _ in 0..12 {
                self.step()?;
            }
            if self.fleet_converged() {
                break;
            }
        }
        self.verify_converged(&updated)?;

        report.ticks = self.inner.fleet.stats().ticks;
        report.surviving = self.inner.fleet.len();
        report.retry_failures = self.inner.fleet.stats().retry_failures;
        report.reinstalls = self
            .inner
            .handles()
            .iter()
            .flat_map(|h| h.workers.iter())
            .map(|(_, _, pirte)| pirte.lock().stats().reinstalls)
            .sum();
        report.transport = self.inner.fleet.transport_stats();
        Ok(report)
    }

    /// Returns `true` when every surviving vehicle reached exactly its
    /// desired manifest and nothing is pending or outstanding.
    pub fn fleet_converged(&self) -> bool {
        let server = &self.inner.fleet.server;
        self.inner.fleet.vehicle_ids().iter().all(|id| {
            server.pending_operations(id).is_empty()
                && server.outstanding_count(id) == 0
                && manifest_reached(server, id)
        })
    }

    /// Checks the campaign's end-state guarantees, naming the first vehicle
    /// that violates one.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] describing the violation.
    pub fn verify_converged(&self, updated: &[VehicleId]) -> Result<()> {
        let server = &self.inner.fleet.server;
        for handle in self.inner.handles() {
            let id = &handle.id;
            let desired = server.desired_manifest(id);
            for app in &desired {
                let status = server.deployment_status(id, app);
                if status != DeploymentStatus::Installed {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{id}: desired app {app} resolved to {status:?}, not Installed"
                    )));
                }
            }
            if updated.contains(id) && desired != vec![AppId::new(APP_TELEMETRY_V2)] {
                return Err(DynarError::ProtocolViolation(format!(
                    "{id}: updated vehicle's manifest is {desired:?}"
                )));
            }
            // Ground truth: the worker PIRTEs host exactly the plug-ins the
            // manifest implies — no leftovers, no double-applies.
            for (worker, _, pirte) in &handle.workers {
                let pirte = pirte.lock();
                let stats = pirte.stats();
                if stats.rejected_operations != 0 {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{id}/{worker}: {} rejected operations — a duplicate crossed \
                         a boot epoch or the dedup window",
                        stats.rejected_operations
                    )));
                }
                let mut expected: Vec<PluginId> = desired
                    .iter()
                    .map(|app| expected_plugin(app, *worker))
                    .collect();
                expected.sort();
                let mut actual: Vec<PluginId> = pirte
                    .plugin_states()
                    .into_iter()
                    .map(|(plugin, _)| plugin)
                    .collect();
                actual.sort();
                if actual != expected {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{id}/{worker}: PIRTE hosts {actual:?}, manifest implies {expected:?}"
                    )));
                }
                if !pirte.verify_compiled_routes() {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{id}/{worker}: compiled routes diverged"
                    )));
                }
            }
            // The server's observed state matches the ground truth the
            // state-report rounds just re-confirmed.
            let observed = server.installed_apps(id);
            if observed != desired {
                return Err(DynarError::ProtocolViolation(format!(
                    "{id}: observed {observed:?} diverges from desired {desired:?} \
                     after truth resync"
                )));
            }
        }
        // Removed vehicles failed fast with the distinct unreachable reason
        // (unless their wave had already fully converged before removal).
        for id in &self.removed_ids {
            if !server.pending_operations(id).is_empty() {
                return Err(DynarError::ProtocolViolation(format!(
                    "{id}: removed vehicle still has pending operations"
                )));
            }
            if let DeploymentStatus::Failed(reason) =
                server.deployment_status(id, &AppId::new(APP_TELEMETRY))
            {
                if !reason.contains("unreachable") {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{id}: removed vehicle failed with '{reason}', expected the \
                         distinct unreachable reason"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// `true` once `vehicle`'s server-side state equals its desired manifest.
fn manifest_reached(server: &TrustedServer, vehicle: &VehicleId) -> bool {
    let desired = server.desired_manifest(vehicle);
    server.installed_apps(vehicle) == desired
        && desired
            .iter()
            .all(|app| server.deployment_status(vehicle, app) == DeploymentStatus::Installed)
}

/// The plug-in id `app` places on `worker` (mirrors
/// [`crate::scenario::fleet::telemetry_app`]'s naming).
fn expected_plugin(app: &AppId, worker: EcuId) -> PluginId {
    let suffix = if app.name() == APP_TELEMETRY_V2 {
        "2"
    } else {
        ""
    };
    PluginId::new(format!("OP{suffix}-{worker}"))
}

/// Installs the scenario's jitter fault on both directions of one vehicle's
/// server link (faults are name-keyed and survive reboots).
fn scenario_install_jitter(inner: &FleetScenario, id: &VehicleId, jitter_ticks: u64) {
    if jitter_ticks == 0 {
        return;
    }
    let Some(endpoint) = inner.fleet.endpoint_of(id).map(str::to_owned) else {
        return;
    };
    let server = inner.fleet.server_endpoint().to_owned();
    inner
        .fleet
        .set_link_fault(&server, &endpoint, LinkFault::jittery(jitter_ticks));
    inner
        .fleet
        .set_link_fault(&endpoint, &server, LinkFault::jittery(jitter_ticks));
}

#[cfg(test)]
mod tests {
    use super::*;

    // The pinned-seed acceptance campaign (20 vehicles, 10 % loss) lives in
    // `tests/churn.rs`, which CI runs as its own step; the unit tests here
    // keep the scenario's building blocks honest at a smaller size.

    #[test]
    fn lossless_churn_converges_quickly() {
        let mut scenario = ChurnScenario::build_with(ChurnConfig {
            vehicles: 4,
            workers_per_vehicle: 2,
            loss_probability: 0.0,
            jitter_ticks: 0,
            update_count: 1,
            second_wave_tick: 30,
            update_tick: 120,
            plan: ChurnPlan {
                reboots: vec![(10, 0)],
                removals: vec![(6, 1)],
                additions: vec![40],
            },
            ..ChurnConfig::default()
        })
        .unwrap();
        let report = scenario.run().unwrap();
        assert_eq!(report.rebooted, 1, "{report:?}");
        assert_eq!(report.removed, 1, "{report:?}");
        assert_eq!(report.added, 1, "{report:?}");
        assert_eq!(report.surviving, 4, "{report:?}");
        assert!(report.transport.is_conserved());
    }

    #[test]
    fn reboot_before_any_wave_recovers_to_an_empty_manifest() {
        let mut scenario = ChurnScenario::build_with(ChurnConfig {
            vehicles: 2,
            workers_per_vehicle: 2,
            loss_probability: 0.0,
            jitter_ticks: 0,
            reconcile_interval: 10,
            second_wave_tick: 5,
            update_tick: 10,
            update_count: 0,
            plan: ChurnPlan::default(),
            ..ChurnConfig::default()
        })
        .unwrap();
        // Manually reboot before anything is desired: the vehicle must come
        // back online purely through the announce/resync protocol.
        let id = scenario.inner.fleet.vehicle_ids()[0].clone();
        scenario.inner.reboot_vehicle(&id).unwrap();
        assert!(!scenario.inner.fleet.server.is_online(&id));
        for _ in 0..30 {
            scenario.step().unwrap();
        }
        assert!(
            scenario.inner.fleet.server.is_online(&id),
            "announce landed"
        );
        assert_eq!(scenario.inner.fleet.server.vehicle_boot_epoch(&id), Some(1));

        // Even with an empty manifest the server confirmed the epoch (a
        // state-report request is an own-epoch downlink), so the gateway
        // stops re-announcing: the external link goes and stays quiet.
        let before = scenario.inner.fleet.transport_stats().sent;
        for _ in 0..100 {
            scenario.step().unwrap();
        }
        let after = scenario.inner.fleet.transport_stats().sent;
        assert_eq!(
            before, after,
            "no unbounded re-announce traffic after confirmation"
        );
    }
}
