//! The smallest useful dynamic-AUTOSAR system: one ECU, one plug-in SW-C,
//! one dynamically installed plug-in.

use dynar_bus::frame::CanId;
use dynar_core::context::{InstallationContext, LinkTarget, PortInitContext, PortLinkContext};
use dynar_core::message::InstallationPackage;
use dynar_core::plugin::PluginPortDirection;
use dynar_core::swc::{PluginSwc, PluginSwcConfig, SharedPirte};
use dynar_core::virtual_port::{PortDataDirection, PortKind, VirtualPortSpec};
use dynar_foundation::error::Result;
use dynar_foundation::ids::{AppId, EcuId, PluginId, PluginPortId, SwcId, VirtualPortId};
use dynar_foundation::value::Value;
use dynar_rte::ecu::Ecu;
use dynar_vm::assembler::assemble;

/// Frame id used to inject sensor values into the quickstart ECU.
pub const SENSOR_FRAME: u32 = 0x100;

/// A single-ECU system hosting one plug-in SW-C with a `SensorIn` and an
/// `ActuatorOut` virtual port.
#[derive(Debug)]
pub struct Quickstart {
    /// The simulated ECU.
    pub ecu: Ecu,
    /// The plug-in SW-C instance hosting the PIRTE.
    pub swc: SwcId,
    /// Shared handle to the PIRTE.
    pub pirte: SharedPirte,
}

impl Quickstart {
    /// Builds the system and installs a plug-in that doubles every sensor
    /// value and writes it to the actuator port.
    ///
    /// # Errors
    ///
    /// Propagates configuration and installation errors.
    pub fn build() -> Result<Self> {
        let ecu_id = EcuId::new(1);
        let config = PluginSwcConfig::new("plugin-swc")
            .with_virtual_port(VirtualPortSpec::new(
                VirtualPortId::new(0),
                "SensorIn",
                PortKind::TypeIII,
                PortDataDirection::ToPlugins,
                "sensor_in",
            ))
            .with_virtual_port(VirtualPortSpec::new(
                VirtualPortId::new(1),
                "ActuatorOut",
                PortKind::TypeIII,
                PortDataDirection::ToSystem,
                "actuator_out",
            ));
        let mut ecu = Ecu::new(ecu_id);
        let descriptor = config.descriptor()?;
        let (behavior, pirte) = PluginSwc::create(ecu_id, config);
        let swc = ecu.add_component(descriptor, Box::new(behavior))?;
        ecu.map_signal_in(CanId::new(SENSOR_FRAME)?, swc, "sensor_in")?;

        let binary = assemble(
            "doubler",
            r#"
        loop:
            port_pending 0
            push_int 0
            gt
            jump_if_false idle
            take_port 0
            push_int 2
            mul
            write_port 1
            jump loop
        idle:
            yield
            jump loop
            "#,
        )?
        .to_bytes();
        let context = InstallationContext::new(
            PortInitContext::new()
                .with_port(
                    "sensor",
                    PluginPortId::new(0),
                    PluginPortDirection::Required,
                )
                .with_port(
                    "actuator",
                    PluginPortId::new(1),
                    PluginPortDirection::Provided,
                ),
            PortLinkContext::new()
                .with_link(
                    PluginPortId::new(0),
                    LinkTarget::VirtualPort(VirtualPortId::new(0)),
                )
                .with_link(
                    PluginPortId::new(1),
                    LinkTarget::VirtualPort(VirtualPortId::new(1)),
                ),
        );
        pirte.lock().install(InstallationPackage::new(
            PluginId::new("doubler"),
            AppId::new("quickstart"),
            binary,
            context,
        ))?;
        Ok(Quickstart { ecu, swc, pirte })
    }

    /// Feeds one sensor value into the system and runs a few ticks.
    ///
    /// # Errors
    ///
    /// Propagates ECU step errors.
    pub fn feed_sensor(&mut self, value: i64) -> Result<()> {
        self.ecu
            .deliver_inbound(CanId::new(SENSOR_FRAME)?, Value::I64(value));
        self.ecu.run(3)
    }

    /// The last value the plug-in wrote to the actuator SW-C port.
    ///
    /// # Errors
    ///
    /// Propagates port-resolution errors.
    pub fn actuator_output(&self) -> Result<Value> {
        self.ecu.rte().read_port_by_name(self.swc, "actuator_out")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_doubles_sensor_values() {
        let mut system = Quickstart::build().unwrap();
        system.feed_sensor(21).unwrap();
        assert_eq!(system.actuator_output().unwrap(), Value::I64(42));
        system.feed_sensor(5).unwrap();
        assert_eq!(system.actuator_output().unwrap(), Value::I64(10));
        assert_eq!(system.pirte.lock().plugin_count(), 1);
    }
}
