//! The Figure 3 demonstrator: a smart phone remotely controls a two-ECU
//! model car through dynamically installed COM and OP plug-ins.
//!
//! The topology matches the paper's Section 4:
//!
//! * **ECU1** hosts the ECM SW-C (which is itself a plug-in SW-C).  The COM
//!   plug-in is installed there; its external ports are fed by the phone via
//!   the ECM (ECC routes `Wheels` and `Speed`), and its forward ports are
//!   linked through the type II virtual port V0 to the OP plug-in on ECU2.
//! * **ECU2** hosts a plug-in SW-C (virtual ports V3–V6) and the built-in
//!   chassis SW-C.  The OP plug-in is installed there; it forwards the
//!   incoming commands through the type III virtual ports `WheelsReq` and
//!   `SpeedReq` to the chassis.
//! * The **trusted server** stores the `remote-control` application and
//!   generates the PIC/PLC/ECC contexts exactly as described in §4.

use dynar_bus::frame::CanId;
use dynar_bus::network::BusConfig;
use dynar_core::plugin::PluginPortDirection;
use dynar_core::swc::{PluginSwc, PluginSwcConfig, SharedPirte};
use dynar_core::virtual_port::{PortDataDirection, PortKind, VirtualPortSpec};
use dynar_ecm::gateway::{EcmConfig, EcmSwc};
use dynar_fes::device::SmartPhone;
use dynar_fes::transport::TransportConfig;
use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{AppId, EcuId, PluginId, UserId, VehicleId, VirtualPortId};
use dynar_rte::ecu::Ecu;
use dynar_server::model::{
    AppDefinition, ConnectionDecl, HwConf, PluginArtifact, PluginPortDecl, PluginSwcDecl, SwConf,
    SystemSwConf, VirtualPortDecl, VirtualPortKindDecl,
};
use dynar_server::server::{DeploymentStatus, TrustedServer};
use dynar_vm::assembler::assemble;

use crate::plant::{CarPlant, SharedPlantState};
use crate::world::{Vehicle, World};

/// Frame carrying multiplexed plug-in data from ECU1 to ECU2 (S0 → S3).
pub const FRAME_PLUGIN_DATA: u32 = 0x210;
/// Frame carrying management messages from the ECM to ECU2 (type I).
pub const FRAME_MGMT_DOWN: u32 = 0x220;
/// Frame carrying acknowledgements from ECU2 back to the ECM (type I).
pub const FRAME_MGMT_UP: u32 = 0x230;

/// Name of the application stored on the trusted server.
pub const APP_NAME: &str = "remote-control";

/// What happened during a drive.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DriveReport {
    /// Commands the phone sent.
    pub commands_sent: u64,
    /// Commands that reached the chassis actuators.
    pub commands_delivered: u64,
    /// Final speed of the car in m/s.
    pub final_speed: f64,
    /// Final wheel angle in degrees.
    pub final_wheel_angle: f64,
    /// Distance travelled in metres.
    pub odometer: f64,
}

/// The assembled Figure 3 system.
#[derive(Debug)]
pub struct RemoteCarScenario {
    world: World,
    phone: SmartPhone,
    ecm_pirte: SharedPirte,
    pirte2: SharedPirte,
    plant: SharedPlantState,
    user: UserId,
    app: AppId,
}

impl RemoteCarScenario {
    /// Builds the two-ECU vehicle, the trusted server catalogue and the
    /// phone, without installing anything yet.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from any of the subsystems.
    pub fn build() -> Result<Self> {
        Self::build_with(BusConfig::default(), TransportConfig::default())
    }

    /// Builds the scenario with explicit bus and transport configurations
    /// (used by the fault-injection and latency experiments).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from any of the subsystems.
    pub fn build_with(bus: BusConfig, transport: TransportConfig) -> Result<Self> {
        let ecu1_id = EcuId::new(1);
        let ecu2_id = EcuId::new(2);

        // --- ECU1: the ECM SW-C -----------------------------------------
        let ecm_swc_config =
            PluginSwcConfig::new("ecm-swc").with_virtual_port(VirtualPortSpec::new(
                VirtualPortId::new(0),
                "PluginData",
                PortKind::TypeII,
                PortDataDirection::ToSystem,
                "s0_out",
            ));
        let ecm_config = EcmConfig::new(ecm_swc_config, "vehicle-1", "server").with_remote_swc(
            ecu2_id,
            "to_ecu2",
            "from_ecu2",
        );

        // --- ECU2: the plug-in SW-C and the chassis ----------------------
        let swc2_config = PluginSwcConfig::new("plugin-swc-2")
            .with_type_i_ports("mgmt_in", "mgmt_out")
            .with_virtual_port(VirtualPortSpec::new(
                VirtualPortId::new(3),
                "PluginDataIn",
                PortKind::TypeII,
                PortDataDirection::ToPlugins,
                "s3_in",
            ))
            .with_virtual_port(VirtualPortSpec::new(
                VirtualPortId::new(4),
                "WheelsReq",
                PortKind::TypeIII,
                PortDataDirection::ToSystem,
                "wheels_req",
            ))
            .with_virtual_port(VirtualPortSpec::new(
                VirtualPortId::new(5),
                "SpeedReq",
                PortKind::TypeIII,
                PortDataDirection::ToSystem,
                "speed_req",
            ))
            .with_virtual_port(VirtualPortSpec::new(
                VirtualPortId::new(6),
                "SpeedProv",
                PortKind::TypeIII,
                PortDataDirection::ToPlugins,
                "speed_prov",
            ));

        // --- Trusted server ----------------------------------------------
        let mut server = TrustedServer::new();
        let user = UserId::new("alice");
        let vehicle_id = VehicleId::new("VIN-MODEL-CAR-1");
        server.create_user(user.clone())?;
        server.register_vehicle(vehicle_id.clone(), hw_conf(), system_sw_conf())?;
        server.bind_vehicle(&user, &vehicle_id)?;
        server.upload_app(remote_control_app()?)?;

        // --- Wire the vehicle ---------------------------------------------
        let mut ecu1 = Ecu::new(ecu1_id);
        let mut ecu2 = Ecu::new(ecu2_id);

        // The external transport hub is shared between the world, the ECM and
        // the phone.
        let hub: dynar_ecm::gateway::SharedHub = std::sync::Arc::new(parking_lot::Mutex::new(
            dynar_fes::transport::TransportHub::new(transport),
        ));

        let ecm_descriptor = ecm_config.descriptor()?;
        let (ecm_behavior, ecm_pirte) = EcmSwc::create(ecu1_id, ecm_config, hub.clone());
        let ecm_swc = ecu1.add_component(ecm_descriptor, Box::new(ecm_behavior))?;

        let swc2_descriptor = swc2_config.descriptor()?;
        let (swc2_behavior, pirte2) = PluginSwc::create(ecu2_id, swc2_config);
        let swc2 = ecu2.add_component(swc2_descriptor, Box::new(swc2_behavior))?;

        let (plant_behavior, plant) = CarPlant::create(0.01);
        let chassis = ecu2.add_component(CarPlant::descriptor(), Box::new(plant_behavior))?;

        // Local connections on ECU2: type III virtual ports to the chassis.
        ecu2.connect_local(swc2, "wheels_req", chassis, CarPlant::WHEELS_CMD)?;
        ecu2.connect_local(swc2, "speed_req", chassis, CarPlant::SPEED_CMD)?;
        ecu2.connect_local(chassis, CarPlant::SPEED_MEAS, swc2, "speed_prov")?;

        // Cross-ECU signal mapping.
        let plugin_data = CanId::new(FRAME_PLUGIN_DATA)?;
        let mgmt_down = CanId::new(FRAME_MGMT_DOWN)?;
        let mgmt_up = CanId::new(FRAME_MGMT_UP)?;
        ecu1.map_signal_out(ecm_swc, "s0_out", plugin_data)?;
        ecu2.map_signal_in(plugin_data, swc2, "s3_in")?;
        ecu1.map_signal_out(ecm_swc, "to_ecu2", mgmt_down)?;
        ecu2.map_signal_in(mgmt_down, swc2, "mgmt_in")?;
        ecu2.map_signal_out(swc2, "mgmt_out", mgmt_up)?;
        ecu1.map_signal_in(mgmt_up, ecm_swc, "from_ecu2")?;

        let mut vehicle = Vehicle::new(vec![ecu1, ecu2], bus);
        vehicle.open_acceptance_filters(&[plugin_data, mgmt_down, mgmt_up]);

        let world = World::new(
            server,
            vehicle,
            vehicle_id.clone(),
            "server",
            "vehicle-1",
            hub,
        );

        let phone = SmartPhone::new("phone", "vehicle-1");
        phone.attach(&mut *world.hub.lock());

        Ok(RemoteCarScenario {
            world,
            phone,
            ecm_pirte,
            pirte2,
            plant,
            user,
            app: AppId::new(APP_NAME),
        })
    }

    /// The shared handle to the ECM's PIRTE (on ECU1).
    pub fn ecm_pirte(&self) -> SharedPirte {
        self.ecm_pirte.clone()
    }

    /// The shared handle to the PIRTE of the plug-in SW-C on ECU2.
    pub fn pirte2(&self) -> SharedPirte {
        self.pirte2.clone()
    }

    /// The car plant state.
    pub fn plant_state(&self) -> SharedPlantState {
        self.plant.clone()
    }

    /// Mutable access to the world (server, hub, vehicle).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Deploys the `remote-control` application through the trusted server
    /// and runs the system until both plug-ins acknowledged installation.
    ///
    /// # Errors
    ///
    /// Returns the server's deployment rejection, or
    /// [`DynarError::ProtocolViolation`] if the installation did not complete
    /// within a generous time budget.
    pub fn install_app(&mut self) -> Result<()> {
        let vehicle_id = self.world.vehicle_id().clone();
        self.world
            .server
            .deploy(&self.user, &vehicle_id, &self.app)?;
        for _ in 0..400 {
            self.world.step()?;
            if self.world.server.deployment_status(&vehicle_id, &self.app)
                == DeploymentStatus::Installed
            {
                return Ok(());
            }
        }
        Err(DynarError::ProtocolViolation(format!(
            "installation did not complete: {:?}",
            self.world.server.deployment_status(&vehicle_id, &self.app)
        )))
    }

    /// Drives the car for `ticks` ticks: the phone sends a steering and a
    /// speed command every 10 ticks, and the report captures what reached the
    /// chassis.
    ///
    /// # Errors
    ///
    /// Propagates world step errors.
    pub fn drive(&mut self, ticks: u64) -> Result<DriveReport> {
        let mut sent = 0;
        for tick in 0..ticks {
            if tick % 10 == 0 {
                let angle = ((tick / 10) % 60) as f64 - 30.0;
                let speed = 5.0 + ((tick / 10) % 10) as f64;
                {
                    let mut hub = self.world.hub.lock();
                    self.phone.steer(&mut *hub, angle)?;
                    self.phone.set_speed(&mut *hub, speed)?;
                }
                sent += 2;
            }
            self.world.step()?;
        }
        let plant = *self.plant.lock();
        Ok(DriveReport {
            commands_sent: sent,
            commands_delivered: plant.commands_applied,
            final_speed: plant.speed,
            final_wheel_angle: plant.wheel_angle,
            odometer: plant.odometer,
        })
    }
}

fn hw_conf() -> HwConf {
    HwConf::new()
        .with_ecu(EcuId::new(1), 512)
        .with_ecu(EcuId::new(2), 512)
}

fn system_sw_conf() -> SystemSwConf {
    SystemSwConf::new("model-car")
        .with_swc(PluginSwcDecl {
            ecu: EcuId::new(1),
            swc_name: "ecm-swc".into(),
            is_ecm: true,
            virtual_ports: vec![VirtualPortDecl {
                id: VirtualPortId::new(0),
                name: "PluginData".into(),
                kind: VirtualPortKindDecl::TypeII {
                    peer: EcuId::new(2),
                },
            }],
        })
        .with_swc(PluginSwcDecl {
            ecu: EcuId::new(2),
            swc_name: "plugin-swc-2".into(),
            is_ecm: false,
            virtual_ports: vec![
                VirtualPortDecl {
                    id: VirtualPortId::new(3),
                    name: "PluginDataIn".into(),
                    kind: VirtualPortKindDecl::TypeII {
                        peer: EcuId::new(1),
                    },
                },
                VirtualPortDecl {
                    id: VirtualPortId::new(4),
                    name: "WheelsReq".into(),
                    kind: VirtualPortKindDecl::TypeIII,
                },
                VirtualPortDecl {
                    id: VirtualPortId::new(5),
                    name: "SpeedReq".into(),
                    kind: VirtualPortKindDecl::TypeIII,
                },
                VirtualPortDecl {
                    id: VirtualPortId::new(6),
                    name: "SpeedProv".into(),
                    kind: VirtualPortKindDecl::TypeIII,
                },
            ],
        })
}

/// The assembly source of the COM plug-in: it consumes external commands on
/// its ports 0 (`Wheels`) and 1 (`Speed`) and forwards them on ports 2 and 3.
pub const COM_SOURCE: &str = r#"
loop:
    port_pending 0
    push_int 0
    gt
    jump_if_false check_speed
    take_port 0
    write_port 2
check_speed:
    port_pending 1
    push_int 0
    gt
    jump_if_false idle
    take_port 1
    write_port 3
idle:
    yield
    jump loop
"#;

/// The assembly source of the OP plug-in: it consumes the forwarded commands
/// on ports 0 and 1 and drives the type III virtual ports through 2 and 3.
pub const OP_SOURCE: &str = COM_SOURCE;

/// Builds the `remote-control` application exactly as a third-party developer
/// would upload it: two plug-in binaries plus the deployment description for
/// the `model-car` vehicle model.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn remote_control_app() -> Result<AppDefinition> {
    let com_binary = assemble("COM", COM_SOURCE)?.to_bytes();
    let op_binary = assemble("OP", OP_SOURCE)?.to_bytes();
    let required = PluginPortDirection::Required;
    let provided = PluginPortDirection::Provided;
    Ok(AppDefinition::new(AppId::new(APP_NAME))
        .with_plugin(PluginArtifact {
            id: PluginId::new("COM"),
            binary: com_binary,
            ports: vec![
                PluginPortDecl {
                    name: "wheels_ext".into(),
                    direction: required,
                },
                PluginPortDecl {
                    name: "speed_ext".into(),
                    direction: required,
                },
                PluginPortDecl {
                    name: "wheels_fwd".into(),
                    direction: provided,
                },
                PluginPortDecl {
                    name: "speed_fwd".into(),
                    direction: provided,
                },
            ],
        })
        .with_plugin(PluginArtifact {
            id: PluginId::new("OP"),
            binary: op_binary,
            ports: vec![
                PluginPortDecl {
                    name: "wheels_in".into(),
                    direction: required,
                },
                PluginPortDecl {
                    name: "speed_in".into(),
                    direction: required,
                },
                PluginPortDecl {
                    name: "wheels_out".into(),
                    direction: provided,
                },
                PluginPortDecl {
                    name: "speed_out".into(),
                    direction: provided,
                },
            ],
        })
        .with_sw_conf(
            SwConf::new("model-car")
                .with_placement(PluginId::new("COM"), EcuId::new(1))
                .with_placement(PluginId::new("OP"), EcuId::new(2))
                .with_connection(
                    PluginId::new("COM"),
                    "wheels_ext",
                    ConnectionDecl::External {
                        endpoint: "phone".into(),
                        message_id: "Wheels".into(),
                    },
                )
                .with_connection(
                    PluginId::new("COM"),
                    "speed_ext",
                    ConnectionDecl::External {
                        endpoint: "phone".into(),
                        message_id: "Speed".into(),
                    },
                )
                .with_connection(
                    PluginId::new("COM"),
                    "wheels_fwd",
                    ConnectionDecl::RemotePlugin {
                        plugin: PluginId::new("OP"),
                        port: "wheels_in".into(),
                    },
                )
                .with_connection(
                    PluginId::new("COM"),
                    "speed_fwd",
                    ConnectionDecl::RemotePlugin {
                        plugin: PluginId::new("OP"),
                        port: "speed_in".into(),
                    },
                )
                .with_connection(
                    PluginId::new("OP"),
                    "wheels_out",
                    ConnectionDecl::VirtualPort {
                        name: "WheelsReq".into(),
                    },
                )
                .with_connection(
                    PluginId::new("OP"),
                    "speed_out",
                    ConnectionDecl::VirtualPort {
                        name: "SpeedReq".into(),
                    },
                ),
        ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn installation_completes_end_to_end() {
        let mut scenario = RemoteCarScenario::build().unwrap();
        scenario.install_app().unwrap();
        assert_eq!(scenario.ecm_pirte().lock().plugin_count(), 1, "COM on ECU1");
        assert_eq!(scenario.pirte2().lock().plugin_count(), 1, "OP on ECU2");
    }

    #[test]
    fn phone_commands_reach_the_wheels() {
        let mut scenario = RemoteCarScenario::build().unwrap();
        scenario.install_app().unwrap();
        let report = scenario.drive(200).unwrap();
        assert!(report.commands_sent >= 20);
        assert!(report.commands_delivered > 0, "{report:?}");
        assert!(report.final_speed > 0.0);
        assert!(report.odometer > 0.0);
    }
}
