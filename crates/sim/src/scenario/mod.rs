//! Ready-made scenarios built on the full stack.
//!
//! * [`remote_car`] — the paper's Section 4 demonstrator: a smart phone
//!   remotely controlling a two-ECU model car through dynamically installed
//!   COM and OP plug-ins (Figure 3).
//! * [`quickstart`] — the smallest useful system: one ECU, one plug-in SW-C,
//!   one plug-in installed through the PIRTE, used by the quickstart example
//!   and the documentation.
//! * [`fleet`] — the federated-scale scenario: N four-ECU vehicles on one
//!   trusted server, staged install/update waves over live signal chains.
//! * [`chaos`] — the fleet scenario over a lossy, jittery, partitioning
//!   transport, asserting that the federation reliability plane converges
//!   every operation without duplicate installs.
//! * [`churn`] — the lifecycle scenario: vehicles reboot, leave and join
//!   mid-wave while desired-state reconciliation drives install/update waves
//!   over a lossy transport, asserting convergence to the manifest against
//!   the ECMs' ground truth.
//! * [`restart`] — the durability scenario: the trusted server crashes
//!   mid-campaign, is reconstructed byte-for-byte from its write-ahead
//!   journal, and re-announces itself under a bumped incarnation id while a
//!   vehicle reboot lands inside the recovery window.
//! * [`campaign`] — the orchestration scenario: staged rollouts driven by
//!   the server's campaign plane — canary waves, health gates, auto-abort on
//!   a bad version and rollback to the recorded last-good manifests — under
//!   loss and mid-wave reboots.

pub mod campaign;
pub mod chaos;
pub mod churn;
pub mod fleet;
pub mod quickstart;
pub mod remote_car;
pub mod restart;
