//! The server-restart scenario: the trusted server crashes mid-campaign and
//! recovers from its write-ahead journal while the fleet keeps living.
//!
//! Where [`crate::scenario::churn`] stresses *vehicle* lifecycle (reboots,
//! removals, joins), this scenario stresses the *server's* lifecycle: at a
//! scheduled tick the server process is killed — everything that only lived
//! in its memory is gone — and a successor is reconstructed by replaying the
//! journal ([`TrustedServer::replay`]).  The successor announces itself to
//! the fleet by bumping its **incarnation id**
//! ([`TrustedServer::begin_incarnation`]), the downlink-side mirror of the
//! vehicles' `boot_epoch`, and re-solicits a state report from every gateway.
//!
//! What must hold:
//!
//! * **Byte identity** — the replayed server's durability snapshot
//!   (`snapshot_bytes`) and operation ledger are *byte-for-byte identical*
//!   to the crashed process's at the moment of the crash.  Recovery is not
//!   "close enough"; it is exact.
//! * **Convergence across both epoch axes** — the campaign converges even
//!   with a vehicle reboot (boot-epoch bump) landing inside the server's
//!   recovery window (incarnation bump).
//! * **No double-apply** — no PIRTE of any incarnation rejects a duplicate
//!   operation, and every actuator value is divisible by exactly the
//!   manifest's gain: stale pre-crash downlinks and post-recovery re-pushes
//!   never apply twice.
//! * **Conservation** — `sent == delivered + lost + dropped + in-flight`
//!   holds on the transport at every tick, the crash included (the transport
//!   outlives the server process, as the real network would).
//! * **Durability survives recovery** — the successor journals too; replaying
//!   *its* journal at the end of the campaign is byte-identical again.

use dynar_fes::transport::{LinkFault, TransportConfig, TransportStats};
use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{AppId, PluginId, VehicleId};
use dynar_server::server::{DeploymentStatus, RetryPolicy, TrustedServer};

use crate::scenario::fleet::{FleetScenario, FleetScenarioConfig, APP_TELEMETRY};

/// How the restart campaign is sized, how hostile its transport is, and when
/// the crash and the concurrent vehicle reboot fire.
#[derive(Debug, Clone)]
pub struct RestartConfig {
    /// Number of vehicles in the fleet.
    pub vehicles: usize,
    /// Worker ECUs per vehicle.
    pub workers_per_vehicle: u16,
    /// Symmetric loss probability of the external transport.
    pub loss_probability: f64,
    /// Base delivery latency of the external transport.
    pub latency_ticks: u64,
    /// Per-link latency jitter in ticks (FIFO order is preserved).
    pub jitter_ticks: u64,
    /// Seed of the transport's fault models.
    pub seed: u64,
    /// Server-side retransmission policy.
    pub retry: RetryPolicy,
    /// Ticks between periodic reconcile sweeps.
    pub reconcile_interval: u64,
    /// Journal compaction interval (records between snapshots).
    pub compaction_interval: u32,
    /// Tick at which the server process crashes and is replayed.
    pub crash_tick: u64,
    /// `(tick, vehicle index)`: a vehicle reboot scheduled to land inside
    /// the server's recovery window, putting both epoch axes in motion.
    pub reboot: Option<(u64, usize)>,
    /// Hard horizon for the whole campaign, in ticks.
    pub max_ticks: u64,
    /// Server shard count (1 = serial fleet tick; more shards run the same
    /// campaign shard-parallel — the journal and its replay stay identical).
    pub shards: usize,
}

impl Default for RestartConfig {
    fn default() -> Self {
        RestartConfig {
            vehicles: 8,
            workers_per_vehicle: 3,
            loss_probability: 0.10,
            latency_ticks: 1,
            jitter_ticks: 2,
            seed: 0xD1ED,
            retry: RetryPolicy::default(),
            reconcile_interval: 50,
            compaction_interval: 64,
            // Mid-install of the wave: packages are in flight, acks pending.
            crash_tick: 12,
            // The reboot lands right after the crash, inside the recovery
            // window, so a boot-epoch bump races the incarnation bump.
            reboot: Some((14, 1)),
            max_ticks: 3_000,
            shards: 1,
        }
    }
}

/// Outcome counters of one full restart campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RestartReport {
    /// Fleet ticks consumed by the whole campaign.
    pub ticks: u64,
    /// Tick at which the crash happened.
    pub crashed_at: u64,
    /// Size of the journal replayed at the crash, in bytes.
    pub journal_bytes: usize,
    /// Server incarnation id at the end (1 = exactly one recovery).
    pub incarnation: u32,
    /// Vehicle reboots executed concurrently with the recovery.
    pub rebooted: usize,
    /// Operations escalated by the reliability plane.
    pub retry_failures: u64,
    /// Final transport statistics (conservation held at every tick).
    pub transport: TransportStats,
}

/// The fleet scenario wrapped in a mid-campaign server crash and recovery.
#[derive(Debug)]
pub struct RestartScenario {
    /// The underlying fleet scenario (server, hub, vehicles, handles).
    pub inner: FleetScenario,
    config: RestartConfig,
}

impl RestartScenario {
    /// Builds a restart scenario with the default configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from any subsystem.
    pub fn build() -> Result<Self> {
        Self::build_with(RestartConfig::default())
    }

    /// Builds a restart scenario with an explicit configuration.  The
    /// server's journal is enabled from the start — a control plane that
    /// only starts journaling after the crash has nothing to replay.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from any subsystem.
    pub fn build_with(config: RestartConfig) -> Result<Self> {
        let mut inner = FleetScenario::build_with(FleetScenarioConfig {
            vehicles: config.vehicles,
            workers_per_vehicle: config.workers_per_vehicle,
            transport: TransportConfig {
                latency_ticks: config.latency_ticks,
                loss_probability: config.loss_probability,
                seed: config.seed,
            },
            shards: config.shards,
            ..FleetScenarioConfig::default()
        })?;
        inner.fleet.server.set_retry_policy(config.retry.clone());
        inner
            .fleet
            .server
            .enable_journal(config.compaction_interval);
        let scenario = RestartScenario { inner, config };
        for id in scenario.inner.fleet.vehicle_ids().to_vec() {
            scenario.install_jitter(&id);
        }
        Ok(scenario)
    }

    /// The active configuration.
    pub fn config(&self) -> &RestartConfig {
        &self.config
    }

    /// One fleet tick, asserting transport conservation.
    ///
    /// # Errors
    ///
    /// Propagates fleet step errors; returns
    /// [`DynarError::ProtocolViolation`] if conservation is violated.
    pub fn step(&mut self) -> Result<()> {
        self.inner.fleet.step()?;
        let stats = self.inner.fleet.transport_stats();
        if !stats.is_conserved() {
            return Err(DynarError::ProtocolViolation(format!(
                "transport stats conservation violated at tick {}: {stats:?}",
                self.inner.fleet.now()
            )));
        }
        Ok(())
    }

    /// Kills the server process and replays its journal into a successor,
    /// asserting byte identity first.  The successor re-enables journaling
    /// (a recovered control plane must be just as durable as the original)
    /// and bumps its incarnation id, re-stamping everything still queued or
    /// outstanding and soliciting a state report from every gateway.
    ///
    /// Returns the size of the replayed journal in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] if the replayed server is
    /// not byte-identical to the crashed one, and propagates replay errors.
    pub fn crash_and_recover(&mut self) -> Result<usize> {
        let journal = self
            .inner
            .fleet
            .server
            .journal_bytes()
            .ok_or_else(|| {
                DynarError::ProtocolViolation("crash scheduled but journaling is off".into())
            })?
            .to_vec();
        // The successor shards its state exactly like the crashed process
        // did — replay is shard-agnostic, so this is a choice, not a need.
        let shards = self.inner.fleet.server.shard_count();
        let mut replayed = TrustedServer::replay_with_shards(&journal, shards)?;

        // Byte identity: the recovered state *is* the crashed state.
        let live = self.inner.fleet.server.snapshot_bytes();
        if replayed.snapshot_bytes() != live {
            return Err(DynarError::ProtocolViolation(
                "replayed server diverges from the crashed one".into(),
            ));
        }
        if replayed.ledger() != self.inner.fleet.server.ledger() {
            return Err(DynarError::ProtocolViolation(
                "replayed ledger diverges from the crashed one".into(),
            ));
        }

        // The successor is a durable server too, and announces itself.
        replayed.enable_journal(self.config.compaction_interval);
        replayed.begin_incarnation();
        // The crashed process is dropped here — everything it only held in
        // memory dies with it, exactly as a real crash would lose it.
        let _crashed = std::mem::replace(&mut self.inner.fleet.server, replayed);
        Ok(journal.len())
    }

    /// Runs the full restart campaign: a fleet-wide v1 install wave driven
    /// declaratively, the scheduled crash + journal recovery mid-wave, a
    /// vehicle reboot landing inside the recovery window, a periodic
    /// reconcile sweep closing every gap, and a final ground-truth
    /// verification round.
    ///
    /// # Errors
    ///
    /// Propagates step errors and invariant violations; returns
    /// [`DynarError::RetryExhausted`] if the fleet does not converge within
    /// the configured horizon.
    pub fn run(&mut self) -> Result<RestartReport> {
        let user = self.inner.user.clone();
        let v1 = AppId::new(APP_TELEMETRY);
        let mut report = RestartReport::default();

        // The whole fleet desires v1 at tick 0: the crash lands mid-wave.
        for id in self.inner.fleet.vehicle_ids().to_vec() {
            self.inner.fleet.server.set_desired(&user, &id, &v1)?;
        }

        let mut crash_pending = true;
        let mut reboot_pending = self.config.reboot;

        loop {
            let now = self.inner.fleet.now().as_u64();
            if now >= self.config.max_ticks {
                return Err(DynarError::RetryExhausted {
                    operation: format!(
                        "restart campaign convergence within {} ticks",
                        self.config.max_ticks
                    ),
                    attempts: u32::try_from(now).unwrap_or(u32::MAX),
                });
            }

            if crash_pending && now >= self.config.crash_tick {
                crash_pending = false;
                report.crashed_at = now;
                report.journal_bytes = self.crash_and_recover()?;
            }
            if let Some((tick, index)) = reboot_pending {
                if now >= tick {
                    reboot_pending = None;
                    let id = self.inner.fleet.vehicle_ids()[index].clone();
                    self.inner.reboot_vehicle(&id)?;
                    report.rebooted += 1;
                }
            }

            if self.config.reconcile_interval > 0
                && now.is_multiple_of(self.config.reconcile_interval)
            {
                for id in self.inner.fleet.vehicle_ids().to_vec() {
                    let _ = self.inner.fleet.server.reconcile(&id);
                }
            }

            self.step()?;

            if !crash_pending && reboot_pending.is_none() && self.fleet_converged() {
                break;
            }
        }

        // Ground truth: state-report rounds over the same lossy links.
        for _ in 0..8 {
            for id in self.inner.fleet.vehicle_ids().to_vec() {
                let _ = self.inner.fleet.server.request_state_report(&id);
            }
            for _ in 0..12 {
                self.step()?;
            }
            if self.fleet_converged() {
                break;
            }
        }
        self.verify_converged()?;

        // The recovered server is durable too: replaying the journal it has
        // been writing since the crash reproduces it byte-for-byte.
        let successor_journal = self
            .inner
            .fleet
            .server
            .journal_bytes()
            .expect("successor journals")
            .to_vec();
        let shadow = TrustedServer::replay_with_shards(
            &successor_journal,
            self.inner.fleet.server.shard_count(),
        )?;
        if shadow.snapshot_bytes() != self.inner.fleet.server.snapshot_bytes() {
            return Err(DynarError::ProtocolViolation(
                "post-recovery journal replay diverges".into(),
            ));
        }

        report.ticks = self.inner.fleet.stats().ticks;
        report.incarnation = self.inner.fleet.server.incarnation();
        report.retry_failures = self.inner.fleet.stats().retry_failures;
        report.transport = self.inner.fleet.transport_stats();
        Ok(report)
    }

    /// Returns `true` when every vehicle reached exactly its desired
    /// manifest and nothing is pending or outstanding.
    pub fn fleet_converged(&self) -> bool {
        let server = &self.inner.fleet.server;
        self.inner.fleet.vehicle_ids().iter().all(|id| {
            let desired = server.desired_manifest(id);
            server.pending_operations(id).is_empty()
                && server.outstanding_count(id) == 0
                && server.installed_apps(id) == desired
                && desired
                    .iter()
                    .all(|app| server.deployment_status(id, app) == DeploymentStatus::Installed)
        })
    }

    /// Checks the campaign's end-state guarantees, naming the first vehicle
    /// that violates one.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] describing the violation.
    pub fn verify_converged(&self) -> Result<()> {
        let server = &self.inner.fleet.server;
        for handle in self.inner.handles() {
            let id = &handle.id;
            let desired = server.desired_manifest(id);
            for app in &desired {
                let status = server.deployment_status(id, app);
                if status != DeploymentStatus::Installed {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{id}: desired app {app} resolved to {status:?}, not Installed"
                    )));
                }
            }
            // Ground truth: the worker PIRTEs host exactly the plug-ins the
            // manifest implies, and no incarnation of any PIRTE ever saw a
            // duplicate — neither a stale pre-crash downlink nor a
            // post-recovery re-push applied twice.
            for (worker, _, pirte) in &handle.workers {
                let pirte = pirte.lock();
                let stats = pirte.stats();
                if stats.rejected_operations != 0 {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{id}/{worker}: {} rejected operations — a duplicate crossed \
                         an epoch axis or the dedup window",
                        stats.rejected_operations
                    )));
                }
                let mut expected: Vec<PluginId> = desired
                    .iter()
                    .map(|_| PluginId::new(format!("OP-{worker}")))
                    .collect();
                expected.sort();
                let mut actual: Vec<PluginId> = pirte
                    .plugin_states()
                    .into_iter()
                    .map(|(plugin, _)| plugin)
                    .collect();
                actual.sort();
                if actual != expected {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{id}/{worker}: PIRTE hosts {actual:?}, manifest implies {expected:?}"
                    )));
                }
                if !pirte.verify_compiled_routes() {
                    return Err(DynarError::ProtocolViolation(format!(
                        "{id}/{worker}: compiled routes diverged"
                    )));
                }
            }
            let observed = server.installed_apps(id);
            if observed != desired {
                return Err(DynarError::ProtocolViolation(format!(
                    "{id}: observed {observed:?} diverges from desired {desired:?} \
                     after truth resync"
                )));
            }
        }
        Ok(())
    }

    /// Installs the scenario's jitter fault on both directions of one
    /// vehicle's server link (faults are name-keyed and survive reboots —
    /// and the server crash, since the transport outlives the process).
    fn install_jitter(&self, id: &VehicleId) {
        if self.config.jitter_ticks == 0 {
            return;
        }
        let Some(endpoint) = self.inner.fleet.endpoint_of(id).map(str::to_owned) else {
            return;
        };
        let server = self.inner.fleet.server_endpoint().to_owned();
        self.inner.fleet.set_link_fault(
            &server,
            &endpoint,
            LinkFault::jittery(self.config.jitter_ticks),
        );
        self.inner.fleet.set_link_fault(
            &endpoint,
            &server,
            LinkFault::jittery(self.config.jitter_ticks),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The pinned-seed acceptance campaign (12 vehicles, 10 % loss) lives in
    // `tests/server_restart.rs`, which CI runs as its own step; the unit
    // tests here keep the scenario's building blocks honest at a smaller
    // size and without loss.

    #[test]
    fn lossless_crash_recovery_converges() {
        let mut scenario = RestartScenario::build_with(RestartConfig {
            vehicles: 3,
            workers_per_vehicle: 2,
            loss_probability: 0.0,
            jitter_ticks: 0,
            crash_tick: 4,
            reboot: Some((6, 0)),
            ..RestartConfig::default()
        })
        .unwrap();
        let report = scenario.run().unwrap();
        assert_eq!(report.incarnation, 1, "{report:?}");
        assert_eq!(report.rebooted, 1, "{report:?}");
        assert!(report.journal_bytes > 0, "{report:?}");
        assert!(report.transport.is_conserved());
    }

    #[test]
    fn aggressive_compaction_preserves_recovery() {
        // A snapshot every 4 records: the crash almost certainly lands with
        // most of the history folded into the snapshot frame, exercising the
        // snapshot ⊕ tail replay path rather than a pure record replay.
        let mut scenario = RestartScenario::build_with(RestartConfig {
            vehicles: 2,
            workers_per_vehicle: 2,
            loss_probability: 0.0,
            jitter_ticks: 0,
            compaction_interval: 4,
            crash_tick: 6,
            reboot: None,
            ..RestartConfig::default()
        })
        .unwrap();
        let report = scenario.run().unwrap();
        assert_eq!(report.incarnation, 1, "{report:?}");
        assert_eq!(report.rebooted, 0, "{report:?}");
    }

    #[test]
    fn crash_before_any_package_was_pushed_recovers() {
        let mut scenario = RestartScenario::build_with(RestartConfig {
            vehicles: 2,
            workers_per_vehicle: 2,
            loss_probability: 0.0,
            jitter_ticks: 0,
            crash_tick: 0,
            reboot: None,
            ..RestartConfig::default()
        })
        .unwrap();
        let report = scenario.run().unwrap();
        assert_eq!(report.crashed_at, 0, "{report:?}");
        assert_eq!(report.incarnation, 1, "{report:?}");
    }
}
