//! The fleet scheduler: many vehicles driven through one trusted server in
//! batched simulation rounds.
//!
//! [`crate::world::World`] couples exactly one [`Vehicle`] to the server —
//! enough for the paper's demonstrators, useless for federated-scale
//! questions ("what happens when an install wave hits 50 vehicles whose
//! signal chains are live?").  [`Fleet`] lifts the same pusher/uplink loop to
//! N vehicles: one shared [`TrustedServer`], an external transport hub with a
//! per-vehicle ECM endpoint, per-vehicle clocks (each [`Vehicle`] keeps its
//! own), and a batched round that moves every vehicle one tick forward per
//! [`Fleet::step`].
//!
//! Deployments can be staged in **install waves** ([`Fleet::deploy_wave`],
//! [`Fleet::install_in_waves`]) so reconfiguration load is spread over the
//! fleet instead of arriving everywhere at once.
//!
//! # Sharded parallel rounds
//!
//! The fleet is partitioned exactly like its server: each vehicle hashes to
//! the server shard given by [`TrustedServer::shard_index`], and the fleet
//! keeps one [`FleetShard`] — entries, endpoint indexes, scratch buffers —
//! plus one **private transport hub** per server shard, so parallel workers
//! never serialize on a single hub lock.  With more than one shard,
//! [`Fleet::step`] fans the per-vehicle phase (reliability tick, downlink
//! push, transport step, vehicle step, uplink processing) out over a fixed
//! [`ThreadPool`] via [`dynar_server::server::ShardHandle`]s; the journal
//! records each shard buffered are then merged in deterministic shard order
//! ([`TrustedServer::merge_shard_journals`]), so a journaled parallel run
//! replays byte-identically.  A single-shard fleet takes a dedicated serial
//! path that preserves the allocation-free steady state pinned by
//! `tests/alloc_regression.rs`.
//!
//! Both paths drain downlinks through the server's **dirty set**
//! ([`TrustedServer::poll_downlink_dirty`]): a management-quiescent tick
//! visits zero vehicles instead of polling all N.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dynar_ecm::gateway::SharedHub;
use dynar_fes::transport::{
    EndpointName, LinkFault, TransportConfig, TransportHub, TransportStats,
};
use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{AppId, PluginId, UserId, VehicleId};
use dynar_foundation::payload::Payload;
use dynar_foundation::pool::ThreadPool;
use dynar_foundation::time::{Clock, Tick};
use dynar_server::server::{DeploymentStatus, RetryFailure, ShardHandle, TrustedServer};

use crate::world::Vehicle;

/// Upper bound on the escalated-failure events [`FleetStats`] retains.  The
/// counter keeps counting past the cap; only the per-event detail is bounded,
/// so a pathological run cannot grow the stats without limit.
pub const MAX_FAILURE_EVENTS: usize = 64;

/// One escalated operation, as retained by [`FleetStats::failure_events`]:
/// which vehicle/app/plug-in exhausted its budget and why.  Campaign health
/// gates and tests can assert *which* operation failed instead of settling
/// for a count.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RetryFailureEvent {
    /// The vehicle whose link gave up.
    pub vehicle: VehicleId,
    /// The application the abandoned package belonged to.
    pub app: AppId,
    /// The plug-in the abandoned package addressed.
    pub plugin: PluginId,
    /// Display form of the typed escalation reason.
    pub error: String,
}

impl From<RetryFailure> for RetryFailureEvent {
    fn from(failure: RetryFailure) -> Self {
        RetryFailureEvent {
            vehicle: failure.vehicle,
            app: failure.app,
            plugin: failure.plugin,
            error: failure.error.to_string(),
        }
    }
}

/// Counters describing fleet-level activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Batched rounds executed so far.
    pub ticks: u64,
    /// Downlink payloads pushed from the server into vehicle ECM endpoints
    /// (retransmissions included).
    pub downlink_messages: u64,
    /// Uplink payloads the server received back from vehicles.
    pub uplink_messages: u64,
    /// Operations the server's reliability plane escalated after exhausting
    /// their retransmission budget.
    pub retry_failures: u64,
    /// Vehicles visited by the dirty-set downlink sweep.  A management-
    /// quiescent tick visits none — the sweep is O(active vehicles), not
    /// O(fleet size) — which `tests/alloc_regression.rs` pins down.
    pub downlink_polls: u64,
    /// The first [`MAX_FAILURE_EVENTS`] escalated failures, each carrying
    /// which (vehicle, app, plug-in) exhausted its budget.  Every batch is
    /// sorted before it is appended: a round's escalation *set* is
    /// deterministic but its sweep order is not (per-shard hash maps), so
    /// sorting keeps the event list — and therefore [`FleetStats`] equality
    /// — identical at every shard count.
    pub failure_events: Vec<RetryFailureEvent>,
}

impl FleetStats {
    /// Counts a batch of escalated failures and retains their details up to
    /// [`MAX_FAILURE_EVENTS`].
    fn record_failures(&mut self, batch: Vec<RetryFailure>) {
        if batch.is_empty() {
            return;
        }
        self.retry_failures += batch.len() as u64;
        let mut events: Vec<RetryFailureEvent> =
            batch.into_iter().map(RetryFailureEvent::from).collect();
        events.sort();
        let room = MAX_FAILURE_EVENTS.saturating_sub(self.failure_events.len());
        events.truncate(room);
        self.failure_events.append(&mut events);
    }
}

#[derive(Debug)]
struct FleetEntry {
    id: VehicleId,
    endpoint: String,
    vehicle: Vehicle,
}

/// The vehicles of one server shard, with the per-shard lookup tables and
/// scratch buffers the shard's worker needs to run its slice of a round
/// without touching any other shard.
#[derive(Debug, Default)]
struct FleetShard {
    entries: Vec<FleetEntry>,
    by_id: HashMap<VehicleId, usize>,
    by_endpoint: HashMap<String, usize>,
    /// Reused drain buffer for this shard's server-endpoint mailbox.
    uplink_scratch: Vec<(EndpointName, Payload)>,
    /// Reused buffer for vehicles whose downlink send failed (parked after
    /// the hub guard is released).
    offline_scratch: Vec<VehicleId>,
}

/// What one shard's worker hands back from its slice of a parallel round.
struct ShardOutcome {
    shard: FleetShard,
    downlink_messages: u64,
    uplink_messages: u64,
    downlink_polls: u64,
    retry_failures: Vec<RetryFailure>,
    error: Option<DynarError>,
}

/// A fleet of vehicles federated through one trusted server.
#[derive(Debug)]
pub struct Fleet {
    /// The shared trusted server.
    pub server: TrustedServer,
    /// One transport hub per server shard (each carries the server endpoint
    /// plus the ECM endpoints of that shard's vehicles).
    hubs: Vec<SharedHub>,
    server_endpoint: String,
    shards: Vec<FleetShard>,
    /// Vehicle ids in registration order (what [`Fleet::vehicle_ids`]
    /// borrows, so callers do not clone the whole fleet's ids per call).
    ids: Vec<VehicleId>,
    /// Position of each vehicle in `ids` (kept in sync across swap-removes).
    ids_at: HashMap<VehicleId, usize>,
    /// Fixed worker pool driving parallel rounds; absent for single-shard
    /// fleets, which take the serial path.
    pool: Option<ThreadPool>,
    clock: Clock,
    stats: FleetStats,
}

impl Fleet {
    /// Creates a fleet around a trusted server, with one fresh transport hub
    /// per server shard built from `transport`.  Per-link fault and jitter
    /// streams are keyed by endpoint *names* (not hub identity), so the same
    /// seed produces the same per-link behaviour at any shard count.
    pub fn new(
        server: TrustedServer,
        server_endpoint: impl Into<String>,
        transport: TransportConfig,
    ) -> Self {
        let server_endpoint = server_endpoint.into();
        let hubs: Vec<SharedHub> = (0..server.shard_count())
            .map(|_| {
                let mut hub = TransportHub::new(transport.clone());
                hub.register(&server_endpoint);
                let shared: SharedHub = Arc::new(Mutex::new(hub));
                shared
            })
            .collect();
        Self::assemble(server, server_endpoint, hubs)
    }

    /// Creates a single-shard fleet sharing an existing transport hub (the
    /// same hub handed to every vehicle's ECM and to external devices).
    ///
    /// # Panics
    ///
    /// Panics if `server` has more than one shard — a sharded fleet needs one
    /// hub per shard, which only [`Fleet::new`] can build.
    pub fn with_hub(
        server: TrustedServer,
        server_endpoint: impl Into<String>,
        hub: SharedHub,
    ) -> Self {
        assert_eq!(
            server.shard_count(),
            1,
            "Fleet::with_hub takes a single-shard server; use Fleet::new for sharded fleets"
        );
        let server_endpoint = server_endpoint.into();
        hub.lock().register(&server_endpoint);
        Self::assemble(server, server_endpoint, vec![hub])
    }

    fn assemble(server: TrustedServer, server_endpoint: String, hubs: Vec<SharedHub>) -> Self {
        let shards = (0..hubs.len()).map(|_| FleetShard::default()).collect();
        let pool = (hubs.len() > 1).then(|| {
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
            // Floor of two workers: even on a single-core host a sharded
            // fleet must cross real thread boundaries, so the Send/locking
            // story is exercised everywhere, not just on big runners.
            ThreadPool::new(hubs.len().min(cores.max(2)))
        });
        Fleet {
            server,
            hubs,
            server_endpoint,
            shards,
            ids: Vec::new(),
            ids_at: HashMap::new(),
            pool,
            clock: Clock::new(),
            stats: FleetStats::default(),
        }
    }

    /// The server shard (and therefore fleet shard and hub) of a vehicle.
    fn shard_index_of(&self, id: &VehicleId) -> usize {
        TrustedServer::shard_index(id, self.shards.len())
    }

    /// `(shard, entry)` coordinates of a vehicle, if it is in the fleet.
    fn slot_of(&self, id: &VehicleId) -> Option<(usize, usize)> {
        let shard = self.shard_index_of(id);
        self.shards[shard]
            .by_id
            .get(id)
            .map(|&entry| (shard, entry))
    }

    /// The transport hub a vehicle's ECM must register on — determined by
    /// the vehicle's shard, so it can be asked *before* the vehicle is built
    /// or added.
    pub fn hub_for(&self, id: &VehicleId) -> SharedHub {
        Arc::clone(&self.hubs[self.shard_index_of(id)])
    }

    /// The per-shard transport hubs, in shard order.
    pub fn hubs(&self) -> &[SharedHub] {
        &self.hubs
    }

    /// Transport statistics aggregated over every shard hub.  Conservation
    /// holds per hub, so it holds for the sums too.
    pub fn transport_stats(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for hub in &self.hubs {
            let stats = hub.lock().stats();
            total.sent += stats.sent;
            total.delivered += stats.delivered;
            total.lost += stats.lost;
            total.dropped += stats.dropped;
            total.in_flight += stats.in_flight;
        }
        total
    }

    /// Installs a fault model on the directed link `from` → `to` of every
    /// shard hub.  Faults are keyed by endpoint names, so the entry is inert
    /// on hubs that never carry that pair.
    ///
    /// # Panics
    ///
    /// Panics if a shard backend does not support fault injection — induced
    /// faults are a capability of the deterministic hub, not of wire
    /// transports.
    pub fn set_link_fault(&self, from: &str, to: &str, fault: LinkFault) {
        for hub in &self.hubs {
            hub.lock()
                .fault_injection()
                .expect("fleet transport backend supports fault injection")
                .set_link_fault(from, to, fault.clone());
        }
    }

    /// Partitions `a` ↔ `b` until `heal_at` on every shard hub (inert where
    /// the pair never communicates).
    ///
    /// # Panics
    ///
    /// Panics if a shard backend does not support fault injection.
    pub fn partition(&self, a: &str, b: &str, heal_at: Tick) {
        for hub in &self.hubs {
            hub.lock()
                .fault_injection()
                .expect("fleet transport backend supports fault injection")
                .partition(a, b, heal_at);
        }
    }

    /// Unregisters an endpoint from whichever shard hub carries it.  Returns
    /// `true` if any hub knew the endpoint.
    pub fn unregister_endpoint(&self, endpoint: &str) -> bool {
        let mut found = false;
        for hub in &self.hubs {
            found |= hub.lock().unregister(endpoint);
        }
        found
    }

    /// Returns `true` if any shard hub currently carries `endpoint`.
    pub fn endpoint_registered(&self, endpoint: &str) -> bool {
        self.hubs
            .iter()
            .any(|hub| hub.lock().is_registered(endpoint))
    }

    /// Adds a wired vehicle under its server-side id and ECM transport
    /// endpoint.  The vehicle's ECM must have registered on the hub of the
    /// vehicle's shard ([`Fleet::hub_for`]).
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::Duplicate`] if the id or endpoint is taken.
    pub fn add_vehicle(
        &mut self,
        id: VehicleId,
        ecm_endpoint: impl Into<String>,
        vehicle: Vehicle,
    ) -> Result<()> {
        let endpoint = ecm_endpoint.into();
        if self.ids_at.contains_key(&id) {
            return Err(DynarError::duplicate("fleet vehicle", id));
        }
        if self
            .shards
            .iter()
            .any(|shard| shard.by_endpoint.contains_key(&endpoint))
        {
            return Err(DynarError::duplicate("fleet endpoint", endpoint));
        }
        self.ids_at.insert(id.clone(), self.ids.len());
        self.ids.push(id.clone());
        let shard_index = TrustedServer::shard_index(&id, self.shards.len());
        let shard = &mut self.shards[shard_index];
        let index = shard.entries.len();
        shard.by_id.insert(id.clone(), index);
        shard.by_endpoint.insert(endpoint.clone(), index);
        shard.entries.push(FleetEntry {
            id,
            endpoint,
            vehicle,
        });
        Ok(())
    }

    /// Adds a vehicle while the fleet is running.  Identical to
    /// [`Fleet::add_vehicle`] — named separately to document that joining
    /// mid-run is safe: the vehicle's ECM already registered its endpoint on
    /// its shard's hub, whose slot generations guarantee that traffic in
    /// flight towards a previous tenant of a reused slot is dropped, never
    /// delivered to the newcomer.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::Duplicate`] if the id or endpoint is taken.
    pub fn add_vehicle_during_run(
        &mut self,
        id: VehicleId,
        ecm_endpoint: impl Into<String>,
        vehicle: Vehicle,
    ) -> Result<()> {
        self.add_vehicle(id, ecm_endpoint, vehicle)
    }

    /// Removes a vehicle for good: its endpoint is unregistered from its
    /// shard's hub (voiding traffic still in flight towards it) and the
    /// server fails every outstanding operation fast with
    /// [`dynar_foundation::error::DynarError::VehicleUnreachable`].  Returns
    /// the detached [`Vehicle`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown vehicles.
    pub fn remove_vehicle(&mut self, id: &VehicleId) -> Result<Vehicle> {
        let shard_index = self.shard_index_of(id);
        let shard = &mut self.shards[shard_index];
        let index = *shard
            .by_id
            .get(id)
            .ok_or_else(|| DynarError::not_found("fleet vehicle", id))?;
        // Swap-remove the entry, then repoint whatever moved into the hole.
        let entry = shard.entries.swap_remove(index);
        shard.by_id.remove(&entry.id);
        shard.by_endpoint.remove(&entry.endpoint);
        if index < shard.entries.len() {
            let moved = &shard.entries[index];
            shard.by_id.insert(moved.id.clone(), index);
            shard.by_endpoint.insert(moved.endpoint.clone(), index);
        }
        // Same dance for the registration-order list.
        let at = self
            .ids_at
            .remove(&entry.id)
            .expect("ids index mirrors the shard tables");
        self.ids.swap_remove(at);
        if at < self.ids.len() {
            self.ids_at.insert(self.ids[at].clone(), at);
        }
        self.hubs[shard_index].lock().unregister(&entry.endpoint);
        self.stats.record_failures(self.server.mark_unreachable(id));
        Ok(entry.vehicle)
    }

    /// Swaps in a freshly built incarnation of a vehicle (same id, same
    /// endpoint) — the mechanical half of a reboot.  The caller is expected
    /// to have unregistered the old endpoint *before* building the new
    /// vehicle (so in-flight traffic towards the dead incarnation is voided
    /// by the hub's slot generations) and to have given the new ECM the next
    /// boot epoch.  Returns the old incarnation.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown vehicles.
    pub fn replace_vehicle(&mut self, id: &VehicleId, vehicle: Vehicle) -> Result<Vehicle> {
        let (shard, index) = self
            .slot_of(id)
            .ok_or_else(|| DynarError::not_found("fleet vehicle", id))?;
        Ok(std::mem::replace(
            &mut self.shards[shard].entries[index].vehicle,
            vehicle,
        ))
    }

    /// Number of vehicles in the fleet.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if the fleet has no vehicles.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The ids of every vehicle, in registration order — borrowed from the
    /// fleet's cached list (callers that need ownership clone explicitly).
    pub fn vehicle_ids(&self) -> &[VehicleId] {
        &self.ids
    }

    /// Read access to a vehicle by id.
    pub fn vehicle(&self, id: &VehicleId) -> Option<&Vehicle> {
        self.slot_of(id)
            .map(|(shard, index)| &self.shards[shard].entries[index].vehicle)
    }

    /// The ECM transport endpoint of a vehicle.
    pub fn endpoint_of(&self, id: &VehicleId) -> Option<&str> {
        self.slot_of(id)
            .map(|(shard, index)| self.shards[shard].entries[index].endpoint.as_str())
    }

    /// The trusted server's transport endpoint.
    pub fn server_endpoint(&self) -> &str {
        &self.server_endpoint
    }

    /// Mutable access to a vehicle by id.
    pub fn vehicle_mut(&mut self, id: &VehicleId) -> Option<&mut Vehicle> {
        self.slot_of(id)
            .map(|(shard, index)| &mut self.shards[shard].entries[index].vehicle)
    }

    /// Current simulated fleet time.
    pub fn now(&self) -> Tick {
        self.clock.now()
    }

    /// Fleet-level activity counters.
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// Advances the whole fleet by one batched round: server downlinks reach
    /// every vehicle's ECM endpoint, the transport delivers, every vehicle
    /// runs one tick, and uplink acknowledgements flow back into the server.
    /// With more than one shard the round runs shard-parallel on the worker
    /// pool; the effects (and the journal) are the same either way.
    ///
    /// # Errors
    ///
    /// Propagates the first vehicle step error.
    pub fn step(&mut self) -> Result<()> {
        let now = self.clock.step();
        if self.shards.len() > 1 {
            self.step_parallel(now)?;
        } else {
            self.step_serial(now)?;
        }
        self.stats.ticks += 1;
        Ok(())
    }

    /// The single-shard round: the original serial pusher/uplink loop with
    /// dirty-set downlink polling.  Steady-state ticks stay allocation-free.
    fn step_serial(&mut self, now: Tick) -> Result<()> {
        let Fleet {
            server,
            hubs,
            shards,
            server_endpoint,
            stats,
            ..
        } = self;
        let shard = &mut shards[0];

        // Reliability plane: requeue overdue packages, escalate dead ones.
        stats.record_failures(server.tick(now));

        // Pusher: queued downlink messages leave the server, batched under a
        // single hub lock.  Destination feedback flows straight back into the
        // server's lifecycle plane: a send into an unregistered endpoint, or
        // an in-flight message dropped because the endpoint unregistered
        // mid-flight, parks the vehicle (mark_offline) instead of letting the
        // retry budget burn against a dead link.
        let mut offline = std::mem::take(&mut shard.offline_scratch);
        {
            let mut hub = hubs[0].lock();
            let entries = &shard.entries;
            let by_id = &shard.by_id;
            let polls = server.poll_downlink_dirty(|vehicle, payload| {
                stats.downlink_messages += 1;
                let Some(&index) = by_id.get(vehicle) else {
                    return;
                };
                if hub
                    .send(server_endpoint.as_str(), &entries[index].endpoint, payload)
                    .is_err()
                {
                    offline.push(vehicle.clone());
                }
            });
            stats.downlink_polls += polls;
            for vehicle in offline.drain(..) {
                server.mark_offline(&vehicle);
            }
            hub.step(now);
            for endpoint in hub.take_dropped_destinations() {
                // A drop towards a *currently registered* endpoint is stale
                // traffic from before a reboot (the slot generation voided
                // it) — the new incarnation's link is alive, so parking the
                // vehicle would strand it.  Only an endpoint that is really
                // gone parks its vehicle.
                if hub.is_registered(endpoint.as_ref()) {
                    continue;
                }
                if let Some(&index) = shard.by_endpoint.get(endpoint.as_ref()) {
                    server.mark_offline(&shard.entries[index].id);
                }
            }
        }
        shard.offline_scratch = offline;

        for entry in &mut shard.entries {
            entry.vehicle.step()?;
        }

        // Uplink: acknowledgements back into the server, attributed to the
        // sending vehicle through its ECM endpoint.  The mailbox drains into
        // a reused buffer — a quiet tick allocates nothing.
        let mut uplinks = std::mem::take(&mut shard.uplink_scratch);
        debug_assert!(uplinks.is_empty());
        hubs[0].lock().drain_into(server_endpoint, &mut uplinks);
        for (from, payload) in uplinks.drain(..) {
            if let Some(&index) = shard.by_endpoint.get(from.as_ref()) {
                stats.uplink_messages += 1;
                let _ = server.process_uplink(&shard.entries[index].id, &payload);
            }
        }
        shard.uplink_scratch = uplinks;

        // Campaign plane: health gates evaluate against the state this round
        // settled into (acknowledgements processed above), and the decisions
        // are journaled at this same point in the record stream.
        let _ = server.step_campaigns();
        Ok(())
    }

    /// The sharded round: the tick is journaled up front, every shard's
    /// slice runs on the worker pool through its [`ShardHandle`] and private
    /// hub, and the per-shard journal buffers are merged in shard order
    /// afterwards — the same record sequence a serial run would have written.
    fn step_parallel(&mut self, now: Tick) -> Result<()> {
        self.server.begin_tick(now);
        let mut tasks: Vec<Box<dyn FnOnce() -> ShardOutcome + Send>> =
            Vec::with_capacity(self.shards.len());
        for handle in self.server.shard_handles() {
            let shard = std::mem::take(&mut self.shards[handle.index()]);
            let hub = Arc::clone(&self.hubs[handle.index()]);
            let server_endpoint = self.server_endpoint.clone();
            tasks.push(Box::new(move || {
                step_shard(&handle, shard, &hub, &server_endpoint, now)
            }));
        }
        let outcomes = self
            .pool
            .as_ref()
            .expect("multi-shard fleet has a worker pool")
            .run(tasks);

        let mut first_error = None;
        let mut failures = Vec::new();
        for (index, outcome) in outcomes.into_iter().enumerate() {
            self.shards[index] = outcome.shard;
            self.stats.downlink_messages += outcome.downlink_messages;
            self.stats.uplink_messages += outcome.uplink_messages;
            self.stats.downlink_polls += outcome.downlink_polls;
            failures.extend(outcome.retry_failures);
            if first_error.is_none() {
                first_error = outcome.error;
            }
        }
        // One batch per round, like the serial path: `record_failures` sorts
        // it, so the retained events match the serial run's exactly.
        self.stats.record_failures(failures);
        self.server.merge_shard_journals();
        // Campaign decisions run (and journal) strictly after the shard
        // merge — the serial point of the round, on converged state, exactly
        // where the serial path evaluates them.
        let _ = self.server.step_campaigns();
        match first_error {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }

    /// Runs [`Fleet::step`] `ticks` times.
    ///
    /// # Errors
    ///
    /// Propagates the first step error.
    pub fn run(&mut self, ticks: u64) -> Result<()> {
        for _ in 0..ticks {
            self.step()?;
        }
        Ok(())
    }

    /// Deploys `app` to one wave of vehicles (without waiting), returning the
    /// total number of installation packages pushed.
    ///
    /// # Errors
    ///
    /// Propagates the server's deployment rejections.
    pub fn deploy_wave(
        &mut self,
        user: &UserId,
        app: &AppId,
        targets: &[VehicleId],
    ) -> Result<usize> {
        let mut packages = 0;
        for vehicle in targets {
            packages += self.server.deploy(user, vehicle, app)?;
        }
        Ok(packages)
    }

    /// Runs the fleet until `app` reaches `wanted` deployment status on every
    /// target vehicle.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] if the status is not reached
    /// within `max_ticks`, and propagates step errors.
    pub fn await_deployment(
        &mut self,
        app: &AppId,
        targets: &[VehicleId],
        wanted: &DeploymentStatus,
        max_ticks: u64,
    ) -> Result<()> {
        let reached = |fleet: &Fleet| {
            targets
                .iter()
                .all(|v| fleet.server.deployment_status(v, app) == *wanted)
        };
        for _ in 0..max_ticks {
            if reached(self) {
                return Ok(());
            }
            self.step()?;
        }
        // The final step may have been the one that completed the wave.
        if reached(self) {
            return Ok(());
        }
        Err(DynarError::ProtocolViolation(format!(
            "deployment of {app} did not reach {wanted:?} on all {} targets within {max_ticks} ticks",
            targets.len()
        )))
    }

    /// Installs `app` across the whole fleet in staged waves of `wave_size`
    /// vehicles, waiting for each wave to acknowledge before the next starts.
    ///
    /// # Errors
    ///
    /// Propagates deployment rejections and wave timeouts.
    pub fn install_in_waves(
        &mut self,
        user: &UserId,
        app: &AppId,
        wave_size: usize,
        max_ticks_per_wave: u64,
    ) -> Result<()> {
        let wave_size = wave_size.max(1);
        let mut start = 0;
        while start < self.ids.len() {
            let end = (start + wave_size).min(self.ids.len());
            // One small clone per wave: stepping the fleet needs `&mut self`
            // while the wave is awaited.
            let wave: Vec<VehicleId> = self.ids[start..end].to_vec();
            self.deploy_wave(user, app, &wave)?;
            self.await_deployment(app, &wave, &DeploymentStatus::Installed, max_ticks_per_wave)?;
            start = end;
        }
        Ok(())
    }

    /// Uninstalls `app` from the given vehicles in staged waves.
    ///
    /// # Errors
    ///
    /// Propagates rejections and wave timeouts.
    pub fn uninstall_in_waves(
        &mut self,
        user: &UserId,
        app: &AppId,
        targets: &[VehicleId],
        wave_size: usize,
        max_ticks_per_wave: u64,
    ) -> Result<()> {
        for wave in targets.chunks(wave_size.max(1)) {
            for vehicle in wave {
                self.server.uninstall(user, vehicle, app)?;
            }
            self.await_deployment(
                app,
                wave,
                &DeploymentStatus::NotInstalled,
                max_ticks_per_wave,
            )?;
        }
        Ok(())
    }
}

/// One shard's slice of a parallel round: reliability tick, dirty downlink
/// push onto the shard's private hub, transport step with dropped-destination
/// feedback, vehicle steps, uplink processing.  Mirrors
/// [`Fleet::step_serial`] exactly — per vehicle, the effect (and journal
/// record) order is identical, which is what keeps a parallel journaled run
/// replayable.
fn step_shard(
    handle: &ShardHandle,
    mut shard: FleetShard,
    hub: &SharedHub,
    server_endpoint: &str,
    now: Tick,
) -> ShardOutcome {
    let mut downlink_messages = 0;
    let mut uplink_messages = 0;
    let mut retry_failures = Vec::new();
    handle.tick(now, &mut retry_failures);

    let mut offline = std::mem::take(&mut shard.offline_scratch);
    let downlink_polls;
    {
        let mut hub_guard = hub.lock();
        let entries = &shard.entries;
        let by_id = &shard.by_id;
        downlink_polls = handle.poll_downlink_dirty(|vehicle, payload| {
            downlink_messages += 1;
            let Some(&index) = by_id.get(vehicle) else {
                return;
            };
            if hub_guard
                .send(server_endpoint, &entries[index].endpoint, payload)
                .is_err()
            {
                offline.push(vehicle.clone());
            }
        });
        for vehicle in offline.drain(..) {
            handle.mark_offline(&vehicle);
        }
        hub_guard.step(now);
        for endpoint in hub_guard.take_dropped_destinations() {
            if hub_guard.is_registered(endpoint.as_ref()) {
                continue;
            }
            if let Some(&index) = shard.by_endpoint.get(endpoint.as_ref()) {
                handle.mark_offline(&shard.entries[index].id);
            }
        }
    }
    shard.offline_scratch = offline;

    let mut error = None;
    for entry in &mut shard.entries {
        if let Err(step_error) = entry.vehicle.step() {
            error = Some(step_error);
            break;
        }
    }

    if error.is_none() {
        let mut uplinks = std::mem::take(&mut shard.uplink_scratch);
        debug_assert!(uplinks.is_empty());
        hub.lock().drain_into(server_endpoint, &mut uplinks);
        for (from, payload) in uplinks.drain(..) {
            if let Some(&index) = shard.by_endpoint.get(from.as_ref()) {
                uplink_messages += 1;
                let _ = handle.process_uplink(&shard.entries[index].id, &payload);
            }
        }
        shard.uplink_scratch = uplinks;
    }

    ShardOutcome {
        shard,
        downlink_messages,
        uplink_messages,
        downlink_polls,
        retry_failures,
        error,
    }
}
