//! The fleet scheduler: many vehicles driven through one trusted server in
//! batched simulation rounds.
//!
//! [`crate::world::World`] couples exactly one [`Vehicle`] to the server —
//! enough for the paper's demonstrators, useless for federated-scale
//! questions ("what happens when an install wave hits 50 vehicles whose
//! signal chains are live?").  [`Fleet`] lifts the same pusher/uplink loop to
//! N vehicles: one shared [`TrustedServer`], one shared external transport
//! hub with a per-vehicle ECM endpoint, per-vehicle clocks (each [`Vehicle`]
//! keeps its own), and a batched round that moves every vehicle one tick
//! forward per [`Fleet::step`].
//!
//! Deployments can be staged in **install waves** ([`Fleet::deploy_wave`],
//! [`Fleet::install_in_waves`]) so reconfiguration load is spread over the
//! fleet instead of arriving everywhere at once.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dynar_ecm::gateway::SharedHub;
use dynar_fes::transport::{EndpointName, TransportConfig, TransportHub};
use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{AppId, UserId, VehicleId};
use dynar_foundation::payload::Payload;
use dynar_foundation::time::{Clock, Tick};
use dynar_server::server::{DeploymentStatus, TrustedServer};

use crate::world::Vehicle;

/// Counters describing fleet-level activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Batched rounds executed so far.
    pub ticks: u64,
    /// Downlink payloads pushed from the server into vehicle ECM endpoints
    /// (retransmissions included).
    pub downlink_messages: u64,
    /// Uplink payloads the server received back from vehicles.
    pub uplink_messages: u64,
    /// Operations the server's reliability plane escalated after exhausting
    /// their retransmission budget.
    pub retry_failures: u64,
}

#[derive(Debug)]
struct FleetEntry {
    id: VehicleId,
    endpoint: String,
    vehicle: Vehicle,
}

/// A fleet of vehicles federated through one trusted server.
#[derive(Debug)]
pub struct Fleet {
    /// The shared trusted server.
    pub server: TrustedServer,
    /// The shared external transport hub (server endpoint + one ECM endpoint
    /// per vehicle).
    pub hub: SharedHub,
    server_endpoint: String,
    vehicles: Vec<FleetEntry>,
    /// Vehicle ids in registration order (what [`Fleet::vehicle_ids`]
    /// borrows, so callers do not clone the whole fleet's ids per call).
    ids: Vec<VehicleId>,
    by_id: HashMap<VehicleId, usize>,
    by_endpoint: HashMap<String, usize>,
    /// Reused drain buffer for the server-endpoint mailbox.
    uplink_scratch: Vec<(EndpointName, Payload)>,
    clock: Clock,
    stats: FleetStats,
}

impl Fleet {
    /// Creates a fleet around a trusted server, with a fresh transport hub
    /// built from `transport`.
    pub fn new(
        server: TrustedServer,
        server_endpoint: impl Into<String>,
        transport: TransportConfig,
    ) -> Self {
        let hub = Arc::new(Mutex::new(TransportHub::new(transport)));
        Self::with_hub(server, server_endpoint, hub)
    }

    /// Creates a fleet sharing an existing transport hub (the same hub handed
    /// to every vehicle's ECM and to external devices).
    pub fn with_hub(
        server: TrustedServer,
        server_endpoint: impl Into<String>,
        hub: SharedHub,
    ) -> Self {
        let server_endpoint = server_endpoint.into();
        hub.lock().register(&server_endpoint);
        Fleet {
            server,
            hub,
            server_endpoint,
            vehicles: Vec::new(),
            ids: Vec::new(),
            by_id: HashMap::new(),
            by_endpoint: HashMap::new(),
            uplink_scratch: Vec::new(),
            clock: Clock::new(),
            stats: FleetStats::default(),
        }
    }

    /// Adds a wired vehicle under its server-side id and ECM transport
    /// endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::Duplicate`] if the id or endpoint is taken.
    pub fn add_vehicle(
        &mut self,
        id: VehicleId,
        ecm_endpoint: impl Into<String>,
        vehicle: Vehicle,
    ) -> Result<()> {
        let endpoint = ecm_endpoint.into();
        if self.by_id.contains_key(&id) {
            return Err(DynarError::duplicate("fleet vehicle", id));
        }
        if self.by_endpoint.contains_key(&endpoint) {
            return Err(DynarError::duplicate("fleet endpoint", endpoint));
        }
        let index = self.vehicles.len();
        self.by_id.insert(id.clone(), index);
        self.by_endpoint.insert(endpoint.clone(), index);
        self.ids.push(id.clone());
        self.vehicles.push(FleetEntry {
            id,
            endpoint,
            vehicle,
        });
        Ok(())
    }

    /// Adds a vehicle while the fleet is running.  Identical to
    /// [`Fleet::add_vehicle`] — named separately to document that joining
    /// mid-run is safe: the vehicle's ECM already registered its endpoint on
    /// the shared hub, whose slot generations guarantee that traffic in
    /// flight towards a previous tenant of a reused slot is dropped, never
    /// delivered to the newcomer.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::Duplicate`] if the id or endpoint is taken.
    pub fn add_vehicle_during_run(
        &mut self,
        id: VehicleId,
        ecm_endpoint: impl Into<String>,
        vehicle: Vehicle,
    ) -> Result<()> {
        self.add_vehicle(id, ecm_endpoint, vehicle)
    }

    /// Removes a vehicle for good: its endpoint is unregistered from the hub
    /// (voiding traffic still in flight towards it) and the server fails
    /// every outstanding operation fast with
    /// [`dynar_foundation::error::DynarError::VehicleUnreachable`].  Returns
    /// the detached [`Vehicle`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown vehicles.
    pub fn remove_vehicle(&mut self, id: &VehicleId) -> Result<Vehicle> {
        let index = *self
            .by_id
            .get(id)
            .ok_or_else(|| DynarError::not_found("fleet vehicle", id))?;
        // `ids[i]` mirrors `vehicles[i]`: swap-remove both to keep them
        // aligned, then repoint the entry that moved into the hole.
        let entry = self.vehicles.swap_remove(index);
        self.ids.swap_remove(index);
        self.by_id.remove(&entry.id);
        self.by_endpoint.remove(&entry.endpoint);
        if index < self.vehicles.len() {
            let moved = &self.vehicles[index];
            self.by_id.insert(moved.id.clone(), index);
            self.by_endpoint.insert(moved.endpoint.clone(), index);
        }
        self.hub.lock().unregister(&entry.endpoint);
        self.stats.retry_failures += self.server.mark_unreachable(id).len() as u64;
        Ok(entry.vehicle)
    }

    /// Swaps in a freshly built incarnation of a vehicle (same id, same
    /// endpoint) — the mechanical half of a reboot.  The caller is expected
    /// to have unregistered the old endpoint *before* building the new
    /// vehicle (so in-flight traffic towards the dead incarnation is voided
    /// by the hub's slot generations) and to have given the new ECM the next
    /// boot epoch.  Returns the old incarnation.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::NotFound`] for unknown vehicles.
    pub fn replace_vehicle(&mut self, id: &VehicleId, vehicle: Vehicle) -> Result<Vehicle> {
        let index = *self
            .by_id
            .get(id)
            .ok_or_else(|| DynarError::not_found("fleet vehicle", id))?;
        Ok(std::mem::replace(
            &mut self.vehicles[index].vehicle,
            vehicle,
        ))
    }

    /// Number of vehicles in the fleet.
    pub fn len(&self) -> usize {
        self.vehicles.len()
    }

    /// Returns `true` if the fleet has no vehicles.
    pub fn is_empty(&self) -> bool {
        self.vehicles.is_empty()
    }

    /// The ids of every vehicle, in registration order — borrowed from the
    /// fleet's cached list (callers that need ownership clone explicitly).
    pub fn vehicle_ids(&self) -> &[VehicleId] {
        &self.ids
    }

    /// Read access to a vehicle by id.
    pub fn vehicle(&self, id: &VehicleId) -> Option<&Vehicle> {
        self.by_id.get(id).map(|&i| &self.vehicles[i].vehicle)
    }

    /// The ECM transport endpoint of a vehicle.
    pub fn endpoint_of(&self, id: &VehicleId) -> Option<&str> {
        self.by_id
            .get(id)
            .map(|&i| self.vehicles[i].endpoint.as_str())
    }

    /// The trusted server's transport endpoint.
    pub fn server_endpoint(&self) -> &str {
        &self.server_endpoint
    }

    /// Mutable access to a vehicle by id.
    pub fn vehicle_mut(&mut self, id: &VehicleId) -> Option<&mut Vehicle> {
        self.by_id.get(id).map(|&i| &mut self.vehicles[i].vehicle)
    }

    /// Current simulated fleet time.
    pub fn now(&self) -> Tick {
        self.clock.now()
    }

    /// Fleet-level activity counters.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// Advances the whole fleet by one batched round: server downlinks reach
    /// every vehicle's ECM endpoint, the shared transport delivers, every
    /// vehicle runs one tick, and uplink acknowledgements flow back into the
    /// server.
    ///
    /// # Errors
    ///
    /// Propagates the first vehicle step error.
    pub fn step(&mut self) -> Result<()> {
        let now = self.clock.step();

        // Reliability plane: requeue overdue packages, escalate dead ones.
        self.stats.retry_failures += self.server.tick(now).len() as u64;

        // Pusher: queued downlink messages leave the server, batched under a
        // single hub lock.  Destination feedback flows straight back into the
        // server's lifecycle plane: a send into an unregistered endpoint, or
        // an in-flight message dropped because the endpoint unregistered
        // mid-flight, parks the vehicle (mark_offline) instead of letting the
        // retry budget burn against a dead link.
        {
            let mut hub = self.hub.lock();
            for entry in &self.vehicles {
                for payload in self.server.poll_downlink(&entry.id) {
                    self.stats.downlink_messages += 1;
                    if hub
                        .send(&self.server_endpoint, &entry.endpoint, payload)
                        .is_err()
                    {
                        self.server.mark_offline(&entry.id);
                    }
                }
            }
            hub.step(now);
            for endpoint in hub.take_dropped_destinations() {
                // A drop towards a *currently registered* endpoint is stale
                // traffic from before a reboot (the slot generation voided
                // it) — the new incarnation's link is alive, so parking the
                // vehicle would strand it.  Only an endpoint that is really
                // gone parks its vehicle.
                if hub.is_registered(endpoint.as_ref()) {
                    continue;
                }
                if let Some(&index) = self.by_endpoint.get(endpoint.as_ref()) {
                    self.server.mark_offline(&self.vehicles[index].id);
                }
            }
        }

        for entry in &mut self.vehicles {
            entry.vehicle.step()?;
        }

        // Uplink: acknowledgements back into the server, attributed to the
        // sending vehicle through its ECM endpoint.  The mailbox drains into
        // a reused buffer — a quiet tick allocates nothing.
        let mut uplinks = std::mem::take(&mut self.uplink_scratch);
        debug_assert!(uplinks.is_empty());
        self.hub
            .lock()
            .drain_into(&self.server_endpoint, &mut uplinks);
        for (from, payload) in uplinks.drain(..) {
            if let Some(&index) = self.by_endpoint.get(from.as_ref()) {
                self.stats.uplink_messages += 1;
                let _ = self
                    .server
                    .process_uplink(&self.vehicles[index].id, &payload);
            }
        }
        self.uplink_scratch = uplinks;
        self.stats.ticks += 1;
        Ok(())
    }

    /// Runs [`Fleet::step`] `ticks` times.
    ///
    /// # Errors
    ///
    /// Propagates the first step error.
    pub fn run(&mut self, ticks: u64) -> Result<()> {
        for _ in 0..ticks {
            self.step()?;
        }
        Ok(())
    }

    /// Deploys `app` to one wave of vehicles (without waiting), returning the
    /// total number of installation packages pushed.
    ///
    /// # Errors
    ///
    /// Propagates the server's deployment rejections.
    pub fn deploy_wave(
        &mut self,
        user: &UserId,
        app: &AppId,
        targets: &[VehicleId],
    ) -> Result<usize> {
        let mut packages = 0;
        for vehicle in targets {
            packages += self.server.deploy(user, vehicle, app)?;
        }
        Ok(packages)
    }

    /// Runs the fleet until `app` reaches `wanted` deployment status on every
    /// target vehicle.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] if the status is not reached
    /// within `max_ticks`, and propagates step errors.
    pub fn await_deployment(
        &mut self,
        app: &AppId,
        targets: &[VehicleId],
        wanted: &DeploymentStatus,
        max_ticks: u64,
    ) -> Result<()> {
        let reached = |fleet: &Fleet| {
            targets
                .iter()
                .all(|v| fleet.server.deployment_status(v, app) == *wanted)
        };
        for _ in 0..max_ticks {
            if reached(self) {
                return Ok(());
            }
            self.step()?;
        }
        // The final step may have been the one that completed the wave.
        if reached(self) {
            return Ok(());
        }
        Err(DynarError::ProtocolViolation(format!(
            "deployment of {app} did not reach {wanted:?} on all {} targets within {max_ticks} ticks",
            targets.len()
        )))
    }

    /// Installs `app` across the whole fleet in staged waves of `wave_size`
    /// vehicles, waiting for each wave to acknowledge before the next starts.
    ///
    /// # Errors
    ///
    /// Propagates deployment rejections and wave timeouts.
    pub fn install_in_waves(
        &mut self,
        user: &UserId,
        app: &AppId,
        wave_size: usize,
        max_ticks_per_wave: u64,
    ) -> Result<()> {
        let wave_size = wave_size.max(1);
        let mut start = 0;
        while start < self.ids.len() {
            let end = (start + wave_size).min(self.ids.len());
            // One small clone per wave: stepping the fleet needs `&mut self`
            // while the wave is awaited.
            let wave: Vec<VehicleId> = self.ids[start..end].to_vec();
            self.deploy_wave(user, app, &wave)?;
            self.await_deployment(app, &wave, &DeploymentStatus::Installed, max_ticks_per_wave)?;
            start = end;
        }
        Ok(())
    }

    /// Uninstalls `app` from the given vehicles in staged waves.
    ///
    /// # Errors
    ///
    /// Propagates rejections and wave timeouts.
    pub fn uninstall_in_waves(
        &mut self,
        user: &UserId,
        app: &AppId,
        targets: &[VehicleId],
        wave_size: usize,
        max_ticks_per_wave: u64,
    ) -> Result<()> {
        for wave in targets.chunks(wave_size.max(1)) {
            for vehicle in wave {
                self.server.uninstall(user, vehicle, app)?;
            }
            self.await_deployment(
                app,
                wave,
                &DeploymentStatus::NotInstalled,
                max_ticks_per_wave,
            )?;
        }
        Ok(())
    }
}
