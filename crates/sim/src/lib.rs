//! The vehicle/world simulator and the paper's demonstrator scenarios.
//!
//! This crate wires the substrates together into runnable systems: ECUs
//! (OSEK kernel + RTE) on a CAN-like bus form a [`world::Vehicle`]; a vehicle,
//! the trusted server and external devices on the FES transport form a
//! [`world::World`]; many vehicles federated through one trusted server form
//! a [`fleet::Fleet`], ticked in batched rounds with staged install waves.
//! The [`scenario`] module builds concrete systems: [`scenario::remote_car`]
//! — the remotely controlled model car of the paper's Section 4 (Figure 3) —
//! and [`scenario::fleet`] — the federated-scale fleet — which the examples,
//! integration tests and benchmarks all reuse.  The [`actors`] module is the
//! concurrent counterpart of [`fleet::Fleet`]: server and vehicles as real
//! threads over any [`Transport`] backend, driven by wall-clock time.
//!
//! [`Transport`]: dynar_fes::transport::Transport

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actors;
pub mod fleet;
pub mod plant;
pub mod scenario;
pub mod world;

pub use actors::{ActorFederation, FederationOutcome};
pub use fleet::{Fleet, FleetStats, RetryFailureEvent, MAX_FAILURE_EVENTS};
pub use plant::{CarPlant, PlantState, SharedPlantState};
pub use world::{Vehicle, World};
