//! The vehicle/world simulator and the paper's demonstrator scenarios.
//!
//! This crate wires the substrates together into runnable systems: ECUs
//! (OSEK kernel + RTE) on a CAN-like bus form a [`world::Vehicle`]; a vehicle,
//! the trusted server and external devices on the FES transport form a
//! [`world::World`]; many vehicles federated through one trusted server form
//! a [`fleet::Fleet`], ticked in batched rounds with staged install waves.
//! The [`scenario`] module builds concrete systems: [`scenario::remote_car`]
//! — the remotely controlled model car of the paper's Section 4 (Figure 3) —
//! and [`scenario::fleet`] — the federated-scale fleet — which the examples,
//! integration tests and benchmarks all reuse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod plant;
pub mod scenario;
pub mod world;

pub use fleet::{Fleet, FleetStats};
pub use plant::{CarPlant, PlantState, SharedPlantState};
pub use world::{Vehicle, World};
