//! Vehicles (ECUs on a bus) and the world (vehicle + server + devices).

use std::sync::Arc;

use parking_lot::Mutex;

use dynar_bus::network::{Bus, BusConfig};
use dynar_ecm::gateway::SharedHub;
use dynar_fes::transport::{TransportConfig, TransportHub};
use dynar_foundation::codec;
use dynar_foundation::error::Result;
use dynar_foundation::ids::{EcuId, VehicleId};
use dynar_foundation::intern::Interner;
use dynar_foundation::time::{Clock, Tick};
use dynar_rte::com_mapping::{Reassembler, Segmenter};
use dynar_rte::ecu::Ecu;
use dynar_server::server::TrustedServer;

/// One vehicle: a set of ECUs connected by an in-vehicle bus, with the
/// communication stack (codec + segmentation) between them.
#[derive(Debug)]
pub struct Vehicle {
    ecus: Vec<Ecu>,
    /// ECU id -> dense slot; slots index `ecus` and `reassemblers`.
    ecu_slots: Interner<EcuId>,
    bus: Bus,
    segmenter: Segmenter,
    reassemblers: Vec<Reassembler>,
    /// Reused per-tick drain buffers (outbound signals, received frames), so
    /// a steady-state vehicle tick does not allocate on the comms path.
    outbound_scratch: Vec<(dynar_bus::frame::CanId, dynar_foundation::value::Value)>,
    frames_scratch: Vec<dynar_bus::frame::Frame>,
    clock: Clock,
}

impl Vehicle {
    /// Creates a vehicle from its ECUs and a bus configuration, attaching
    /// every ECU to the bus.
    pub fn new(ecus: Vec<Ecu>, bus_config: BusConfig) -> Self {
        let mut bus = Bus::new(bus_config);
        let mut ecu_slots = Interner::new();
        let mut reassemblers = Vec::with_capacity(ecus.len());
        for ecu in &ecus {
            bus.attach(ecu.id());
            let slot = ecu_slots.intern(ecu.id());
            debug_assert_eq!(slot.index(), reassemblers.len(), "ECU ids are unique");
            reassemblers.push(Reassembler::new());
        }
        Vehicle {
            ecus,
            ecu_slots,
            bus,
            segmenter: Segmenter::new(),
            reassemblers,
            outbound_scratch: Vec::new(),
            frames_scratch: Vec::new(),
            clock: Clock::new(),
        }
    }

    /// The ECUs of the vehicle.
    pub fn ecus(&self) -> &[Ecu] {
        &self.ecus
    }

    /// Mutable access to an ECU by id (O(1) through the interned index).
    pub fn ecu_mut(&mut self, id: EcuId) -> Option<&mut Ecu> {
        let slot = self.ecu_slots.get(&id)?;
        Some(&mut self.ecus[slot.index()])
    }

    /// Read access to an ECU by id (O(1) through the interned index).
    pub fn ecu(&self, id: EcuId) -> Option<&Ecu> {
        let slot = self.ecu_slots.get(&id)?;
        Some(&self.ecus[slot.index()])
    }

    /// The in-vehicle bus.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Subscribes every ECU except the sender to the frame ids it transmits,
    /// based on the signal mappings configured on the ECUs.  Called once
    /// after wiring; here it simply subscribes every ECU to every frame id,
    /// letting the per-ECU RTE mapping filter relevance (a CAN controller
    /// with an open acceptance filter).
    pub fn open_acceptance_filters(&mut self, frame_ids: &[dynar_bus::frame::CanId]) {
        let ecu_ids: Vec<EcuId> = self.ecus.iter().map(Ecu::id).collect();
        for ecu in ecu_ids {
            for id in frame_ids {
                self.bus.subscribe(ecu, *id);
            }
        }
    }

    /// Current simulated time of the vehicle.
    pub fn now(&self) -> Tick {
        self.clock.now()
    }

    /// Advances the vehicle by one tick: drains ECU outbound signals onto the
    /// bus (segmenting large payloads), steps the bus, reassembles and
    /// delivers inbound signals, then steps every ECU.
    ///
    /// # Errors
    ///
    /// Propagates ECU step errors.
    pub fn step(&mut self) -> Result<()> {
        let now = self.clock.step();

        // Outbound: SW-C signals onto the bus (drained through a reused
        // buffer — quiet ECUs cost nothing).
        for index in 0..self.ecus.len() {
            let sender = self.ecus[index].id();
            debug_assert!(self.outbound_scratch.is_empty());
            self.ecus[index].drain_outbound_into(&mut self.outbound_scratch);
            for (frame_id, value) in self.outbound_scratch.drain(..) {
                let payload = codec::encode_value(&value);
                for frame in self.segmenter.segment(frame_id, &payload)? {
                    self.bus.send(sender, frame, now)?;
                }
            }
        }

        self.bus.step(now);

        // Inbound: reassemble and deliver.
        for index in 0..self.ecus.len() {
            let receiver = self.ecus[index].id();
            debug_assert!(self.frames_scratch.is_empty());
            self.bus.receive_into(receiver, &mut self.frames_scratch);
            let reassembler = &mut self.reassemblers[index];
            for frame in self.frames_scratch.drain(..) {
                if let Ok(Some((frame_id, payload))) = reassembler.accept(&frame) {
                    if let Ok(value) = codec::decode_value(&payload) {
                        self.ecus[index].deliver_inbound(frame_id, value);
                    }
                }
            }
        }

        for ecu in &mut self.ecus {
            ecu.step()?;
        }
        Ok(())
    }
}

/// The full federated system: one vehicle, the trusted server, the external
/// transport and whatever devices are registered on it.
#[derive(Debug)]
pub struct World {
    /// The trusted server.
    pub server: TrustedServer,
    /// The external transport hub shared with the vehicle's ECM and devices.
    pub hub: SharedHub,
    /// The vehicle.
    pub vehicle: Vehicle,
    vehicle_id: VehicleId,
    server_endpoint: String,
    ecm_endpoint: String,
    /// Reused drain buffer for the server-endpoint mailbox.
    uplink_scratch: Vec<(
        dynar_fes::transport::EndpointName,
        dynar_foundation::payload::Payload,
    )>,
    clock: Clock,
}

impl World {
    /// Creates a world around an already-wired vehicle and an external
    /// transport hub (the same hub handed to the vehicle's ECM and to any
    /// external devices).
    pub fn new(
        server: TrustedServer,
        vehicle: Vehicle,
        vehicle_id: VehicleId,
        server_endpoint: impl Into<String>,
        ecm_endpoint: impl Into<String>,
        hub: SharedHub,
    ) -> Self {
        let server_endpoint = server_endpoint.into();
        hub.lock().register(&server_endpoint);
        World {
            server,
            hub,
            vehicle,
            vehicle_id,
            server_endpoint,
            ecm_endpoint: ecm_endpoint.into(),
            uplink_scratch: Vec::new(),
            clock: Clock::new(),
        }
    }

    /// Convenience constructor creating a fresh hub from a transport
    /// configuration.
    pub fn with_transport(
        server: TrustedServer,
        vehicle: Vehicle,
        vehicle_id: VehicleId,
        server_endpoint: impl Into<String>,
        ecm_endpoint: impl Into<String>,
        transport: TransportConfig,
    ) -> Self {
        let hub = Arc::new(Mutex::new(TransportHub::new(transport)));
        Self::new(
            server,
            vehicle,
            vehicle_id,
            server_endpoint,
            ecm_endpoint,
            hub,
        )
    }

    /// The identifier of the world's vehicle.
    pub fn vehicle_id(&self) -> &VehicleId {
        &self.vehicle_id
    }

    /// Current simulated time of the world.
    pub fn now(&self) -> Tick {
        self.clock.now()
    }

    /// Advances the whole federated system by one tick: the server's
    /// reliability plane retransmits overdue packages, queued pushes reach
    /// the transport, the transport delivers, the vehicle runs, and uplink
    /// acknowledgements flow back into the server.
    ///
    /// # Errors
    ///
    /// Propagates vehicle step errors.
    pub fn step(&mut self) -> Result<()> {
        let now = self.clock.step();

        // Reliability plane: requeue overdue packages, escalate dead ones.
        let _ = self.server.tick(now);

        // Pusher: queued downlink messages leave the server.
        let downlinks = self.server.poll_downlink(&self.vehicle_id);
        {
            let mut hub = self.hub.lock();
            for payload in downlinks {
                let _ = hub.send(&self.server_endpoint, &self.ecm_endpoint, payload);
            }
            hub.step(now);
        }

        self.vehicle.step()?;

        // Uplink: acknowledgements back into the server (drained through a
        // reused buffer — a quiet tick allocates nothing).
        let mut uplinks = std::mem::take(&mut self.uplink_scratch);
        debug_assert!(uplinks.is_empty());
        self.hub
            .lock()
            .drain_into(&self.server_endpoint, &mut uplinks);
        for (_, payload) in uplinks.drain(..) {
            let _ = self.server.process_uplink(&self.vehicle_id, &payload);
        }
        self.uplink_scratch = uplinks;
        Ok(())
    }

    /// Runs [`World::step`] `ticks` times.
    ///
    /// # Errors
    ///
    /// Propagates the first step error.
    pub fn run(&mut self, ticks: u64) -> Result<()> {
        for _ in 0..ticks {
            self.step()?;
        }
        Ok(())
    }
}
