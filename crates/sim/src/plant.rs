//! The model car's physical plant and its built-in chassis SW-C.

use std::sync::Arc;

use parking_lot::Mutex;

use dynar_foundation::error::Result;
use dynar_foundation::value::Value;
use dynar_rte::component::{ComponentBehavior, RteContext, RunnableSpec, SwcDescriptor, Trigger};
use dynar_rte::port::{PortDirection, PortSpec};

/// The observable state of the model car.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlantState {
    /// Current speed in m/s.
    pub speed: f64,
    /// Current wheel angle in degrees.
    pub wheel_angle: f64,
    /// Distance travelled in metres.
    pub odometer: f64,
    /// Number of actuator commands applied so far.
    pub commands_applied: u64,
}

/// A shared handle to the plant state, so scenarios and tests can observe the
/// car without going through the RTE.
pub type SharedPlantState = Arc<Mutex<PlantState>>;

/// The built-in chassis SW-C: it consumes wheel-angle and speed commands from
/// its required ports, integrates a simple kinematic model and publishes the
/// measured speed on a provided port — the built-in application software the
/// OP plug-in talks to through type III ports.
#[derive(Debug)]
pub struct CarPlant {
    state: SharedPlantState,
    /// Seconds of simulated time per plant runnable period.
    dt: f64,
}

impl CarPlant {
    /// Name of the chassis component instance.
    pub const COMPONENT: &'static str = "chassis";
    /// Required port carrying wheel-angle commands.
    pub const WHEELS_CMD: &'static str = "wheels_cmd";
    /// Required port carrying speed commands.
    pub const SPEED_CMD: &'static str = "speed_cmd";
    /// Provided port publishing the measured speed.
    pub const SPEED_MEAS: &'static str = "speed_meas";

    /// Creates the plant behaviour and the shared state handle.
    pub fn create(dt: f64) -> (Self, SharedPlantState) {
        let state = Arc::new(Mutex::new(PlantState::default()));
        (
            CarPlant {
                state: Arc::clone(&state),
                dt,
            },
            state,
        )
    }

    /// The component descriptor of the chassis SW-C.
    pub fn descriptor() -> SwcDescriptor {
        SwcDescriptor::new(Self::COMPONENT)
            .with_priority(6)
            .with_port(PortSpec::queued(
                Self::WHEELS_CMD,
                PortDirection::Required,
                16,
            ))
            .with_port(PortSpec::queued(
                Self::SPEED_CMD,
                PortDirection::Required,
                16,
            ))
            .with_port(PortSpec::sender_receiver(
                Self::SPEED_MEAS,
                PortDirection::Provided,
            ))
            .with_runnable(RunnableSpec::new("control", Trigger::Periodic(5)))
    }
}

impl ComponentBehavior for CarPlant {
    fn on_runnable(&mut self, _runnable: &str, ctx: &mut RteContext<'_>) -> Result<()> {
        let mut state = self.state.lock();
        while let Some(value) = ctx.receive(Self::WHEELS_CMD)? {
            if let Some(angle) = value.as_f64() {
                state.wheel_angle = angle.clamp(-45.0, 45.0);
                state.commands_applied += 1;
            }
        }
        while let Some(value) = ctx.receive(Self::SPEED_CMD)? {
            if let Some(speed) = value.as_f64() {
                state.speed = speed.clamp(0.0, 30.0);
                state.commands_applied += 1;
            }
        }
        state.odometer += state.speed * self.dt;
        let measured = state.speed;
        drop(state);
        ctx.write(Self::SPEED_MEAS, Value::F64(measured))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynar_bus::frame::CanId;
    use dynar_foundation::ids::EcuId;
    use dynar_rte::ecu::Ecu;

    #[test]
    fn plant_applies_commands_and_publishes_speed() {
        let mut ecu = Ecu::new(EcuId::new(2));
        let (plant, state) = CarPlant::create(0.01);
        let swc = ecu
            .add_component(CarPlant::descriptor(), Box::new(plant))
            .unwrap();

        let wheels = CanId::new(0x400).unwrap();
        let speed = CanId::new(0x401).unwrap();
        ecu.map_signal_in(wheels, swc, CarPlant::WHEELS_CMD)
            .unwrap();
        ecu.map_signal_in(speed, swc, CarPlant::SPEED_CMD).unwrap();
        ecu.deliver_inbound(wheels, Value::F64(90.0));
        ecu.deliver_inbound(speed, Value::F64(5.0));
        ecu.run(20).unwrap();

        let state = state.lock();
        assert_eq!(state.wheel_angle, 45.0, "clamped to the steering range");
        assert_eq!(state.speed, 5.0);
        assert_eq!(state.commands_applied, 2);
        assert!(state.odometer > 0.0);
        drop(state);
        assert_eq!(
            ecu.rte()
                .read_port_by_name(swc, CarPlant::SPEED_MEAS)
                .unwrap(),
            Value::F64(5.0)
        );
    }

    #[test]
    fn plant_ignores_non_numeric_commands() {
        let mut ecu = Ecu::new(EcuId::new(2));
        let (plant, state) = CarPlant::create(0.01);
        let swc = ecu
            .add_component(CarPlant::descriptor(), Box::new(plant))
            .unwrap();
        let wheels = CanId::new(0x400).unwrap();
        ecu.map_signal_in(wheels, swc, CarPlant::WHEELS_CMD)
            .unwrap();
        ecu.deliver_inbound(wheels, Value::Text("left".into()));
        ecu.run(10).unwrap();
        assert_eq!(state.lock().commands_applied, 0);
    }
}
