//! The actor runtime: server and vehicles as independent threads on a
//! shared [`Transport`], driven by wall-clock time instead of lockstep
//! ticks.
//!
//! [`crate::fleet::Fleet`] advances the whole federation in synchronous
//! phases — every vehicle, the transport and the server move together, one
//! tick at a time.  That is the *deterministic* deployment shape: perfect
//! for byte-identity tests, useless as evidence that the protocol survives
//! real concurrency.  This module is the other shape: each vehicle runs on
//! its own thread at its own pace, the trusted server runs on its own
//! thread reacting to whatever arrives, and nothing ever waits for a global
//! tick barrier.
//!
//! # Tick-free server loop
//!
//! The server actor never sweeps on a schedule.  Each iteration it:
//!
//! 1. fires [`TrustedServer::tick`] only when [`TrustedServer::next_deadline`]
//!    says a retransmission deadline actually lapsed (the deadline timer) or
//!    a rollout campaign is active — campaign health gates sample on the tick
//!    cadence, so [`TrustedServer::step_campaigns`] runs right after,
//! 2. pumps the transport once — queued downlinks out, arrived uplinks in —
//!    exactly the sequence `Fleet::step` runs, minus the vehicle stepping,
//! 3. sleeps on its command channel until the next deadline or quantum,
//!    whichever is sooner, handling [`ActorFederation::with_server`]
//!    closures as they arrive.
//!
//! Protocol time stays tick-denominated: a [`WallClock`] maps elapsed real
//! time onto the same [`Tick`] axis the retry budgets and announce periods
//! are written in, so the reliability plane is unchanged — only the driver
//! differs.
//!
//! # Lock order and the determinism boundary
//!
//! Every thread that takes both locks takes **the transport lock first,
//! then server shard/ledger locks** (the server pump holds the transport
//! lock across `poll_downlink_dirty`, whose shard locking nests inside —
//! the same order `Fleet::step` established).  Vehicle threads only ever
//! take the transport lock (through their ECM gateways), so they can never
//! invert the order.
//!
//! Runs through this module are **not** reproducible: thread interleaving
//! and wall-clock timing are real.  Determinism lives below the
//! [`Transport`] trait — the same protocol code, driven by `Fleet` over the
//! deterministic hub, replays byte-for-byte.  Tests assert *convergence*
//! here (installed exactly once, conservation at the stats level) and
//! *identity* there.
//!
//! [`Transport`]: dynar_fes::transport::Transport

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dynar_ecm::gateway::SharedHub;
use dynar_fes::transport::{EndpointName, Payload};
use dynar_foundation::error::DynarError;
use dynar_foundation::ids::VehicleId;
use dynar_foundation::time::{Tick, WallClock};
use dynar_server::server::TrustedServer;

use crate::world::Vehicle;

/// A command for the server actor.
enum ServerCommand {
    /// Run a closure against the server (the ask pattern; the closure owns
    /// its own reply channel).
    With(Box<dyn FnOnce(&mut TrustedServer) + Send>),
    /// Route downlinks for `id` to `endpoint` and uplinks back.
    Register { id: VehicleId, endpoint: String },
    /// Stop routing for `id` (the endpoint stays registered on the
    /// transport until its ECM goes away).
    Deregister { id: VehicleId },
    /// Final pump, then exit with the server state.
    Shutdown,
}

/// One vehicle actor: its thread and the flag that stops it.
struct VehicleActor {
    id: VehicleId,
    stop: Arc<AtomicBool>,
    thread: JoinHandle<(Vehicle, Option<DynarError>)>,
}

/// What [`ActorFederation::shutdown`] hands back: the server state and every
/// vehicle, each with the error that stopped it early (if any).
#[derive(Debug)]
pub struct FederationOutcome {
    /// The trusted server, exactly as the server actor last left it.
    pub server: TrustedServer,
    /// Every vehicle in spawn order, with its first step error if it died.
    pub vehicles: Vec<(VehicleId, Vehicle, Option<DynarError>)>,
}

/// A running actor federation: one server thread, one thread per vehicle,
/// all exchanging messages through a shared [`Transport`] backend.
///
/// # Example
///
/// ```no_run
/// use std::time::Duration;
/// use dynar_ecm::gateway::SharedHub;
/// use dynar_fes::transport::{shared_transport, TransportConfig, TransportHub};
/// use dynar_server::server::TrustedServer;
/// use dynar_sim::actors::ActorFederation;
///
/// let transport: SharedHub = shared_transport(TransportHub::new(TransportConfig::default()));
/// let federation = ActorFederation::launch(
///     TrustedServer::new(),
///     "server",
///     transport,
///     Duration::from_millis(1),
/// );
/// // ... spawn vehicles, deploy through with_server, poll for convergence ...
/// let outcome = federation.shutdown();
/// assert!(outcome.vehicles.iter().all(|(_, _, err)| err.is_none()));
/// ```
///
/// [`Transport`]: dynar_fes::transport::Transport
pub struct ActorFederation {
    commands: mpsc::Sender<ServerCommand>,
    server_thread: Option<JoinHandle<TrustedServer>>,
    vehicles: Vec<VehicleActor>,
    transport: SharedHub,
    clock: WallClock,
    retry_failures: Arc<AtomicU64>,
}

impl std::fmt::Debug for VehicleActor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VehicleActor")
            .field("id", &self.id)
            .finish()
    }
}

impl std::fmt::Debug for ActorFederation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorFederation")
            .field("vehicles", &self.vehicles)
            .field("quantum", &self.clock.quantum())
            .finish_non_exhaustive()
    }
}

impl ActorFederation {
    /// Spawns the server actor.  `quantum` is the real-time span of one
    /// protocol [`Tick`] — retry deadlines, announce periods and partition
    /// heal times all scale with it.
    pub fn launch(
        server: TrustedServer,
        server_endpoint: impl Into<String>,
        transport: SharedHub,
        quantum: Duration,
    ) -> Self {
        let server_endpoint = server_endpoint.into();
        transport.lock().register(&server_endpoint);
        let clock = WallClock::new(quantum);
        let retry_failures = Arc::new(AtomicU64::new(0));
        let (commands, inbox) = mpsc::channel();
        let thread = {
            let transport = Arc::clone(&transport);
            let clock = clock.clone();
            let retry_failures = Arc::clone(&retry_failures);
            std::thread::spawn(move || {
                server_actor(
                    server,
                    server_endpoint,
                    transport,
                    clock,
                    inbox,
                    retry_failures,
                )
            })
        };
        ActorFederation {
            commands,
            server_thread: Some(thread),
            vehicles: Vec::new(),
            transport,
            clock,
            retry_failures,
        }
    }

    /// The shared transport backend (for devices, settle loops, stats).
    pub fn transport(&self) -> SharedHub {
        Arc::clone(&self.transport)
    }

    /// The wall clock mapping real time onto protocol ticks.
    pub fn clock(&self) -> &WallClock {
        &self.clock
    }

    /// Retry escalations the server actor's deadline timer has surfaced so
    /// far.
    pub fn retry_failures(&self) -> u64 {
        self.retry_failures.load(Ordering::Relaxed)
    }

    /// Spawns one vehicle actor.  The vehicle's ECM must already be wired to
    /// this federation's transport under `endpoint` (its `EcmSwc::create`
    /// registered it); the server actor routes `id`'s downlinks there from
    /// now on.
    pub fn spawn_vehicle(&mut self, id: VehicleId, endpoint: impl Into<String>, vehicle: Vehicle) {
        let endpoint = endpoint.into();
        self.commands
            .send(ServerCommand::Register {
                id: id.clone(),
                endpoint,
            })
            .expect("server actor is running");
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            let pace = self.clock.quantum();
            std::thread::spawn(move || vehicle_actor(vehicle, stop, pace))
        };
        self.vehicles.push(VehicleActor { id, stop, thread });
    }

    /// Runs a closure against the live server and returns its result (the
    /// ask pattern: the closure executes on the server thread, serialized
    /// with the deadline timer and the uplink pump).
    ///
    /// # Panics
    ///
    /// Panics if the server actor is gone (it never exits on its own).
    pub fn with_server<R: Send + 'static>(
        &self,
        f: impl FnOnce(&mut TrustedServer) -> R + Send + 'static,
    ) -> R {
        let (reply, answer) = mpsc::channel();
        self.commands
            .send(ServerCommand::With(Box::new(move |server| {
                let _ = reply.send(f(server));
            })))
            .expect("server actor is running");
        answer.recv().expect("server actor answers")
    }

    /// Stops one vehicle actor early (endpoint churn mid-run): its thread
    /// exits, the server stops routing to it.  Returns the vehicle and its
    /// first step error, or `None` for an unknown id.
    pub fn stop_vehicle(&mut self, id: &VehicleId) -> Option<(Vehicle, Option<DynarError>)> {
        let index = self.vehicles.iter().position(|actor| &actor.id == id)?;
        let actor = self.vehicles.remove(index);
        actor.stop.store(true, Ordering::Relaxed);
        let outcome = actor.thread.join().expect("vehicle actor never panics");
        let _ = self
            .commands
            .send(ServerCommand::Deregister { id: id.clone() });
        Some(outcome)
    }

    /// Stops every actor — vehicles first (so the wire quiesces), then the
    /// server after a final pump — and returns the federation's state.
    pub fn shutdown(mut self) -> FederationOutcome {
        for actor in &self.vehicles {
            actor.stop.store(true, Ordering::Relaxed);
        }
        let vehicles = self
            .vehicles
            .drain(..)
            .map(|actor| {
                let (vehicle, error) = actor.thread.join().expect("vehicle actor never panics");
                (actor.id, vehicle, error)
            })
            .collect();
        self.commands
            .send(ServerCommand::Shutdown)
            .expect("server actor is running");
        let server = self
            .server_thread
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("server actor never panics");
        FederationOutcome { server, vehicles }
    }
}

/// The vehicle actor body: step at the clock's pace until stopped; a step
/// error stops the vehicle (a crashed node), it does not kill the
/// federation.
fn vehicle_actor(
    mut vehicle: Vehicle,
    stop: Arc<AtomicBool>,
    pace: Duration,
) -> (Vehicle, Option<DynarError>) {
    while !stop.load(Ordering::Relaxed) {
        if let Err(error) = vehicle.step() {
            return (vehicle, Some(error));
        }
        std::thread::sleep(pace);
    }
    (vehicle, None)
}

/// The server actor body.  See the module documentation for the loop's
/// three phases and the lock order.
fn server_actor(
    mut server: TrustedServer,
    server_endpoint: String,
    transport: SharedHub,
    clock: WallClock,
    inbox: mpsc::Receiver<ServerCommand>,
    retry_failures: Arc<AtomicU64>,
) -> TrustedServer {
    let mut by_endpoint: HashMap<String, VehicleId> = HashMap::new();
    let mut endpoints: HashMap<VehicleId, String> = HashMap::new();
    let mut uplinks: Vec<(EndpointName, Payload)> = Vec::new();
    let mut offline: Vec<VehicleId> = Vec::new();
    // Wall-clock ticks are monotonic, but protocol time must also never
    // repeat a smaller value after a long pump: clamp below.
    let mut last_now = Tick::ZERO;
    loop {
        let now = clock.now().max(last_now);
        last_now = now;

        // 1. Deadline timer: sweep the reliability plane only when a
        //    retransmission deadline actually lapsed — or when a rollout
        //    campaign is running, whose health gates are sampled on the same
        //    tick cadence (the wall-clock quantum stands in for the fleet
        //    round).
        if server.next_deadline().is_some_and(|due| due <= now) || server.has_active_campaigns() {
            let failures = server.tick(now).len() as u64;
            retry_failures.fetch_add(failures, Ordering::Relaxed);
            let _ = server.step_campaigns();
        }

        // 2. Transport pump (transport lock held, shard locks nest inside).
        pump(
            &mut server,
            &server_endpoint,
            &transport,
            now,
            &by_endpoint,
            &endpoints,
            &mut uplinks,
            &mut offline,
        );

        // 3. Sleep until the next deadline or one quantum, whichever is
        //    sooner, handling commands as they arrive.
        let wait = match server.next_deadline() {
            Some(due) => clock.until_tick(due).min(clock.quantum()),
            None => clock.quantum(),
        };
        match inbox.recv_timeout(wait.max(Duration::from_micros(50))) {
            Ok(ServerCommand::With(f)) => f(&mut server),
            Ok(ServerCommand::Register { id, endpoint }) => {
                by_endpoint.insert(endpoint.clone(), id.clone());
                endpoints.insert(id, endpoint);
            }
            Ok(ServerCommand::Deregister { id }) => {
                if let Some(endpoint) = endpoints.remove(&id) {
                    by_endpoint.remove(&endpoint);
                }
            }
            Ok(ServerCommand::Shutdown) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Final pump: consume whatever the stopped vehicles left on the wire, so
    // the transport ledger can settle for post-run conservation checks.
    let now = clock.now().max(last_now);
    pump(
        &mut server,
        &server_endpoint,
        &transport,
        now,
        &by_endpoint,
        &endpoints,
        &mut uplinks,
        &mut offline,
    );
    server
}

/// One transport pump: downlinks out, transport stepped, dropped-destination
/// feedback applied, uplinks in.  The mirror of the transport phases of
/// `Fleet::step`, under one transport lock.
#[allow(clippy::too_many_arguments)]
fn pump(
    server: &mut TrustedServer,
    server_endpoint: &str,
    transport: &SharedHub,
    now: Tick,
    by_endpoint: &HashMap<String, VehicleId>,
    endpoints: &HashMap<VehicleId, String>,
    uplinks: &mut Vec<(EndpointName, Payload)>,
    offline: &mut Vec<VehicleId>,
) {
    {
        let mut transport = transport.lock();
        server.poll_downlink_dirty(|vehicle, payload| {
            let Some(endpoint) = endpoints.get(vehicle) else {
                return;
            };
            if transport.send(server_endpoint, endpoint, payload).is_err() {
                offline.push(vehicle.clone());
            }
        });
        for vehicle in offline.drain(..) {
            server.mark_offline(&vehicle);
        }
        transport.step(now);
        for endpoint in transport.take_dropped_destinations() {
            // Stale traffic towards a re-registered endpoint is not a dead
            // link (same contract as Fleet::step).
            if transport.is_registered(endpoint.as_ref()) {
                continue;
            }
            if let Some(vehicle) = by_endpoint.get(endpoint.as_ref()) {
                server.mark_offline(vehicle);
            }
        }
        debug_assert!(uplinks.is_empty());
        transport.drain_into(server_endpoint, uplinks);
    }
    for (from, payload) in uplinks.drain(..) {
        if let Some(vehicle) = by_endpoint.get(from.as_ref()) {
            let _ = server.process_uplink(vehicle, &payload);
        }
    }
}
