//! The trusted server's data model (Figure 2 of the paper).

use serde::{Deserialize, Serialize};

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{AppId, EcuId, PluginId, VirtualPortId};

use dynar_core::plugin::PluginPortDirection;

/// Hardware description of one ECU, uploaded by the OEM (`HW Conf`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcuHw {
    /// The ECU identifier within the vehicle.
    pub ecu: EcuId,
    /// Memory available to plug-ins, in KiB.
    pub memory_kb: u32,
}

/// The hardware configuration of one vehicle (`HW Conf` module).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HwConf {
    /// The ECUs available to host plug-ins.
    pub ecus: Vec<EcuHw>,
}

impl HwConf {
    /// Creates an empty hardware configuration.
    pub fn new() -> Self {
        HwConf::default()
    }

    /// Adds one ECU.
    #[must_use]
    pub fn with_ecu(mut self, ecu: EcuId, memory_kb: u32) -> Self {
        self.ecus.push(EcuHw { ecu, memory_kb });
        self
    }

    /// Looks an ECU up.
    pub fn ecu(&self, ecu: EcuId) -> Option<&EcuHw> {
        self.ecus.iter().find(|e| e.ecu == ecu)
    }
}

/// The kind of a virtual port as declared in the system software
/// configuration.  Type II declarations carry the peer ECU the port pair
/// leads to, which the context generator needs to resolve remote plug-in
/// connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VirtualPortKindDecl {
    /// Towards the ECM.
    TypeI,
    /// Towards the plug-in SW-C on the given peer ECU.
    TypeII {
        /// The ECU hosting the peer plug-in SW-C.
        peer: EcuId,
    },
    /// Towards the built-in software.
    TypeIII,
}

/// One virtual port exposed by a plug-in SW-C (`SystemSW Conf`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualPortDecl {
    /// The virtual-port id used in generated PLCs.
    pub id: VirtualPortId,
    /// The name plug-in developers refer to, e.g. `WheelsReq`.
    pub name: String,
    /// The port kind.
    pub kind: VirtualPortKindDecl,
}

/// One plug-in SW-C available in a vehicle (`SystemSW Conf`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PluginSwcDecl {
    /// The ECU hosting the SW-C.
    pub ecu: EcuId,
    /// The component instance name.
    pub swc_name: String,
    /// Whether this SW-C is the vehicle's ECM.
    pub is_ecm: bool,
    /// The virtual ports it exposes to plug-ins.
    pub virtual_ports: Vec<VirtualPortDecl>,
}

/// The built-in software configuration of one vehicle model
/// (`SystemSW Conf` module).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SystemSwConf {
    /// The vehicle model this configuration describes.
    pub model: String,
    /// The plug-in SW-Cs available to host plug-ins.
    pub swcs: Vec<PluginSwcDecl>,
}

impl SystemSwConf {
    /// Creates a configuration for the given vehicle model.
    pub fn new(model: impl Into<String>) -> Self {
        SystemSwConf {
            model: model.into(),
            swcs: Vec::new(),
        }
    }

    /// Adds one plug-in SW-C declaration.
    #[must_use]
    pub fn with_swc(mut self, swc: PluginSwcDecl) -> Self {
        self.swcs.push(swc);
        self
    }

    /// The plug-in SW-C hosted on the given ECU, if any.
    pub fn swc_on(&self, ecu: EcuId) -> Option<&PluginSwcDecl> {
        self.swcs.iter().find(|s| s.ecu == ecu)
    }

    /// The ECU hosting the ECM SW-C, if declared.
    pub fn ecm_ecu(&self) -> Option<EcuId> {
        self.swcs.iter().find(|s| s.is_ecm).map(|s| s.ecu)
    }
}

/// One port declared by a plug-in developer for their plug-in.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PluginPortDecl {
    /// The developer-chosen port name.
    pub name: String,
    /// The direction from the plug-in's perspective.
    pub direction: PluginPortDirection,
}

/// One plug-in binary stored in the server's `APP` database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PluginArtifact {
    /// The plug-in identifier.
    pub id: PluginId,
    /// The portable plug-in binary.
    pub binary: Vec<u8>,
    /// The ports the plug-in code uses, in VM slot order.
    pub ports: Vec<PluginPortDecl>,
}

/// Where a plug-in should run in a particular vehicle model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The plug-in being placed.
    pub plugin: PluginId,
    /// The ECU whose plug-in SW-C hosts it.
    pub ecu: EcuId,
}

/// How one plug-in port should be connected in a particular vehicle model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnectionDecl {
    /// The PIRTE communicates with the port directly (no virtual port).
    Direct,
    /// Connect to the named virtual port of the hosting SW-C.
    VirtualPort {
        /// The virtual port name, e.g. `SpeedReq`.
        name: String,
    },
    /// Connect, through a type II port pair, to a port of another plug-in of
    /// the same application.
    RemotePlugin {
        /// The receiving plug-in.
        plugin: PluginId,
        /// The receiving plug-in's port name.
        port: String,
    },
    /// The port receives data from (or sends data to) an external endpoint;
    /// the ECM routes it using the generated ECC.
    External {
        /// The external endpoint, e.g. an address or a device name.
        endpoint: String,
        /// The external message id, e.g. `Wheels`.
        message_id: String,
    },
}

/// One port-connection declaration inside a [`SwConf`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortConnection {
    /// The plug-in owning the port.
    pub plugin: PluginId,
    /// The port name as declared in the plug-in artifact.
    pub port: String,
    /// How to connect it.
    pub target: ConnectionDecl,
}

/// One deployment description for an application on one vehicle model
/// (`SW conf` module).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwConf {
    /// The vehicle model this configuration applies to.
    pub model: String,
    /// Minimum plug-in memory each target ECU must provide, in KiB.
    pub min_memory_kb: u32,
    /// Which plug-in runs on which ECU.
    pub placements: Vec<Placement>,
    /// How the plug-in ports are connected.
    pub connections: Vec<PortConnection>,
}

impl SwConf {
    /// Creates an empty deployment description for a vehicle model.
    pub fn new(model: impl Into<String>) -> Self {
        SwConf {
            model: model.into(),
            min_memory_kb: 0,
            placements: Vec::new(),
            connections: Vec::new(),
        }
    }

    /// Sets the memory requirement.
    #[must_use]
    pub fn with_min_memory_kb(mut self, memory_kb: u32) -> Self {
        self.min_memory_kb = memory_kb;
        self
    }

    /// Places a plug-in on an ECU.
    #[must_use]
    pub fn with_placement(mut self, plugin: PluginId, ecu: EcuId) -> Self {
        self.placements.push(Placement { plugin, ecu });
        self
    }

    /// Declares one port connection.
    #[must_use]
    pub fn with_connection(
        mut self,
        plugin: PluginId,
        port: impl Into<String>,
        target: ConnectionDecl,
    ) -> Self {
        self.connections.push(PortConnection {
            plugin,
            port: port.into(),
            target,
        });
        self
    }

    /// The ECU a plug-in is placed on, if any.
    pub fn placement_of(&self, plugin: &PluginId) -> Option<EcuId> {
        self.placements
            .iter()
            .find(|p| &p.plugin == plugin)
            .map(|p| p.ecu)
    }
}

/// An application uploaded by a developer: plug-in binaries plus one
/// deployment description per supported vehicle model, dependencies and
/// conflicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppDefinition {
    /// The application identifier.
    pub id: AppId,
    /// The plug-ins the application consists of.
    pub plugins: Vec<PluginArtifact>,
    /// Applications that must already be installed.
    pub requires: Vec<AppId>,
    /// Applications that must not be installed at the same time.
    pub conflicts: Vec<AppId>,
    /// Deployment descriptions, one per supported vehicle model.
    pub sw_confs: Vec<SwConf>,
}

impl AppDefinition {
    /// Creates an application with no plug-ins yet.
    pub fn new(id: AppId) -> Self {
        AppDefinition {
            id,
            plugins: Vec::new(),
            requires: Vec::new(),
            conflicts: Vec::new(),
            sw_confs: Vec::new(),
        }
    }

    /// Adds a plug-in artifact.
    #[must_use]
    pub fn with_plugin(mut self, plugin: PluginArtifact) -> Self {
        self.plugins.push(plugin);
        self
    }

    /// Declares a dependency on another application.
    #[must_use]
    pub fn with_dependency(mut self, app: AppId) -> Self {
        self.requires.push(app);
        self
    }

    /// Declares a conflict with another application.
    #[must_use]
    pub fn with_conflict(mut self, app: AppId) -> Self {
        self.conflicts.push(app);
        self
    }

    /// Adds a deployment description.
    #[must_use]
    pub fn with_sw_conf(mut self, conf: SwConf) -> Self {
        self.sw_confs.push(conf);
        self
    }

    /// The artifact of a given plug-in.
    pub fn plugin(&self, id: &PluginId) -> Option<&PluginArtifact> {
        self.plugins.iter().find(|p| &p.id == id)
    }

    /// The deployment description matching a vehicle model, if any.
    pub fn sw_conf_for(&self, model: &str) -> Option<&SwConf> {
        self.sw_confs.iter().find(|c| c.model == model)
    }

    /// Validates internal consistency: every placement and connection refers
    /// to a declared plug-in, and every placed plug-in has a placement in
    /// each configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::InvalidConfiguration`] describing the first
    /// inconsistency.
    pub fn validate(&self) -> Result<()> {
        for conf in &self.sw_confs {
            for placement in &conf.placements {
                if self.plugin(&placement.plugin).is_none() {
                    return Err(DynarError::invalid_config(format!(
                        "configuration for {} places unknown plug-in {}",
                        conf.model, placement.plugin
                    )));
                }
            }
            for plugin in &self.plugins {
                if conf.placement_of(&plugin.id).is_none() {
                    return Err(DynarError::invalid_config(format!(
                        "configuration for {} does not place plug-in {}",
                        conf.model, plugin.id
                    )));
                }
            }
            for connection in &conf.connections {
                let Some(artifact) = self.plugin(&connection.plugin) else {
                    return Err(DynarError::invalid_config(format!(
                        "configuration for {} connects unknown plug-in {}",
                        conf.model, connection.plugin
                    )));
                };
                if !artifact.ports.iter().any(|p| p.name == connection.port) {
                    return Err(DynarError::invalid_config(format!(
                        "plug-in {} has no port named {}",
                        connection.plugin, connection.port
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(name: &str, ports: &[(&str, PluginPortDirection)]) -> PluginArtifact {
        PluginArtifact {
            id: PluginId::new(name),
            binary: vec![0],
            ports: ports
                .iter()
                .map(|(n, d)| PluginPortDecl {
                    name: (*n).to_owned(),
                    direction: *d,
                })
                .collect(),
        }
    }

    #[test]
    fn hw_conf_lookup() {
        let hw = HwConf::new()
            .with_ecu(EcuId::new(1), 512)
            .with_ecu(EcuId::new(2), 256);
        assert_eq!(hw.ecu(EcuId::new(2)).unwrap().memory_kb, 256);
        assert!(hw.ecu(EcuId::new(9)).is_none());
    }

    #[test]
    fn system_sw_conf_finds_ecm() {
        let conf = SystemSwConf::new("model-car")
            .with_swc(PluginSwcDecl {
                ecu: EcuId::new(1),
                swc_name: "ecm-swc".into(),
                is_ecm: true,
                virtual_ports: vec![],
            })
            .with_swc(PluginSwcDecl {
                ecu: EcuId::new(2),
                swc_name: "plugin-swc-2".into(),
                is_ecm: false,
                virtual_ports: vec![VirtualPortDecl {
                    id: VirtualPortId::new(4),
                    name: "WheelsReq".into(),
                    kind: VirtualPortKindDecl::TypeIII,
                }],
            });
        assert_eq!(conf.ecm_ecu(), Some(EcuId::new(1)));
        assert_eq!(conf.swc_on(EcuId::new(2)).unwrap().swc_name, "plugin-swc-2");
        assert!(conf.swc_on(EcuId::new(3)).is_none());
    }

    #[test]
    fn app_validation_catches_missing_pieces() {
        let op = artifact("OP", &[("in", PluginPortDirection::Required)]);
        let good = AppDefinition::new(AppId::new("app"))
            .with_plugin(op.clone())
            .with_sw_conf(
                SwConf::new("model-car")
                    .with_placement(PluginId::new("OP"), EcuId::new(2))
                    .with_connection(
                        PluginId::new("OP"),
                        "in",
                        ConnectionDecl::VirtualPort {
                            name: "SpeedProv".into(),
                        },
                    ),
            );
        assert!(good.validate().is_ok());
        assert_eq!(
            good.sw_conf_for("model-car")
                .unwrap()
                .placement_of(&PluginId::new("OP")),
            Some(EcuId::new(2))
        );
        assert!(good.sw_conf_for("truck").is_none());

        let unplaced = AppDefinition::new(AppId::new("app"))
            .with_plugin(op.clone())
            .with_sw_conf(SwConf::new("model-car"));
        assert!(unplaced.validate().is_err());

        let unknown_port = AppDefinition::new(AppId::new("app"))
            .with_plugin(op)
            .with_sw_conf(
                SwConf::new("model-car")
                    .with_placement(PluginId::new("OP"), EcuId::new(2))
                    .with_connection(PluginId::new("OP"), "ghost", ConnectionDecl::Direct),
            );
        assert!(unknown_port.validate().is_err());
    }
}
