//! The trusted server's data model (Figure 2 of the paper).

use serde::{Deserialize, Serialize};

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::ids::{AppId, EcuId, PluginId, VirtualPortId};

use dynar_core::plugin::PluginPortDirection;

/// Hardware description of one ECU, uploaded by the OEM (`HW Conf`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcuHw {
    /// The ECU identifier within the vehicle.
    pub ecu: EcuId,
    /// Memory available to plug-ins, in KiB.
    pub memory_kb: u32,
}

/// The hardware configuration of one vehicle (`HW Conf` module).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HwConf {
    /// The ECUs available to host plug-ins.
    pub ecus: Vec<EcuHw>,
}

impl HwConf {
    /// Creates an empty hardware configuration.
    pub fn new() -> Self {
        HwConf::default()
    }

    /// Adds one ECU.
    #[must_use]
    pub fn with_ecu(mut self, ecu: EcuId, memory_kb: u32) -> Self {
        self.ecus.push(EcuHw { ecu, memory_kb });
        self
    }

    /// Looks an ECU up.
    pub fn ecu(&self, ecu: EcuId) -> Option<&EcuHw> {
        self.ecus.iter().find(|e| e.ecu == ecu)
    }
}

/// The kind of a virtual port as declared in the system software
/// configuration.  Type II declarations carry the peer ECU the port pair
/// leads to, which the context generator needs to resolve remote plug-in
/// connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VirtualPortKindDecl {
    /// Towards the ECM.
    TypeI,
    /// Towards the plug-in SW-C on the given peer ECU.
    TypeII {
        /// The ECU hosting the peer plug-in SW-C.
        peer: EcuId,
    },
    /// Towards the built-in software.
    TypeIII,
}

/// One virtual port exposed by a plug-in SW-C (`SystemSW Conf`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualPortDecl {
    /// The virtual-port id used in generated PLCs.
    pub id: VirtualPortId,
    /// The name plug-in developers refer to, e.g. `WheelsReq`.
    pub name: String,
    /// The port kind.
    pub kind: VirtualPortKindDecl,
}

/// One plug-in SW-C available in a vehicle (`SystemSW Conf`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PluginSwcDecl {
    /// The ECU hosting the SW-C.
    pub ecu: EcuId,
    /// The component instance name.
    pub swc_name: String,
    /// Whether this SW-C is the vehicle's ECM.
    pub is_ecm: bool,
    /// The virtual ports it exposes to plug-ins.
    pub virtual_ports: Vec<VirtualPortDecl>,
}

/// The built-in software configuration of one vehicle model
/// (`SystemSW Conf` module).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SystemSwConf {
    /// The vehicle model this configuration describes.
    pub model: String,
    /// The plug-in SW-Cs available to host plug-ins.
    pub swcs: Vec<PluginSwcDecl>,
}

impl SystemSwConf {
    /// Creates a configuration for the given vehicle model.
    pub fn new(model: impl Into<String>) -> Self {
        SystemSwConf {
            model: model.into(),
            swcs: Vec::new(),
        }
    }

    /// Adds one plug-in SW-C declaration.
    #[must_use]
    pub fn with_swc(mut self, swc: PluginSwcDecl) -> Self {
        self.swcs.push(swc);
        self
    }

    /// The plug-in SW-C hosted on the given ECU, if any.
    pub fn swc_on(&self, ecu: EcuId) -> Option<&PluginSwcDecl> {
        self.swcs.iter().find(|s| s.ecu == ecu)
    }

    /// The ECU hosting the ECM SW-C, if declared.
    pub fn ecm_ecu(&self) -> Option<EcuId> {
        self.swcs.iter().find(|s| s.is_ecm).map(|s| s.ecu)
    }
}

/// One port declared by a plug-in developer for their plug-in.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PluginPortDecl {
    /// The developer-chosen port name.
    pub name: String,
    /// The direction from the plug-in's perspective.
    pub direction: PluginPortDirection,
}

/// One plug-in binary stored in the server's `APP` database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PluginArtifact {
    /// The plug-in identifier.
    pub id: PluginId,
    /// The portable plug-in binary.
    pub binary: Vec<u8>,
    /// The ports the plug-in code uses, in VM slot order.
    pub ports: Vec<PluginPortDecl>,
}

/// Where a plug-in should run in a particular vehicle model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The plug-in being placed.
    pub plugin: PluginId,
    /// The ECU whose plug-in SW-C hosts it.
    pub ecu: EcuId,
}

/// How one plug-in port should be connected in a particular vehicle model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnectionDecl {
    /// The PIRTE communicates with the port directly (no virtual port).
    Direct,
    /// Connect to the named virtual port of the hosting SW-C.
    VirtualPort {
        /// The virtual port name, e.g. `SpeedReq`.
        name: String,
    },
    /// Connect, through a type II port pair, to a port of another plug-in of
    /// the same application.
    RemotePlugin {
        /// The receiving plug-in.
        plugin: PluginId,
        /// The receiving plug-in's port name.
        port: String,
    },
    /// The port receives data from (or sends data to) an external endpoint;
    /// the ECM routes it using the generated ECC.
    External {
        /// The external endpoint, e.g. an address or a device name.
        endpoint: String,
        /// The external message id, e.g. `Wheels`.
        message_id: String,
    },
}

/// One port-connection declaration inside a [`SwConf`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortConnection {
    /// The plug-in owning the port.
    pub plugin: PluginId,
    /// The port name as declared in the plug-in artifact.
    pub port: String,
    /// How to connect it.
    pub target: ConnectionDecl,
}

/// One deployment description for an application on one vehicle model
/// (`SW conf` module).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwConf {
    /// The vehicle model this configuration applies to.
    pub model: String,
    /// Minimum plug-in memory each target ECU must provide, in KiB.
    pub min_memory_kb: u32,
    /// Which plug-in runs on which ECU.
    pub placements: Vec<Placement>,
    /// How the plug-in ports are connected.
    pub connections: Vec<PortConnection>,
}

impl SwConf {
    /// Creates an empty deployment description for a vehicle model.
    pub fn new(model: impl Into<String>) -> Self {
        SwConf {
            model: model.into(),
            min_memory_kb: 0,
            placements: Vec::new(),
            connections: Vec::new(),
        }
    }

    /// Sets the memory requirement.
    #[must_use]
    pub fn with_min_memory_kb(mut self, memory_kb: u32) -> Self {
        self.min_memory_kb = memory_kb;
        self
    }

    /// Places a plug-in on an ECU.
    #[must_use]
    pub fn with_placement(mut self, plugin: PluginId, ecu: EcuId) -> Self {
        self.placements.push(Placement { plugin, ecu });
        self
    }

    /// Declares one port connection.
    #[must_use]
    pub fn with_connection(
        mut self,
        plugin: PluginId,
        port: impl Into<String>,
        target: ConnectionDecl,
    ) -> Self {
        self.connections.push(PortConnection {
            plugin,
            port: port.into(),
            target,
        });
        self
    }

    /// The ECU a plug-in is placed on, if any.
    pub fn placement_of(&self, plugin: &PluginId) -> Option<EcuId> {
        self.placements
            .iter()
            .find(|p| &p.plugin == plugin)
            .map(|p| p.ecu)
    }
}

/// An application uploaded by a developer: plug-in binaries plus one
/// deployment description per supported vehicle model, dependencies and
/// conflicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppDefinition {
    /// The application identifier.
    pub id: AppId,
    /// The plug-ins the application consists of.
    pub plugins: Vec<PluginArtifact>,
    /// Applications that must already be installed.
    pub requires: Vec<AppId>,
    /// Applications that must not be installed at the same time.
    pub conflicts: Vec<AppId>,
    /// Deployment descriptions, one per supported vehicle model.
    pub sw_confs: Vec<SwConf>,
}

impl AppDefinition {
    /// Creates an application with no plug-ins yet.
    pub fn new(id: AppId) -> Self {
        AppDefinition {
            id,
            plugins: Vec::new(),
            requires: Vec::new(),
            conflicts: Vec::new(),
            sw_confs: Vec::new(),
        }
    }

    /// Adds a plug-in artifact.
    #[must_use]
    pub fn with_plugin(mut self, plugin: PluginArtifact) -> Self {
        self.plugins.push(plugin);
        self
    }

    /// Declares a dependency on another application.
    #[must_use]
    pub fn with_dependency(mut self, app: AppId) -> Self {
        self.requires.push(app);
        self
    }

    /// Declares a conflict with another application.
    #[must_use]
    pub fn with_conflict(mut self, app: AppId) -> Self {
        self.conflicts.push(app);
        self
    }

    /// Adds a deployment description.
    #[must_use]
    pub fn with_sw_conf(mut self, conf: SwConf) -> Self {
        self.sw_confs.push(conf);
        self
    }

    /// The artifact of a given plug-in.
    pub fn plugin(&self, id: &PluginId) -> Option<&PluginArtifact> {
        self.plugins.iter().find(|p| &p.id == id)
    }

    /// The deployment description matching a vehicle model, if any.
    pub fn sw_conf_for(&self, model: &str) -> Option<&SwConf> {
        self.sw_confs.iter().find(|c| c.model == model)
    }

    /// Validates internal consistency: every placement and connection refers
    /// to a declared plug-in, and every placed plug-in has a placement in
    /// each configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::InvalidConfiguration`] describing the first
    /// inconsistency.
    pub fn validate(&self) -> Result<()> {
        for conf in &self.sw_confs {
            for placement in &conf.placements {
                if self.plugin(&placement.plugin).is_none() {
                    return Err(DynarError::invalid_config(format!(
                        "configuration for {} places unknown plug-in {}",
                        conf.model, placement.plugin
                    )));
                }
            }
            for plugin in &self.plugins {
                if conf.placement_of(&plugin.id).is_none() {
                    return Err(DynarError::invalid_config(format!(
                        "configuration for {} does not place plug-in {}",
                        conf.model, plugin.id
                    )));
                }
            }
            for connection in &conf.connections {
                let Some(artifact) = self.plugin(&connection.plugin) else {
                    return Err(DynarError::invalid_config(format!(
                        "configuration for {} connects unknown plug-in {}",
                        conf.model, connection.plugin
                    )));
                };
                if !artifact.ports.iter().any(|p| p.name == connection.port) {
                    return Err(DynarError::invalid_config(format!(
                        "plug-in {} has no port named {}",
                        connection.plugin, connection.port
                    )));
                }
            }
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Durability-plane value codec
// ----------------------------------------------------------------------
//
// The write-ahead journal and the state snapshots of `TrustedServer`
// (`crate::journal`) persist whole model objects with the shared
// `dynar_foundation::codec`.  Every decoder returns a typed
// [`DynarError::ProtocolViolation`] on malformed input — journals are read
// back on the recovery path, where the bytes are untrusted by definition.

use dynar_foundation::value::Value;

fn malformed(what: &str) -> DynarError {
    DynarError::ProtocolViolation(format!("malformed model encoding: {what}"))
}

fn decode_ecu(value: &Value, what: &str) -> Result<EcuId> {
    let id = value.expect_i64()?;
    let id = u16::try_from(id).map_err(|_| malformed(what))?;
    Ok(EcuId::new(id))
}

fn decode_u32(value: &Value, what: &str) -> Result<u32> {
    let raw = value.expect_i64()?;
    u32::try_from(raw).map_err(|_| malformed(what))
}

fn decode_text<'a>(value: &'a Value, what: &str) -> Result<&'a str> {
    value.as_text().ok_or_else(|| malformed(what))
}

impl EcuHw {
    /// Encodes the ECU description as a [`Value`].
    pub fn to_value(&self) -> Value {
        Value::List(vec![
            Value::I64(i64::from(self.ecu.index())),
            Value::I64(i64::from(self.memory_kb)),
        ])
    }

    /// Decodes an ECU description encoded by [`EcuHw::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for malformed encodings.
    pub fn from_value(value: &Value) -> Result<Self> {
        let [ecu, memory_kb] = value.as_list().ok_or_else(|| malformed("ECU hw"))? else {
            return Err(malformed("ECU hw arity"));
        };
        Ok(EcuHw {
            ecu: decode_ecu(ecu, "ECU id")?,
            memory_kb: decode_u32(memory_kb, "ECU memory")?,
        })
    }
}

impl HwConf {
    /// Encodes the hardware configuration as a [`Value`].
    pub fn to_value(&self) -> Value {
        Value::List(self.ecus.iter().map(EcuHw::to_value).collect())
    }

    /// Decodes a configuration encoded by [`HwConf::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for malformed encodings.
    pub fn from_value(value: &Value) -> Result<Self> {
        let ecus = value
            .as_list()
            .ok_or_else(|| malformed("hw conf"))?
            .iter()
            .map(EcuHw::from_value)
            .collect::<Result<Vec<_>>>()?;
        Ok(HwConf { ecus })
    }
}

impl VirtualPortKindDecl {
    fn to_value(self) -> Value {
        match self {
            VirtualPortKindDecl::TypeI => Value::List(vec![Value::I64(0)]),
            VirtualPortKindDecl::TypeII { peer } => {
                Value::List(vec![Value::I64(1), Value::I64(i64::from(peer.index()))])
            }
            VirtualPortKindDecl::TypeIII => Value::List(vec![Value::I64(2)]),
        }
    }

    fn from_value(value: &Value) -> Result<Self> {
        let parts = value.as_list().ok_or_else(|| malformed("port kind"))?;
        match parts {
            [tag] if tag.expect_i64()? == 0 => Ok(VirtualPortKindDecl::TypeI),
            [tag, peer] if tag.expect_i64()? == 1 => Ok(VirtualPortKindDecl::TypeII {
                peer: decode_ecu(peer, "type II peer")?,
            }),
            [tag] if tag.expect_i64()? == 2 => Ok(VirtualPortKindDecl::TypeIII),
            _ => Err(malformed("port kind tag")),
        }
    }
}

impl VirtualPortDecl {
    fn to_value(&self) -> Value {
        Value::List(vec![
            Value::I64(i64::from(self.id.index())),
            Value::Text(self.name.clone()),
            self.kind.to_value(),
        ])
    }

    fn from_value(value: &Value) -> Result<Self> {
        let [id, name, kind] = value.as_list().ok_or_else(|| malformed("virtual port"))? else {
            return Err(malformed("virtual port arity"));
        };
        let id = id.expect_i64()?;
        let id = u16::try_from(id).map_err(|_| malformed("virtual port id"))?;
        Ok(VirtualPortDecl {
            id: VirtualPortId::new(id),
            name: decode_text(name, "virtual port name")?.to_owned(),
            kind: VirtualPortKindDecl::from_value(kind)?,
        })
    }
}

impl PluginSwcDecl {
    fn to_value(&self) -> Value {
        Value::List(vec![
            Value::I64(i64::from(self.ecu.index())),
            Value::Text(self.swc_name.clone()),
            Value::Bool(self.is_ecm),
            Value::List(self.virtual_ports.iter().map(|p| p.to_value()).collect()),
        ])
    }

    fn from_value(value: &Value) -> Result<Self> {
        let [ecu, swc_name, is_ecm, ports] =
            value.as_list().ok_or_else(|| malformed("plug-in SW-C"))?
        else {
            return Err(malformed("plug-in SW-C arity"));
        };
        Ok(PluginSwcDecl {
            ecu: decode_ecu(ecu, "SW-C ECU")?,
            swc_name: decode_text(swc_name, "SW-C name")?.to_owned(),
            is_ecm: is_ecm.as_bool().ok_or_else(|| malformed("SW-C ECM flag"))?,
            virtual_ports: ports
                .as_list()
                .ok_or_else(|| malformed("SW-C virtual ports"))?
                .iter()
                .map(VirtualPortDecl::from_value)
                .collect::<Result<Vec<_>>>()?,
        })
    }
}

impl SystemSwConf {
    /// Encodes the system software configuration as a [`Value`].
    pub fn to_value(&self) -> Value {
        Value::List(vec![
            Value::Text(self.model.clone()),
            Value::List(self.swcs.iter().map(|s| s.to_value()).collect()),
        ])
    }

    /// Decodes a configuration encoded by [`SystemSwConf::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for malformed encodings.
    pub fn from_value(value: &Value) -> Result<Self> {
        let [model, swcs] = value.as_list().ok_or_else(|| malformed("system sw conf"))? else {
            return Err(malformed("system sw conf arity"));
        };
        Ok(SystemSwConf {
            model: decode_text(model, "system model")?.to_owned(),
            swcs: swcs
                .as_list()
                .ok_or_else(|| malformed("system SW-Cs"))?
                .iter()
                .map(PluginSwcDecl::from_value)
                .collect::<Result<Vec<_>>>()?,
        })
    }
}

impl PluginPortDecl {
    fn to_value(&self) -> Value {
        Value::List(vec![
            Value::Text(self.name.clone()),
            Value::I64(match self.direction {
                PluginPortDirection::Provided => 0,
                PluginPortDirection::Required => 1,
            }),
        ])
    }

    fn from_value(value: &Value) -> Result<Self> {
        let [name, direction] = value.as_list().ok_or_else(|| malformed("plug-in port"))? else {
            return Err(malformed("plug-in port arity"));
        };
        let direction = match direction.expect_i64()? {
            0 => PluginPortDirection::Provided,
            1 => PluginPortDirection::Required,
            _ => return Err(malformed("plug-in port direction")),
        };
        Ok(PluginPortDecl {
            name: decode_text(name, "plug-in port name")?.to_owned(),
            direction,
        })
    }
}

impl PluginArtifact {
    fn to_value(&self) -> Value {
        Value::List(vec![
            Value::Text(self.id.name().to_owned()),
            Value::Bytes(self.binary.clone()),
            Value::List(self.ports.iter().map(|p| p.to_value()).collect()),
        ])
    }

    fn from_value(value: &Value) -> Result<Self> {
        let [id, binary, ports] = value.as_list().ok_or_else(|| malformed("artifact"))? else {
            return Err(malformed("artifact arity"));
        };
        Ok(PluginArtifact {
            id: PluginId::new(decode_text(id, "artifact id")?),
            binary: binary
                .as_bytes()
                .ok_or_else(|| malformed("artifact binary"))?
                .to_vec(),
            ports: ports
                .as_list()
                .ok_or_else(|| malformed("artifact ports"))?
                .iter()
                .map(PluginPortDecl::from_value)
                .collect::<Result<Vec<_>>>()?,
        })
    }
}

impl ConnectionDecl {
    fn to_value(&self) -> Value {
        match self {
            ConnectionDecl::Direct => Value::List(vec![Value::I64(0)]),
            ConnectionDecl::VirtualPort { name } => {
                Value::List(vec![Value::I64(1), Value::Text(name.clone())])
            }
            ConnectionDecl::RemotePlugin { plugin, port } => Value::List(vec![
                Value::I64(2),
                Value::Text(plugin.name().to_owned()),
                Value::Text(port.clone()),
            ]),
            ConnectionDecl::External {
                endpoint,
                message_id,
            } => Value::List(vec![
                Value::I64(3),
                Value::Text(endpoint.clone()),
                Value::Text(message_id.clone()),
            ]),
        }
    }

    fn from_value(value: &Value) -> Result<Self> {
        let parts = value.as_list().ok_or_else(|| malformed("connection"))?;
        match parts {
            [tag] if tag.expect_i64()? == 0 => Ok(ConnectionDecl::Direct),
            [tag, name] if tag.expect_i64()? == 1 => Ok(ConnectionDecl::VirtualPort {
                name: decode_text(name, "virtual port target")?.to_owned(),
            }),
            [tag, plugin, port] if tag.expect_i64()? == 2 => Ok(ConnectionDecl::RemotePlugin {
                plugin: PluginId::new(decode_text(plugin, "remote plug-in")?),
                port: decode_text(port, "remote port")?.to_owned(),
            }),
            [tag, endpoint, message_id] if tag.expect_i64()? == 3 => Ok(ConnectionDecl::External {
                endpoint: decode_text(endpoint, "external endpoint")?.to_owned(),
                message_id: decode_text(message_id, "external message id")?.to_owned(),
            }),
            _ => Err(malformed("connection tag")),
        }
    }
}

impl PortConnection {
    fn to_value(&self) -> Value {
        Value::List(vec![
            Value::Text(self.plugin.name().to_owned()),
            Value::Text(self.port.clone()),
            self.target.to_value(),
        ])
    }

    fn from_value(value: &Value) -> Result<Self> {
        let [plugin, port, target] = value
            .as_list()
            .ok_or_else(|| malformed("port connection"))?
        else {
            return Err(malformed("port connection arity"));
        };
        Ok(PortConnection {
            plugin: PluginId::new(decode_text(plugin, "connection plug-in")?),
            port: decode_text(port, "connection port")?.to_owned(),
            target: ConnectionDecl::from_value(target)?,
        })
    }
}

impl SwConf {
    fn to_value(&self) -> Value {
        Value::List(vec![
            Value::Text(self.model.clone()),
            Value::I64(i64::from(self.min_memory_kb)),
            Value::List(
                self.placements
                    .iter()
                    .map(|p| {
                        Value::List(vec![
                            Value::Text(p.plugin.name().to_owned()),
                            Value::I64(i64::from(p.ecu.index())),
                        ])
                    })
                    .collect(),
            ),
            Value::List(self.connections.iter().map(|c| c.to_value()).collect()),
        ])
    }

    fn from_value(value: &Value) -> Result<Self> {
        let [model, min_memory_kb, placements, connections] =
            value.as_list().ok_or_else(|| malformed("sw conf"))?
        else {
            return Err(malformed("sw conf arity"));
        };
        let placements = placements
            .as_list()
            .ok_or_else(|| malformed("placements"))?
            .iter()
            .map(|p| {
                let [plugin, ecu] = p.as_list().ok_or_else(|| malformed("placement"))? else {
                    return Err(malformed("placement arity"));
                };
                Ok(Placement {
                    plugin: PluginId::new(decode_text(plugin, "placement plug-in")?),
                    ecu: decode_ecu(ecu, "placement ECU")?,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(SwConf {
            model: decode_text(model, "sw conf model")?.to_owned(),
            min_memory_kb: decode_u32(min_memory_kb, "sw conf memory")?,
            placements,
            connections: connections
                .as_list()
                .ok_or_else(|| malformed("connections"))?
                .iter()
                .map(PortConnection::from_value)
                .collect::<Result<Vec<_>>>()?,
        })
    }
}

impl AppDefinition {
    /// Encodes the application definition as a [`Value`].
    pub fn to_value(&self) -> Value {
        let ids = |apps: &[AppId]| {
            Value::List(
                apps.iter()
                    .map(|a| Value::Text(a.name().to_owned()))
                    .collect(),
            )
        };
        Value::List(vec![
            Value::Text(self.id.name().to_owned()),
            Value::List(self.plugins.iter().map(|p| p.to_value()).collect()),
            ids(&self.requires),
            ids(&self.conflicts),
            Value::List(self.sw_confs.iter().map(|c| c.to_value()).collect()),
        ])
    }

    /// Decodes a definition encoded by [`AppDefinition::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for malformed encodings.
    pub fn from_value(value: &Value) -> Result<Self> {
        let [id, plugins, requires, conflicts, sw_confs] =
            value.as_list().ok_or_else(|| malformed("app definition"))?
        else {
            return Err(malformed("app definition arity"));
        };
        let ids = |value: &Value, what: &str| -> Result<Vec<AppId>> {
            value
                .as_list()
                .ok_or_else(|| malformed(what))?
                .iter()
                .map(|a| Ok(AppId::new(decode_text(a, what)?)))
                .collect()
        };
        Ok(AppDefinition {
            id: AppId::new(decode_text(id, "app id")?),
            plugins: plugins
                .as_list()
                .ok_or_else(|| malformed("app plug-ins"))?
                .iter()
                .map(PluginArtifact::from_value)
                .collect::<Result<Vec<_>>>()?,
            requires: ids(requires, "app dependencies")?,
            conflicts: ids(conflicts, "app conflicts")?,
            sw_confs: sw_confs
                .as_list()
                .ok_or_else(|| malformed("app sw confs"))?
                .iter()
                .map(SwConf::from_value)
                .collect::<Result<Vec<_>>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(name: &str, ports: &[(&str, PluginPortDirection)]) -> PluginArtifact {
        PluginArtifact {
            id: PluginId::new(name),
            binary: vec![0],
            ports: ports
                .iter()
                .map(|(n, d)| PluginPortDecl {
                    name: (*n).to_owned(),
                    direction: *d,
                })
                .collect(),
        }
    }

    #[test]
    fn hw_conf_lookup() {
        let hw = HwConf::new()
            .with_ecu(EcuId::new(1), 512)
            .with_ecu(EcuId::new(2), 256);
        assert_eq!(hw.ecu(EcuId::new(2)).unwrap().memory_kb, 256);
        assert!(hw.ecu(EcuId::new(9)).is_none());
    }

    #[test]
    fn system_sw_conf_finds_ecm() {
        let conf = SystemSwConf::new("model-car")
            .with_swc(PluginSwcDecl {
                ecu: EcuId::new(1),
                swc_name: "ecm-swc".into(),
                is_ecm: true,
                virtual_ports: vec![],
            })
            .with_swc(PluginSwcDecl {
                ecu: EcuId::new(2),
                swc_name: "plugin-swc-2".into(),
                is_ecm: false,
                virtual_ports: vec![VirtualPortDecl {
                    id: VirtualPortId::new(4),
                    name: "WheelsReq".into(),
                    kind: VirtualPortKindDecl::TypeIII,
                }],
            });
        assert_eq!(conf.ecm_ecu(), Some(EcuId::new(1)));
        assert_eq!(conf.swc_on(EcuId::new(2)).unwrap().swc_name, "plugin-swc-2");
        assert!(conf.swc_on(EcuId::new(3)).is_none());
    }

    #[test]
    fn model_value_codec_round_trips() {
        let hw = HwConf::new()
            .with_ecu(EcuId::new(1), 512)
            .with_ecu(EcuId::new(2), 256);
        assert_eq!(HwConf::from_value(&hw.to_value()).unwrap(), hw);

        let system = SystemSwConf::new("model-car")
            .with_swc(PluginSwcDecl {
                ecu: EcuId::new(1),
                swc_name: "ecm-swc".into(),
                is_ecm: true,
                virtual_ports: vec![VirtualPortDecl {
                    id: VirtualPortId::new(0),
                    name: "PluginDataIn".into(),
                    kind: VirtualPortKindDecl::TypeII {
                        peer: EcuId::new(2),
                    },
                }],
            })
            .with_swc(PluginSwcDecl {
                ecu: EcuId::new(2),
                swc_name: "plugin-swc-2".into(),
                is_ecm: false,
                virtual_ports: vec![
                    VirtualPortDecl {
                        id: VirtualPortId::new(1),
                        name: "ToEcm".into(),
                        kind: VirtualPortKindDecl::TypeI,
                    },
                    VirtualPortDecl {
                        id: VirtualPortId::new(2),
                        name: "WheelsReq".into(),
                        kind: VirtualPortKindDecl::TypeIII,
                    },
                ],
            });
        assert_eq!(
            SystemSwConf::from_value(&system.to_value()).unwrap(),
            system
        );

        let app = AppDefinition::new(AppId::new("remote-control"))
            .with_plugin(artifact(
                "COM",
                &[
                    ("ext_in", PluginPortDirection::Required),
                    ("fwd", PluginPortDirection::Provided),
                ],
            ))
            .with_plugin(artifact("OP", &[("in", PluginPortDirection::Required)]))
            .with_dependency(AppId::new("base"))
            .with_conflict(AppId::new("rival"))
            .with_sw_conf(
                SwConf::new("model-car")
                    .with_min_memory_kb(64)
                    .with_placement(PluginId::new("COM"), EcuId::new(1))
                    .with_placement(PluginId::new("OP"), EcuId::new(2))
                    .with_connection(
                        PluginId::new("COM"),
                        "ext_in",
                        ConnectionDecl::External {
                            endpoint: "phone".into(),
                            message_id: "Wheels".into(),
                        },
                    )
                    .with_connection(
                        PluginId::new("COM"),
                        "fwd",
                        ConnectionDecl::RemotePlugin {
                            plugin: PluginId::new("OP"),
                            port: "in".into(),
                        },
                    )
                    .with_connection(
                        PluginId::new("OP"),
                        "in",
                        ConnectionDecl::VirtualPort {
                            name: "WheelsReq".into(),
                        },
                    ),
            );
        assert_eq!(AppDefinition::from_value(&app.to_value()).unwrap(), app);
    }

    #[test]
    fn model_decoders_reject_malformed_values() {
        use dynar_foundation::value::Value;
        for decoder in [
            |v: &Value| HwConf::from_value(v).map(|_| ()),
            |v: &Value| SystemSwConf::from_value(v).map(|_| ()),
            |v: &Value| AppDefinition::from_value(v).map(|_| ()),
        ] {
            assert!(decoder(&Value::I64(7)).is_err());
            assert!(decoder(&Value::List(vec![Value::Void])).is_err());
        }
    }

    #[test]
    fn app_validation_catches_missing_pieces() {
        let op = artifact("OP", &[("in", PluginPortDirection::Required)]);
        let good = AppDefinition::new(AppId::new("app"))
            .with_plugin(op.clone())
            .with_sw_conf(
                SwConf::new("model-car")
                    .with_placement(PluginId::new("OP"), EcuId::new(2))
                    .with_connection(
                        PluginId::new("OP"),
                        "in",
                        ConnectionDecl::VirtualPort {
                            name: "SpeedProv".into(),
                        },
                    ),
            );
        assert!(good.validate().is_ok());
        assert_eq!(
            good.sw_conf_for("model-car")
                .unwrap()
                .placement_of(&PluginId::new("OP")),
            Some(EcuId::new(2))
        );
        assert!(good.sw_conf_for("truck").is_none());

        let unplaced = AppDefinition::new(AppId::new("app"))
            .with_plugin(op.clone())
            .with_sw_conf(SwConf::new("model-car"));
        assert!(unplaced.validate().is_err());

        let unknown_port = AppDefinition::new(AppId::new("app"))
            .with_plugin(op)
            .with_sw_conf(
                SwConf::new("model-car")
                    .with_placement(PluginId::new("OP"), EcuId::new(2))
                    .with_connection(PluginId::new("OP"), "ghost", ConnectionDecl::Direct),
            );
        assert!(unknown_port.validate().is_err());
    }
}
