//! The operation-accounting ledger of the trusted server.
//!
//! Every counter is monotonically increasing and counts *events*, not
//! states, with retransmission and recovery explicitly separated out:
//!
//! * a retransmission of an already-pushed package increments
//!   [`Ledger::retransmissions`] only — never the push counters, so a lossy
//!   link cannot inflate the accounting;
//! * a pending operation voided by a vehicle reboot (its boot epoch moved on,
//!   so the outcome can never arrive) increments
//!   [`Ledger::operations_voided`] — it is neither completed nor failed;
//! * the orphan uninstalls a resync pushes are counted on their own, apart
//!   from user-initiated uninstalls.
//!
//! The ledger is part of the server's durability snapshot
//! (`TrustedServer::snapshot_bytes`), so a journaled-and-replayed server
//! carries byte-identical totals to the live one.

use dynar_foundation::error::{DynarError, Result};
use dynar_foundation::value::Value;

/// Monotonic counters over every operation the trusted server performed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Install packages pushed (first transmission only).
    pub installs_pushed: u64,
    /// Uninstall messages pushed by user intent or reconciliation.
    pub uninstalls_pushed: u64,
    /// Install operations that resolved with every plug-in acknowledged.
    pub installs_completed: u64,
    /// Uninstall operations that resolved with every plug-in acknowledged.
    pub uninstalls_completed: u64,
    /// Operations that resolved failed (rejection, retry exhaustion, …).
    pub operations_failed: u64,
    /// Retransmissions of already-pushed packages (same sequence id).
    pub retransmissions: u64,
    /// Packages abandoned after their retry budget was spent.
    pub retries_exhausted: u64,
    /// Packages failed immediately because the vehicle is unreachable.
    pub unreachable_failures: u64,
    /// Pending operations voided by a vehicle boot-epoch bump (neither
    /// completed nor failed: their old-epoch outcome can never arrive).
    pub operations_voided: u64,
    /// State reports consumed to resynchronise a vehicle's observed state.
    pub resyncs: u64,
    /// Orphan uninstalls pushed by resyncs for unaccounted plug-ins.
    pub orphan_uninstalls: u64,
    /// Packages re-pushed by ECU restore operations.
    pub restores: u64,
    /// Vehicles whose desired manifest a rollout campaign rewrote (canary
    /// and ramp waves alike; one event per vehicle per campaign).
    pub campaign_exposures: u64,
    /// Vehicles restored to their recorded last-good manifest by a campaign
    /// abort.  A rollback is a manifest restore, **not** an uninstall: the
    /// replaced version re-enters the desired set and reconciliation
    /// reinstalls it.
    pub campaign_rollbacks: u64,
    /// Campaigns that converged every target to the new version.
    pub campaigns_completed: u64,
    /// Campaigns aborted (manually or by their health gate).
    pub campaigns_aborted: u64,
}

impl Ledger {
    /// Adds every counter of `other` into `self`.  The counters are
    /// commutative event sums, so per-shard deltas accumulated during a
    /// parallel tick fold into the shared ledger in any order.
    pub fn merge_from(&mut self, other: &Ledger) {
        self.installs_pushed += other.installs_pushed;
        self.uninstalls_pushed += other.uninstalls_pushed;
        self.installs_completed += other.installs_completed;
        self.uninstalls_completed += other.uninstalls_completed;
        self.operations_failed += other.operations_failed;
        self.retransmissions += other.retransmissions;
        self.retries_exhausted += other.retries_exhausted;
        self.unreachable_failures += other.unreachable_failures;
        self.operations_voided += other.operations_voided;
        self.resyncs += other.resyncs;
        self.orphan_uninstalls += other.orphan_uninstalls;
        self.restores += other.restores;
        self.campaign_exposures += other.campaign_exposures;
        self.campaign_rollbacks += other.campaign_rollbacks;
        self.campaigns_completed += other.campaigns_completed;
        self.campaigns_aborted += other.campaigns_aborted;
    }

    /// Encodes the ledger as a [`Value`] (a fixed-arity list of counters).
    pub fn to_value(&self) -> Value {
        Value::List(
            [
                self.installs_pushed,
                self.uninstalls_pushed,
                self.installs_completed,
                self.uninstalls_completed,
                self.operations_failed,
                self.retransmissions,
                self.retries_exhausted,
                self.unreachable_failures,
                self.operations_voided,
                self.resyncs,
                self.orphan_uninstalls,
                self.restores,
                self.campaign_exposures,
                self.campaign_rollbacks,
                self.campaigns_completed,
                self.campaigns_aborted,
            ]
            .iter()
            .map(|&c| Value::I64(c as i64))
            .collect(),
        )
    }

    /// Decodes a ledger encoded by [`Ledger::to_value`].
    ///
    /// # Errors
    ///
    /// Returns [`DynarError::ProtocolViolation`] for malformed encodings.
    pub fn from_value(value: &Value) -> Result<Self> {
        let malformed = || DynarError::ProtocolViolation("malformed ledger encoding".into());
        let parts = value.as_list().ok_or_else(malformed)?;
        let counters = parts
            .iter()
            .map(|v| u64::try_from(v.expect_i64()?).map_err(|_| malformed()))
            .collect::<Result<Vec<u64>>>()?;
        let [installs_pushed, uninstalls_pushed, installs_completed, uninstalls_completed, operations_failed, retransmissions, retries_exhausted, unreachable_failures, operations_voided, resyncs, orphan_uninstalls, restores, campaign_exposures, campaign_rollbacks, campaigns_completed, campaigns_aborted] =
            counters[..]
        else {
            return Err(malformed());
        };
        Ok(Ledger {
            installs_pushed,
            uninstalls_pushed,
            installs_completed,
            uninstalls_completed,
            operations_failed,
            retransmissions,
            retries_exhausted,
            unreachable_failures,
            operations_voided,
            resyncs,
            orphan_uninstalls,
            restores,
            campaign_exposures,
            campaign_rollbacks,
            campaigns_completed,
            campaigns_aborted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_round_trips() {
        let ledger = Ledger {
            installs_pushed: 1,
            uninstalls_pushed: 2,
            installs_completed: 3,
            uninstalls_completed: 4,
            operations_failed: 5,
            retransmissions: 6,
            retries_exhausted: 7,
            unreachable_failures: 8,
            operations_voided: 9,
            resyncs: 10,
            orphan_uninstalls: 11,
            restores: 12,
            campaign_exposures: 13,
            campaign_rollbacks: 14,
            campaigns_completed: 15,
            campaigns_aborted: 16,
        };
        assert_eq!(Ledger::from_value(&ledger.to_value()).unwrap(), ledger);
    }

    #[test]
    fn malformed_ledgers_are_rejected() {
        assert!(Ledger::from_value(&Value::I64(1)).is_err());
        assert!(Ledger::from_value(&Value::List(vec![Value::I64(1)])).is_err());
        assert!(Ledger::from_value(&Value::List(vec![Value::I64(-1); 16])).is_err());
    }
}
